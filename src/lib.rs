#![forbid(unsafe_code)]
//! Umbrella crate re-exporting the full CPGAN reproduction workspace.
//!
//! Downstream users typically depend on the individual crates; this package
//! exists so the repository-level `tests/` and `examples/` can exercise the
//! whole stack together.
pub use cpgan;
pub use cpgan_community as community;
pub use cpgan_data as data;
pub use cpgan_deep as deep;
pub use cpgan_eval as eval;
pub use cpgan_generators as generators;
pub use cpgan_graph as graph;
pub use cpgan_nn as nn;
