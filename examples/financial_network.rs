//! Financial-network simulation — the paper's motivating application
//! (§I: "generated graphs can be adopted to produce synthetic financial
//! networks without divulging private information", Figure 1's
//! guarantee-loan network).
//!
//! We build a guarantee-loan-like network (dense company groups around
//! anchor institutions, sparse cross-group guarantees), train CPGAN, and
//! verify the released synthetic network (i) keeps the group structure
//! analysts rely on for contagion-risk analysis and (ii) shares no actual
//! edge beyond chance with the private original.
//!
//! Run with `cargo run --release --example financial_network`.

use cpgan::{CpGan, CpGanConfig};
use cpgan_community::{louvain, metrics, modularity};
use cpgan_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic guarantee-loan network: `groups` clusters of companies, each
/// with an anchor financial institution that most members guarantee with,
/// plus intra-group member guarantees and rare cross-group links.
fn guarantee_loan_network(groups: usize, group_size: usize, seed: u64) -> (Graph, Vec<usize>) {
    let n = groups * group_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for c in 0..groups {
        let base = (c * group_size) as u32;
        // Anchor star: company 0 of the group is the institution.
        for v in 1..group_size as u32 {
            b.push_edge(base, base + v);
        }
        // Mutual guarantees inside the group.
        for _ in 0..group_size * 2 {
            let u = base + rng.gen_range(0..group_size) as u32;
            let v = base + rng.gen_range(0..group_size) as u32;
            b.push_edge(u, v);
        }
        // A couple of cross-group guarantee chains.
        let other = rng.gen_range(0..groups) as u32;
        b.push_edge(base, other * group_size as u32);
    }
    let labels = (0..n).map(|v| v / group_size).collect();
    (b.build(), labels)
}

/// Fraction of generated edges that also exist in the original graph.
fn edge_overlap(original: &Graph, generated: &Graph) -> f64 {
    if generated.m() == 0 {
        return 0.0;
    }
    let shared = generated
        .edges()
        .iter()
        .filter(|&&(u, v)| original.has_edge(u, v))
        .count();
    shared as f64 / generated.m() as f64
}

fn main() {
    let (private, groups) = guarantee_loan_network(12, 25, 11);
    println!(
        "private guarantee network: {} companies, {} guarantee relations, {} groups",
        private.n(),
        private.m(),
        12
    );
    let q = modularity::modularity(&private, &groups);
    println!("group modularity of the private network: {q:.3}");

    // Train the generator on the private network.
    let mut model = CpGan::new(CpGanConfig {
        epochs: 100,
        sample_size: 150,
        ..CpGanConfig::default()
    });
    model.fit(&private);

    // Release a synthetic network of the same shape.
    let mut rng = StdRng::seed_from_u64(99);
    let released = model.generate(private.n(), private.m(), &mut rng);
    println!(
        "released synthetic network: {} companies, {} relations",
        released.n(),
        released.m()
    );

    // (i) Analysts still see the group structure.
    let detected_private = louvain::louvain(&private, 0);
    let detected_released = louvain::louvain(&released, 0);
    let nmi = metrics::nmi(detected_released.labels(), detected_private.labels());
    println!(
        "group structure preserved: NMI {nmi:.3} ({} groups detected vs {})",
        detected_released.community_count(),
        detected_private.community_count()
    );

    // (ii) Individual guarantee relations are not disclosed: overlap should
    // be far below 100% (chance level is ~2m/n^2).
    let overlap = edge_overlap(&private, &released);
    let chance = 2.0 * private.m() as f64 / (private.n() as f64 * private.n() as f64);
    println!(
        "edge disclosure: {:.1}% of released edges exist in the private network \
         (chance level {:.1}%)",
        100.0 * overlap,
        100.0 * chance
    );
    assert!(
        overlap < 0.5,
        "released network leaks too many private edges"
    );
}
