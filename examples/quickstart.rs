//! Quickstart: train CPGAN on a community-structured graph and generate a
//! synthetic twin.
//!
//! Run with `cargo run --release --example quickstart`.

// Examples are demo entry points: aborting with a clear message on a
// broken invariant is the right behavior here, so the workspace
// panic-policy lints are relaxed (see DESIGN.md).
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use cpgan::{CpGan, CpGanConfig};
use cpgan_community::{louvain, metrics};
use cpgan_data::planted::{generate, PlantedConfig};
use cpgan_graph::stats::GraphStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. An "observed" graph: 500 nodes, 10 planted communities.
    let observed = generate(&PlantedConfig {
        n: 500,
        m: 2_000,
        communities: 10,
        mixing: 0.12,
        ..Default::default()
    });
    let g = &observed.graph;
    println!("observed: {} nodes, {} edges", g.n(), g.m());

    // 2. Train CPGAN (degree-proportional subgraph sampling per epoch).
    let mut model = CpGan::new(CpGanConfig {
        epochs: 80,
        sample_size: 150,
        ..CpGanConfig::default()
    });
    let stats = model.fit(g);
    let last = stats.last().expect("trained");
    println!(
        "trained {} epochs: d_loss {:.3}, g_loss {:.3}, recon {:.3}",
        stats.epochs.len(),
        last.d_loss,
        last.g_loss,
        last.recon_loss
    );

    // 3. Generate a synthetic twin of the same size.
    let mut rng = StdRng::seed_from_u64(7);
    let synthetic = model.generate(g.n(), g.m(), &mut rng);
    println!(
        "generated: {} nodes, {} edges",
        synthetic.n(),
        synthetic.m()
    );

    // 4. Compare structure and communities.
    let so = GraphStats::compute(g, 64);
    let sg = GraphStats::compute(&synthetic, 64);
    println!(
        "mean degree: observed {:.2} vs generated {:.2}",
        so.mean_degree, sg.mean_degree
    );
    println!("gini: observed {:.3} vs generated {:.3}", so.gini, sg.gini);

    let y = louvain::louvain(g, 0);
    let x = louvain::louvain(&synthetic, 0);
    println!(
        "community preservation: NMI {:.3}, ARI {:.3} ({} vs {} communities)",
        metrics::nmi(x.labels(), y.labels()),
        metrics::adjusted_rand_index(x.labels(), y.labels()),
        x.community_count(),
        y.community_count()
    );
}
