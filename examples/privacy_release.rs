//! Privacy-preserving citation-network release: compare every generator
//! family on the Citeseer stand-in and pick the best trade-off.
//!
//! This mirrors the paper's headline comparison (Tables III/IV condensed to
//! one dataset): traditional models are fast but flatten communities;
//! one-shot VAEs keep communities but not always degrees; CPGAN balances
//! both.
//!
//! Run with `cargo run --release --example privacy_release`.

// Examples are demo entry points: aborting with a clear message on a
// broken invariant is the right behavior here, so the workspace
// panic-policy lints are relaxed (see DESIGN.md).
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use cpgan_data::datasets;
use cpgan_eval::pipelines::{community_scores, quality_diff};
use cpgan_eval::registry::{fit_model, ModelKind};
use cpgan_eval::EvalConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = EvalConfig {
        scale: 16,
        seeds: 1,
        deep_epochs: 120,
        cpgan_epochs: 60,
        ..EvalConfig::default()
    };
    let spec = datasets::spec_by_name("Citeseer").expect("known dataset");
    let ds = datasets::synthesize(spec, cfg.scale, cfg.seed);
    println!(
        "Citeseer stand-in at 1/{} scale: {} nodes, {} edges",
        cfg.scale,
        ds.graph.n(),
        ds.graph.m()
    );
    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>10}",
        "model", "NMI", "ARI", "Deg.MMD", "Clus.MMD"
    );
    for kind in [
        ModelKind::Er,
        ModelKind::Bter,
        ModelKind::Sbm,
        ModelKind::Vgae,
        ModelKind::CpGan(cpgan::Variant::Full),
    ] {
        let model = fit_model(kind, &ds.graph, &cfg, cfg.seed);
        let mut rng = StdRng::seed_from_u64(5);
        let generated = model.generate(&mut rng);
        let (nmi, ari) = community_scores(&ds.graph, &generated, 0);
        let q = quality_diff(&ds.graph, &generated, 64);
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>10.4} {:>10.4}",
            kind.name(),
            nmi,
            ari,
            q.deg,
            q.clus
        );
    }
    println!("\nhigher NMI/ARI = communities preserved; lower MMD = degrees/clustering preserved");
}
