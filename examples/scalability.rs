//! Scalability demo: CPGAN's training cost stays flat as the graph grows
//! (paper §III-E / Tables VII–IX) because each epoch trains on a sampled
//! `n_s`-node subgraph, while generation cost grows linearly in the edge
//! budget.
//!
//! Run with `cargo run --release --example scalability [max_n]`.

use cpgan::{CpGan, CpGanConfig};
use cpgan_data::sweep;
use cpgan_nn::memory;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "nodes", "train s", "gen s", "peak MiB", "edges"
    );
    for &n in sweep::SWEEP_SIZES.iter().filter(|&&n| n <= max_n) {
        let pg = sweep::sweep_graph(n, 1);
        let mut model = CpGan::new(CpGanConfig {
            epochs: 10,
            ..CpGanConfig::default()
        });
        memory::reset_peak();
        let base = memory::live_bytes();
        let t0 = Instant::now();
        model.fit(&pg.graph);
        let train = t0.elapsed().as_secs_f64();
        let peak = (memory::peak_bytes().saturating_sub(base)) as f64 / (1024.0 * 1024.0);
        let mut rng = StdRng::seed_from_u64(1);
        let t1 = Instant::now();
        let out = model.generate(pg.graph.n(), pg.graph.m(), &mut rng);
        let gen = t1.elapsed().as_secs_f64();
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>12.1} {:>10}",
            n,
            train,
            gen,
            peak,
            out.m()
        );
    }
    println!("\nper-epoch training cost is ~constant: the encoder/decoder only ever see n_s-node subgraphs");
}
