//! Model persistence: train once, save to disk, reload, and generate
//! identically — the workflow a synthetic-data service would use.
//!
//! Run with `cargo run --release --example save_load`.

use cpgan::{CpGan, CpGanConfig};
use cpgan_data::planted::{generate, PlantedConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let observed = generate(&PlantedConfig {
        n: 300,
        m: 1_200,
        communities: 8,
        ..Default::default()
    });
    let g = &observed.graph;

    let mut model = CpGan::new(CpGanConfig {
        epochs: 60,
        sample_size: 120,
        ..CpGanConfig::default()
    });
    model.fit(g);
    println!(
        "trained on {} nodes / {} edges ({} parameters)",
        g.n(),
        g.m(),
        model.param_count()
    );

    let path = std::env::temp_dir().join("cpgan_demo_model.json");
    model.save(&path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "saved snapshot to {} ({} KiB)",
        path.display(),
        bytes / 1024
    );

    let reloaded = CpGan::load(&path)?;
    let mut rng_a = StdRng::seed_from_u64(1);
    let mut rng_b = StdRng::seed_from_u64(1);
    let from_original = model.generate(g.n(), g.m(), &mut rng_a);
    let from_reloaded = reloaded.generate(g.n(), g.m(), &mut rng_b);
    assert_eq!(from_original, from_reloaded);
    println!(
        "reloaded model generates identically: {} nodes, {} edges",
        from_reloaded.n(),
        from_reloaded.m()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
