//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset of proptest this workspace's property tests use:
//! range / tuple / `Just` strategies, `prop_map` / `prop_flat_map` /
//! `prop_shuffle`, `collection::vec`, a deterministic [`test_runner::TestRunner`],
//! and the [`proptest!`] macro. Failing inputs are **not shrunk** — a failing
//! case panics with the case index so it can be replayed (runs are fully
//! deterministic, seeded per test from the test's name).
//!
//! The default case count is 64 (real proptest uses 256) to keep the offline
//! test suite fast; tests override it with
//! `#![proptest_config(ProptestConfig::with_cases(n))]` exactly as with real
//! proptest.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;

pub mod strategy {
    //! Core [`Strategy`] trait and combinator adapters.

    use super::*;
    use std::ops::Range;

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from the strategy using `rng`.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Draws a value wrapped in a [`ValueTree`] (proptest-compatible
        /// entry point; this shim does not shrink, so the tree is a leaf).
        fn new_tree(
            &self,
            runner: &mut crate::test_runner::TestRunner,
        ) -> Result<LeafTree<Self::Value>, crate::test_runner::Reason>
        where
            Self::Value: Clone,
        {
            Ok(LeafTree {
                value: self.sample(runner.rng()),
            })
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then uses it to pick a follow-up strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Randomly permutes the generated collection (Fisher–Yates).
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
            Self::Value: Shuffleable,
        {
            Shuffle { inner: self }
        }
    }

    /// A generated value positioned in a (degenerate) shrink tree.
    pub trait ValueTree {
        /// The type of the wrapped value.
        type Value;
        /// Returns the current value.
        fn current(&self) -> Self::Value;
    }

    /// Leaf-only value tree: no simplification steps.
    #[derive(Debug, Clone)]
    pub struct LeafTree<T> {
        value: T,
    }

    impl<T: Clone> ValueTree for LeafTree<T> {
        type Value = T;
        fn current(&self) -> T {
            self.value.clone()
        }
    }

    /// Strategy returning a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Adapter returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Adapter returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn sample(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Collections that [`Strategy::prop_shuffle`] can permute.
    pub trait Shuffleable {
        /// Permutes the collection in place.
        fn shuffle_with(&mut self, rng: &mut StdRng);
    }

    impl<T> Shuffleable for Vec<T> {
        fn shuffle_with(&mut self, rng: &mut StdRng) {
            use rand::seq::SliceRandom;
            self.as_mut_slice().shuffle(rng);
        }
    }

    /// Adapter returned by [`Strategy::prop_shuffle`].
    #[derive(Debug, Clone)]
    pub struct Shuffle<S> {
        inner: S,
    }

    impl<S> Strategy for Shuffle<S>
    where
        S: Strategy,
        S::Value: Shuffleable,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            let mut value = self.inner.sample(rng);
            value.shuffle_with(rng);
            value
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
    }
}

pub mod collection {
    //! Strategies over collections.

    use super::strategy::Strategy;
    use super::*;
    use std::ops::Range;

    /// Number of elements a [`vec`] strategy may produce.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic test execution state.

    use super::*;
    use rand::SeedableRng;

    /// Why a strategy failed to produce a value (never produced by this shim;
    /// present for proptest API compatibility of `new_tree`'s `Result`).
    pub type Reason = String;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the offline shim trims this to
            // keep the full workspace test run fast.
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Holds the RNG that strategies draw from.
    #[derive(Debug)]
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed: every run draws the same values.
        pub fn deterministic() -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(0x5eed_c0de),
            }
        }

        /// A runner seeded from an arbitrary value (used by [`crate::proptest!`]
        /// to give each test its own stream).
        pub fn from_seed_value(seed: u64) -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// The RNG strategies sample from.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    /// FNV-1a hash of a test name, used as its RNG seed.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1_0000_0000_01b3);
        }
        hash
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property; failures panic with the current
/// case context (this shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { ::std::assert!($($tokens)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { ::std::assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { ::std::assert_ne!($($tokens)*) };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` looping over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal item muncher for [`proptest!`]; expands one test fn per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __runner = $crate::test_runner::TestRunner::from_seed_value(
                $crate::test_runner::seed_from_name(::std::stringify!($name)),
            );
            for __case in 0..__config.cases {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::sample(&($strategy), __runner.rng()),)+
                );
                let __run = || -> () { $body };
                if let ::std::result::Result::Err(panic) =
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run))
                {
                    ::std::eprintln!(
                        "proptest shim: `{}` failed on case {}/{} (deterministic seed; \
                         re-run reproduces it)",
                        ::std::stringify!($name),
                        __case + 1,
                        __config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::ValueTree;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_threads_dependency(
            pair in (1usize..6).prop_flat_map(|n| (Just(n), 0..n))
        ) {
            prop_assert!(pair.1 < pair.0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_override_applies(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let strat = Just((0u32..20).collect::<Vec<_>>()).prop_shuffle();
        let mut runner = crate::test_runner::TestRunner::deterministic();
        let shuffled = strat.new_tree(&mut runner).unwrap().current();
        let mut sorted = shuffled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0u32..20).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_runner_repeats() {
        let strat = crate::collection::vec(0u64..1000, 5..6);
        let a = strat
            .new_tree(&mut crate::test_runner::TestRunner::deterministic())
            .unwrap()
            .current();
        let b = strat
            .new_tree(&mut crate::test_runner::TestRunner::deterministic())
            .unwrap()
            .current();
        assert_eq!(a, b);
    }
}
