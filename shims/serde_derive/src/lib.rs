//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the two
//! item shapes this workspace uses: structs with named fields and enums whose
//! variants are all unit variants. The derives target the `serde` *shim*'s
//! value-model traits (`to_value` / `from_value`), not real serde.
//!
//! Parsing is done directly over `proc_macro::TokenStream` (no `syn`/`quote`
//! available offline): we locate the `struct`/`enum` keyword, the item name,
//! and the brace-delimited body, then extract field or variant identifiers
//! while skipping attributes and tracking angle-bracket depth so commas inside
//! generic types are not mistaken for field separators.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item the derive input is.
enum Item {
    /// Named-field struct with the given field names.
    Struct { name: String, fields: Vec<String> },
    /// Enum with the given unit-variant names.
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .unwrap_or_default()
}

/// Parses the derive input into an [`Item`], or an error message.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (`#[...]`) and visibility / other leading idents until
    // the `struct` or `enum` keyword.
    let mut kind: Option<&'static str> = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                kind = Some("struct");
                i += 1;
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                kind = Some("enum");
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let kind = kind.ok_or("expected `struct` or `enum`")?;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    i += 1;
    // Reject generics: the shim derive only supports plain items.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the offline serde shim derive does not support generic item `{name}`"
            ));
        }
    }
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .ok_or_else(|| format!("expected a brace-delimited body for `{name}`"))?;

    if kind == "struct" {
        Ok(Item::Struct {
            name,
            fields: parse_struct_fields(body)?,
        })
    } else {
        Ok(Item::Enum {
            name,
            variants: parse_enum_variants(body)?,
        })
    }
}

/// Extracts field names from a named-field struct body.
fn parse_struct_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut angle_depth: i32 = 0;
    let mut in_type = false; // between `:` and the next top-level `,`
    let mut prev_ident: Option<String> = None;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' && !in_type => {
                i += 2; // attribute
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ':' && !in_type && angle_depth == 0 => {
                // `::` paths never follow a bare field ident at depth 0 here;
                // a single `:` ends the field name.
                let double = matches!(
                    tokens.get(i + 1),
                    Some(TokenTree::Punct(q)) if q.as_char() == ':'
                );
                if !double {
                    if let Some(name) = prev_ident.take() {
                        fields.push(name);
                    }
                    in_type = true;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                in_type = false;
                prev_ident = None;
            }
            TokenTree::Ident(id) if !in_type => prev_ident = Some(id.to_string()),
            _ => {}
        }
        i += 1;
    }
    if fields.is_empty() {
        return Err("the offline serde shim derive requires named fields".into());
    }
    Ok(fields)
}

/// Extracts variant names from an enum body, rejecting payload variants.
fn parse_enum_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                if let Some(TokenTree::Group(_)) = tokens.get(i + 1) {
                    return Err(format!(
                        "the offline serde shim derive only supports unit variants \
                         (variant `{name}` has a payload)"
                    ));
                }
                variants.push(name);
                i += 1;
            }
            _ => i += 1,
        }
    }
    if variants.is_empty() {
        return Err("enum has no variants".into());
    }
    Ok(variants)
}

/// `#[derive(Serialize)]`: emits an `impl serde::Serialize` targeting the
/// serde shim's `to_value` model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(\
                             match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .unwrap_or_else(|_| compile_error("serde shim derive produced invalid code"))
}

/// `#[derive(Deserialize)]`: emits an `impl serde::Deserialize` targeting the
/// serde shim's `from_value` model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             value.get({f:?}).unwrap_or(&::serde::Value::Null))\
                             .map_err(|e| ::serde::de::Error::custom(\
                                 ::std::format!(\"field `{f}` of `{name}`: {{e}}\")))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Object(_) => \
                                 ::std::result::Result::Ok({name} {{ {inits} }}),\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::de::Error::custom(::std::format!(\
                                     \"expected object for `{name}`, found {{}}\", \
                                     other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(\
                                     ::serde::de::Error::custom(::std::format!(\
                                         \"unknown variant `{{other}}` of `{name}`\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::de::Error::custom(::std::format!(\
                                     \"expected string variant for `{name}`, found {{}}\", \
                                     other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .unwrap_or_else(|_| compile_error("serde shim derive produced invalid code"))
}
