//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The real serde cannot be downloaded in this build environment, so this
//! shim provides the small (de)serialization surface the workspace uses:
//!
//! - a self-describing [`Value`] data model (JSON-shaped),
//! - [`Serialize`] / [`Deserialize`] traits that convert to and from it,
//! - `#[derive(Serialize, Deserialize)]` for named-field structs and
//!   unit-variant enums (via the `serde_derive` shim),
//! - impls for the primitives, `String`, `Vec<T>`, `Option<T>`, tuples and
//!   string-keyed maps.
//!
//! The `serde_json` shim renders [`Value`] to JSON text and parses it back,
//! so derived types round-trip through ordinary `.json` files exactly like
//! they would with the real crates (modulo serde's richer error locations).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed (de)serialization value, shaped like JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value does not fit `i64`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) if v >= 0 => Some(v as u64),
            Value::UInt(v) => Some(v),
            Value::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            Value::Float(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error types.
pub mod de {
    /// Error produced while converting a [`crate::Value`] into a typed value.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// Creates an error from any displayable message (mirrors
        /// `serde::de::Error::custom`).
        pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error {
                message: msg.to_string(),
            }
        }

        /// The error message.
        pub fn message(&self) -> &str {
            &self.message
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    impl std::error::Error for Error {}
}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the shim data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Converts a value back into `Self`.
    fn from_value(value: &Value) -> Result<Self, de::Error>;
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, de::Error> {
    Err(de::Error::custom(format!(
        "expected {expected}, found {}",
        got.kind()
    )))
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}

macro_rules! uint_value_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| de::Error::custom(format!(
                        "expected unsigned integer, found {}",
                        value.kind()
                    )))?;
                <$t>::try_from(raw).map_err(|_| {
                    de::Error::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
uint_value_impl!(u8, u16, u32, u64, usize);

macro_rules! int_value_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| de::Error::custom(format!(
                        "expected integer, found {}",
                        value.kind()
                    )))?;
                <$t>::try_from(raw).map_err(|_| {
                    de::Error::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
int_value_impl!(i8, i16, i32, i64, isize);

macro_rules! float_value_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                value
                    .as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| de::Error::custom(format!(
                        "expected number, found {}",
                        value.kind()
                    )))
            }
        }
    )*};
}
float_value_impl!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_value_impl {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(de::Error::custom(format!(
                        "expected array of length {LEN}, found length {}",
                        items.len()
                    ))),
                    other => type_error("array", other),
                }
            }
        }
    )*};
}
tuple_value_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        Ok(value.clone())
    }
}

/// Serialization-side helpers (kept for path compatibility with real serde).
pub mod ser {
    pub use super::Serialize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
        let tup = (1u32, "x".to_string(), 2.5f64);
        assert_eq!(
            <(u32, String, f64)>::from_value(&tup.to_value()).unwrap(),
            tup
        );
    }

    #[test]
    fn type_mismatch_reports_kinds() {
        let err = u64::from_value(&Value::Str("no".into())).unwrap_err();
        assert!(err.message().contains("string"));
    }
}
