#![warn(missing_docs)]

//! Offline stand-in for the `polling` crate: readiness polling over
//! `poll(2)`, covering exactly the API surface this workspace uses.
//!
//! The serving layer needs one capability std does not expose: "block
//! until any of these sockets is readable/writable, or until I am
//! notified, or until a timeout". This shim provides it with a single,
//! tiny FFI declaration of `poll(2)` (the symbol is already linked into
//! every std binary via libc) — no `libc` crate, no epoll, no event-loop
//! framework. Differences from the real `polling` crate, documented
//! because callers rely on them:
//!
//! * **Level-triggered**, not oneshot: an interest stays armed until
//!   [`Poller::modify`]/[`Poller::delete`] changes it. The serve event
//!   loop re-computes interest on every state transition, so oneshot
//!   re-arming would be pure overhead.
//! * `POLLHUP`/`POLLERR` surface as *readable* (and writable, when write
//!   interest is registered) so the owner observes the condition via its
//!   normal read/write path; there is no separate error event.
//! * [`Poller::notify`] is a self-wakeup: it makes a concurrent or future
//!   [`Poller::wait`] return early. It is the shutdown/completion wakeup
//!   mechanism — nothing in this workspace may sleep-poll (see the
//!   `sleep-poll` xtask lint).
//!
//! The implementation is Unix-only (the workspace targets Linux); every
//! fd-facing call goes through safe `std::os::fd` types, and the single
//! `unsafe` block is the `poll(2)` call itself, whose invariants
//! (pointer + length of a live, repr(C) slice) are local and checked by
//! construction.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Readiness interest (or readiness result) for one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen key identifying the source in [`Events`].
    pub key: usize,
    /// Interest in (or occurrence of) readability.
    pub readable: bool,
    /// Interest in (or occurrence of) writability.
    pub writable: bool,
}

impl Event {
    /// Read-only interest.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Write-only interest.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Read + write interest.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (the source stays registered; only `POLLHUP`/`POLLERR`
    /// conditions will surface, as readable).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Buffer of readiness events filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    list: Vec<Event>,
}

impl Events {
    /// An empty event buffer.
    pub fn new() -> Events {
        Events::default()
    }

    /// Iterates the events recorded by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.list.iter().copied()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Clears the buffer (done automatically by [`Poller::wait`]).
    pub fn clear(&mut self) {
        self.list.clear();
    }
}

// `struct pollfd` from poll(2), bit-for-bit.
#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    // int poll(struct pollfd *fds, nfds_t nfds, int timeout);
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// A readiness poller over a registered set of file descriptors.
///
/// Registration is keyed by raw fd; interests live in a `BTreeMap` so the
/// pollfd array handed to the kernel has a deterministic order. All
/// methods take `&self` (interest table behind a mutex), so an event-loop
/// thread can `wait` while other threads `notify`/`modify`.
pub struct Poller {
    interest: Mutex<BTreeMap<RawFd, Event>>,
    notify_recv: UnixStream,
    notify_send: UnixStream,
}

fn ms_timeout(timeout: Option<Duration>) -> std::ffi::c_int {
    match timeout {
        None => -1,
        Some(d) => {
            if d.is_zero() {
                0
            } else {
                // Round up so a 0.4 ms deadline does not spin at 0 ms.
                let ms = d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0));
                std::ffi::c_int::try_from(ms).unwrap_or(std::ffi::c_int::MAX)
            }
        }
    }
}

impl Poller {
    /// Creates a poller with its internal notify channel (a non-blocking
    /// `UnixStream` pair).
    pub fn new() -> io::Result<Poller> {
        let (notify_send, notify_recv) = UnixStream::pair()?;
        notify_recv.set_nonblocking(true)?;
        notify_send.set_nonblocking(true)?;
        Ok(Poller {
            interest: Mutex::new(BTreeMap::new()),
            notify_recv,
            notify_send,
        })
    }

    fn table(&self) -> std::sync::MutexGuard<'_, BTreeMap<RawFd, Event>> {
        // The table is a plain map; a panic while holding the lock cannot
        // leave it incoherent, so keep serving instead of wedging.
        self.interest.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers `source` with the given interest. Fails with
    /// `AlreadyExists` if the fd is already registered.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut table = self.table();
        if table.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("fd {fd} already registered"),
            ));
        }
        table.insert(fd, interest);
        Ok(())
    }

    /// Replaces the interest registered for `source`. Fails with
    /// `NotFound` if the fd is not registered.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match self.table().get_mut(&fd) {
            Some(slot) => {
                *slot = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} not registered"),
            )),
        }
    }

    /// Deregisters `source`. Deregistering an unknown fd is a no-op.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.table().remove(&source.as_raw_fd());
        Ok(())
    }

    /// Blocks until at least one registered source is ready, [`notify`]
    /// is called, or `timeout` elapses (`None` = wait forever). Ready
    /// sources are appended to `events` (cleared first); returns the
    /// number of events recorded. A notify wakeup records no event.
    ///
    /// [`notify`]: Poller::notify
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        // Snapshot under the lock, poll outside it, so `notify`/`modify`
        // never block on a sleeping wait.
        let snapshot: Vec<(RawFd, Event)> =
            self.table().iter().map(|(fd, ev)| (*fd, *ev)).collect();
        let mut fds: Vec<PollFd> = Vec::with_capacity(snapshot.len() + 1);
        fds.push(PollFd {
            fd: self.notify_recv.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for (fd, ev) in &snapshot {
            let mut mask = 0i16;
            if ev.readable {
                mask |= POLLIN;
            }
            if ev.writable {
                mask |= POLLOUT;
            }
            fds.push(PollFd {
                fd: *fd,
                events: mask,
                revents: 0,
            });
        }

        let rc = loop {
            // SAFETY: `fds` is a live, contiguous, repr(C) slice for the
            // duration of the call; length is passed alongside; poll(2)
            // only writes `revents` within those bounds.
            let rc = unsafe {
                poll(
                    fds.as_mut_ptr(),
                    fds.len() as std::ffi::c_ulong,
                    ms_timeout(timeout),
                )
            };
            if rc >= 0 {
                break rc;
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        };
        if rc == 0 {
            return Ok(0);
        }

        if fds[0].revents & (POLLIN | POLLERR | POLLHUP) != 0 {
            // Drain every pending notify byte so wakeups coalesce.
            let mut sink = [0u8; 64];
            while let Ok(n) = (&self.notify_recv).read(&mut sink) {
                if n == 0 {
                    break;
                }
            }
        }
        for (pfd, (_, ev)) in fds[1..].iter().zip(snapshot.iter()) {
            let hup = pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
            let readable = pfd.revents & POLLIN != 0 || hup;
            let writable = pfd.revents & POLLOUT != 0 || (ev.writable && hup);
            if readable || writable {
                events.list.push(Event {
                    key: ev.key,
                    readable,
                    writable,
                });
            }
        }
        Ok(events.len())
    }

    /// Wakes a concurrent (or the next) [`Poller::wait`] early. Wakeups
    /// coalesce; calling this many times costs one wakeup.
    pub fn notify(&self) -> io::Result<()> {
        match (&self.notify_send).write(&[1u8]) {
            Ok(_) => Ok(()),
            // A full pipe already guarantees a pending wakeup.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn timeout_expires_with_no_events() {
        let poller = Poller::new().unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn notify_wakes_wait_without_events() {
        let poller = Poller::new().unwrap();
        poller.notify().unwrap();
        poller.notify().unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 0, "notify wakes but records no event");
        // The wakeup was drained: the next wait times out.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn readable_socket_reports_its_key() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&listener, Event::readable(7)).unwrap();

        let mut events = Events::new();
        let _client = TcpStream::connect(addr).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);
    }

    #[test]
    fn interest_none_suppresses_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&listener, Event::none(1)).unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "masked interest must not report readiness");
        // Re-arm and the pending connection surfaces.
        poller.modify(&listener, Event::readable(1)).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn add_twice_fails_and_delete_is_idempotent() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&listener, Event::readable(1)).unwrap();
        assert_eq!(
            poller
                .add(&listener, Event::readable(2))
                .unwrap_err()
                .kind(),
            io::ErrorKind::AlreadyExists
        );
        poller.delete(&listener).unwrap();
        poller.delete(&listener).unwrap();
        assert_eq!(
            poller
                .modify(&listener, Event::readable(1))
                .unwrap_err()
                .kind(),
            io::ErrorKind::NotFound
        );
    }
}
