//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the group-based benchmarking API this workspace's benches use
//! (`benchmark_group` / `sample_size` / `bench_with_input` / `iter`) with a
//! simple wall-clock measurement loop: a short warm-up, then `sample_size`
//! timed samples, reporting min / median / max per benchmark to stdout. No
//! statistical analysis, plotting, or report files.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Identifier of a single benchmark: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A named set of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warm-up sample.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher, input);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            routine(&mut bencher, input);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed / bencher.iterations);
            }
        }
        samples.sort_unstable();
        if let (Some(first), Some(last)) = (samples.first(), samples.last()) {
            let median = samples[samples.len() / 2];
            println!(
                "  {}/{}: min {:?}  median {:?}  max {:?}  ({} samples)",
                self.name,
                id.text,
                first,
                median,
                last,
                samples.len(),
            );
        }
        self
    }

    /// Runs one benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = BenchmarkId { text: name.into() };
        self.bench_with_input(id, &(), |b, _| routine(b))
    }

    /// Ends the group (kept for criterion API parity).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(benches, bench_demo);

    #[test]
    fn harness_runs() {
        benches();
    }
}
