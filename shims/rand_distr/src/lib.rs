//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr)
//! crate, implementing the distributions this workspace uses: `StandardNormal`,
//! `Normal`, `Poisson` and `Binomial`.
//!
//! Sampling algorithms are textbook (Box–Muller, Knuth's Poisson with a
//! normal-approximation fallback, Bernoulli-sum Binomial with a
//! normal-approximation fallback). Streams are deterministic per seed but not
//! bit-compatible with the real crate.

#![forbid(unsafe_code)]

pub use rand::distributions::Distribution;
use rand::{Rng, RngCore};

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistrError(&'static str);

impl std::fmt::Display for DistrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for DistrError {}

/// Draws one standard-normal `f64` via Box–Muller (fresh pair each call; the
/// second value is discarded for simplicity).
fn standard_normal_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        standard_normal_f64(rng)
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        standard_normal_f64(rng) as f32
    }
}

/// Float types distributions can be parameterized over (`f32` / `f64`).
pub trait Float: Copy {
    /// Narrows an `f64` into this type.
    fn from_f64(x: f64) -> Self;
    /// Widens this value to `f64`.
    fn to_f64(self) -> f64;
}

impl Float for f32 {
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

impl Float for f64 {
    fn from_f64(x: f64) -> Self {
        x
    }
    fn to_f64(self) -> f64 {
        self
    }
}

/// The normal distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates a normal distribution; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: F, std_dev: F) -> Result<Self, DistrError> {
        let sd = std_dev.to_f64();
        if !sd.is_finite() || sd < 0.0 {
            return Err(DistrError("std_dev must be finite and >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * standard_normal_f64(rng))
    }
}

/// The Poisson distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution; `lambda` must be positive and finite.
    pub fn new(lambda: f64) -> Result<Self, DistrError> {
        if lambda <= 0.0 || !lambda.is_finite() {
            return Err(DistrError("lambda must be positive and finite"));
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth: multiply uniforms until the product drops below e^-λ.
            let limit = (-self.lambda).exp();
            let mut product: f64 = rng.gen();
            let mut count = 0u64;
            while product > limit {
                count += 1;
                product *= rng.gen::<f64>();
            }
            count as f64
        } else {
            // Normal approximation, adequate for the large-rate block counts
            // this workspace draws.
            let draw = self.lambda + self.lambda.sqrt() * standard_normal_f64(rng);
            draw.round().max(0.0)
        }
    }
}

/// The binomial distribution `B(n, p)`.
#[derive(Debug, Clone, Copy)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution; `p` must lie in `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, DistrError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistrError("p must lie in [0, 1]"));
        }
        Ok(Binomial { n, p })
    }
}

impl Distribution<u64> for Binomial {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p == 0.0 || self.n == 0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        let mean = self.n as f64 * self.p;
        let var = mean * (1.0 - self.p);
        if self.n <= 256 || mean < 10.0 || var < 10.0 {
            // Exact Bernoulli sum for small draws or skewed tails.
            (0..self.n).filter(|_| rng.gen_bool(self.p)).count() as u64
        } else {
            // Normal approximation with continuity correction, clamped to the
            // support.
            let draw = mean + var.sqrt() * standard_normal_f64(rng) + 0.5;
            (draw.max(0.0) as u64).min(self.n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = StdRng::seed_from_u64(12);
        for lambda in [2.5, 80.0] {
            let d = Poisson::new(lambda).unwrap();
            let n = 20_000;
            let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda * 0.05 + 0.1,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn binomial_mean_small_and_large() {
        let mut rng = StdRng::seed_from_u64(13);
        for (n_trials, p) in [(40u64, 0.3), (5_000u64, 0.2)] {
            let d = Binomial::new(n_trials, p).unwrap();
            let reps = 5_000;
            let mean = (0..reps).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / reps as f64;
            let expect = n_trials as f64 * p;
            assert!(
                (mean - expect).abs() < expect * 0.05,
                "B({n_trials},{p}): mean {mean}"
            );
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0f64).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Binomial::new(10, 1.5).is_err());
    }
}
