//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Renders the serde shim's [`serde::Value`] model to JSON text and parses
//! JSON text back, exposing the entry points this workspace uses:
//! [`to_writer`], [`to_writer_pretty`], [`to_string`], [`to_string_pretty`],
//! [`from_reader`], [`from_str`] and [`Error`].
//!
//! Number handling matches what the workspace needs for lossless round-trips:
//! `u64`/`i64` are printed as integers, floats via Rust's shortest-round-trip
//! `Display`, and non-finite floats are rejected (as real serde_json does).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::io::{Read, Write};

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("i/o error: {e}"))
    }
}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

// ---------------------------------------------------------------- rendering

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_into(out: &mut String, value: &Value, indent: Option<usize>) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            let s = v.to_string();
            out.push_str(&s);
            // Keep floats recognizably floats on re-parse.
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            let inner = indent.map(|i| i + 2);
            for (idx, item) in items.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                if let Some(i) = inner {
                    out.push('\n');
                    out.push_str(&" ".repeat(i));
                }
                render_into(out, item, inner)?;
            }
            if let Some(i) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(i));
            }
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            let inner = indent.map(|i| i + 2);
            for (idx, (key, item)) in fields.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                if let Some(i) = inner {
                    out.push('\n');
                    out.push_str(&" ".repeat(i));
                }
                escape_into(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render_into(out, item, inner)?;
            }
            if let Some(i) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(i));
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render_into(&mut out, &value.to_value(), None)?;
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render_into(&mut out, &value.to_value(), Some(0))?;
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Serializes `value` as pretty-printed JSON into `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string_pretty(value)?;
    writer.write_all(text.as_bytes())?;
    writer.write_all(b"\n")?;
    Ok(())
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("unexpected character")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this shim's
                            // writer; map lone surrogates to the replacement
                            // character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.error("truncated utf-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses a JSON string into a [`Value`].
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

/// Deserializes a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    Ok(T::from_value(&parse_value(text)?)?)
}

/// Deserializes a value of type `T` from a reader of JSON text.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5)]),
            ),
            ("s".into(), Value::Str("he said \"hi\"\n".into())),
            ("n".into(), Value::Null),
            ("b".into(), Value::Bool(true)),
            ("big".into(), Value::UInt(u64::MAX)),
        ]);
        let compact = to_string(&v).unwrap();
        let back = parse_value(&compact).unwrap();
        // Int/UInt unify on parse; compare through a second render.
        assert_eq!(to_string(&back).unwrap(), compact);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(to_string(&parse_value(&pretty).unwrap()).unwrap(), compact);
    }

    #[test]
    fn f32_round_trip_lossless() {
        for &x in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30, -2.5e-7] {
            let text = to_string(&x).unwrap();
            let back: f32 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn non_finite_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn typed_round_trip() {
        let data: Vec<(u32, String, f64)> = vec![(1, "x".into(), 0.5), (2, "y\t".into(), -3.25)];
        let text = to_string_pretty(&data).unwrap();
        let back: Vec<(u32, String, f64)> = from_str(&text).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn parse_errors_have_positions() {
        assert!(from_str::<u32>("[1,").is_err());
        assert!(parse_value("{\"a\":}").is_err());
        assert!(parse_value("12 34").is_err());
    }
}
