//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API surface:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s, recovering the inner data if a previous holder panicked.

#![forbid(unsafe_code)]

use std::sync;

/// Re-export of the std guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Re-export of the std guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Re-export of the std guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's infallible `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike std, a
    /// panic in a previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's infallible `read()`/`write()` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
