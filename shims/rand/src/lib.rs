//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access and no
//! vendored registry, so external crates cannot be downloaded. This shim
//! implements exactly the API surface the workspace uses — `RngCore`,
//! `Rng::{gen, gen_range, gen_bool, sample}`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng` and `seq::SliceRandom` — on top of a xoshiro256++
//! generator. Streams are deterministic per seed but are **not** bit-compatible
//! with the real `rand` crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the generator's raw bits
/// (the shim's analogue of sampling from the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; the tiny modulo bias of a
                // 64-bit draw over spans this workspace uses is irrelevant.
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as u128 + draw) as $t
            }
        }
    )*};
}
int_range_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_range_impl {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
signed_range_impl!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
float_range_impl!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (full range for ints, `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Draws from a distribution (mirrors `rand::Rng::sample`).
    fn sample<T, D: crate::distributions::Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal distribution trait, re-exported by the `rand_distr` shim.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` by expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna).
    ///
    /// Deterministic per seed; not stream-compatible with `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
