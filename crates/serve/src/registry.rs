//! The model registry: snapshots loaded once, shared read-only.
//!
//! Serving amortizes model load — every [`CpGan`] is deserialized exactly
//! once at startup via `cpgan::persist` and handed to workers behind an
//! `Arc`, so concurrent requests share parameters without copies and a
//! bad snapshot fails the process at boot instead of a request at 3am.

use crate::error::ServeError;
use cpgan::CpGan;
use serde::Value;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Loaded models by name. Insertion order is irrelevant: iteration is
/// name-sorted, so `/v1/models` output is deterministic. Every entry
/// carries a monotonically increasing **snapshot revision** (1, 2, ...
/// in registration order) that the generation cache folds into its key,
/// so re-registering a name under a fresh registry can never alias a
/// stale cached body.
#[derive(Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, (Arc<CpGan>, u64)>,
    next_rev: u64,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Registers an already-constructed model under `name`.
    pub fn insert(&mut self, name: &str, model: CpGan) -> Result<(), ServeError> {
        if name.is_empty() {
            return Err(ServeError::ModelLoad("empty model name".to_string()));
        }
        if self.models.contains_key(name) {
            return Err(ServeError::ModelLoad(format!(
                "duplicate model name '{name}'"
            )));
        }
        self.next_rev += 1;
        self.models
            .insert(name.to_string(), (Arc::new(model), self.next_rev));
        Ok(())
    }

    /// Loads a snapshot from `path` and registers it under the file stem
    /// (e.g. `models/citeseer.json` -> `citeseer`). Returns the name.
    pub fn load_file(&mut self, path: &str) -> Result<String, ServeError> {
        let name = Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .filter(|s| !s.is_empty())
            .ok_or_else(|| {
                ServeError::ModelLoad(format!("cannot derive a model name from '{path}'"))
            })?
            .to_string();
        let model = CpGan::load(path).map_err(|e| ServeError::ModelLoad(format!("{path}: {e}")))?;
        self.insert(&name, model)?;
        Ok(name)
    }

    /// Looks a model up by name.
    pub fn get(&self, name: &str) -> Option<Arc<CpGan>> {
        self.models.get(name).map(|(m, _)| Arc::clone(m))
    }

    /// Looks a model up by name, returning its snapshot revision too
    /// (the cache-key component).
    pub fn get_with_rev(&self, name: &str) -> Option<(Arc<CpGan>, u64)> {
        self.models.get(name).map(|(m, r)| (Arc::clone(m), *r))
    }

    /// When exactly one model is loaded, that model (the default for
    /// requests that omit `"model"`).
    pub fn sole_model(&self) -> Option<(&str, Arc<CpGan>)> {
        if self.models.len() == 1 {
            self.models
                .iter()
                .next()
                .map(|(name, (m, _))| (name.as_str(), Arc::clone(m)))
        } else {
            None
        }
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no model is loaded.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Loaded model names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// The `/v1/models` payload: name, parameter count, trained shape.
    pub fn to_json_value(&self) -> Value {
        let models: Vec<Value> = self
            .models
            .iter()
            .map(|(name, (m, _))| {
                let (nodes, edges) = match m.trained_shape() {
                    Some((n, e)) => (Value::UInt(n as u64), Value::UInt(e as u64)),
                    None => (Value::Null, Value::Null),
                };
                Value::Object(vec![
                    ("name".to_string(), Value::Str(name.clone())),
                    (
                        "parameters".to_string(),
                        Value::UInt(m.param_count() as u64),
                    ),
                    ("trained_nodes".to_string(), nodes),
                    ("trained_edges".to_string(), edges),
                ])
            })
            .collect();
        Value::Object(vec![("models".to_string(), Value::Array(models))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan::CpGanConfig;

    #[test]
    fn insert_get_and_sole_model() {
        let mut reg = ModelRegistry::new();
        assert!(reg.is_empty());
        reg.insert("a", CpGan::new(CpGanConfig::tiny())).unwrap();
        assert_eq!(reg.len(), 1);
        assert!(reg.get("a").is_some());
        assert!(reg.get("b").is_none());
        assert_eq!(
            reg.sole_model().map(|(n, _)| n.to_string()),
            Some("a".into())
        );
        reg.insert("b", CpGan::new(CpGanConfig::tiny())).unwrap();
        assert!(reg.sole_model().is_none(), "ambiguous once two models load");
        assert_eq!(reg.names(), vec!["a", "b"]);
    }

    #[test]
    fn revisions_increase_in_registration_order() {
        let mut reg = ModelRegistry::new();
        reg.insert("a", CpGan::new(CpGanConfig::tiny())).unwrap();
        reg.insert("b", CpGan::new(CpGanConfig::tiny())).unwrap();
        assert_eq!(reg.get_with_rev("a").map(|(_, r)| r), Some(1));
        assert_eq!(reg.get_with_rev("b").map(|(_, r)| r), Some(2));
        assert!(reg.get_with_rev("c").is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut reg = ModelRegistry::new();
        reg.insert("m", CpGan::new(CpGanConfig::tiny())).unwrap();
        let err = reg
            .insert("m", CpGan::new(CpGanConfig::tiny()))
            .unwrap_err();
        assert!(matches!(err, ServeError::ModelLoad(_)));
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn load_file_derives_name_and_surfaces_errors() {
        let mut reg = ModelRegistry::new();
        let err = reg.load_file("/definitely/not/here.json").unwrap_err();
        assert!(matches!(err, ServeError::ModelLoad(_)));
        assert!(err.to_string().contains("not/here.json"));

        let dir = std::env::temp_dir().join("cpgan_serve_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny_model.json");
        CpGan::new(CpGanConfig::tiny()).save(&path).unwrap();
        let name = reg.load_file(path.to_str().unwrap()).unwrap();
        assert_eq!(name, "tiny_model");
        assert!(reg.get("tiny_model").is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn models_json_lists_untrained_shape_as_null() {
        let mut reg = ModelRegistry::new();
        reg.insert("m", CpGan::new(CpGanConfig::tiny())).unwrap();
        let text = serde_json::to_string(&reg.to_json_value()).unwrap();
        assert!(text.contains("\"name\":\"m\""), "{text}");
        assert!(text.contains("\"trained_nodes\":null"), "{text}");
    }
}
