//! The server: one event loop, a bounded queue, a fixed worker pool.
//!
//! Threading model (DESIGN.md §11): a single `serve-event` thread owns
//! the listener and **every** client socket through a `poll(2)`-based
//! readiness loop — it accepts, reads, parses incrementally, answers
//! cheap routes (health, models, metrics, errors, **cache hits**)
//! inline, and hands only cache-miss generation work to the bounded
//! queue. Workers do nothing but generate: they pop jobs, run the
//! model, insert the body into the seed-keyed [`GenCache`], and post a
//! completion back to the event loop via the poller's wakeup. Overload
//! is shed at admission (`429` when the queue is full, `503` at the
//! connection limit), staleness at deadlines (`408`), and shutdown
//! drains: accepting stops, every admitted request still gets its
//! response — with **no sleep-polling anywhere** (every wait is a
//! `poll(2)` or condvar wait with an exact deadline).

use crate::cache::{CacheKey, GenCache};
use crate::error::ServeError;
use crate::event;
use crate::http::{Request, Response};
use crate::protocol::{GenerateRequest, DEFAULT_SEED};
use crate::queue::Bounded;
use crate::registry::ModelRegistry;
use cpgan::CpGan;
use cpgan_graph::io as graph_io;
use cpgan_obs::{counter_add, gauge_set, hist_record, span, Stopwatch};
use polling::Poller;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration. `Default` gives a loopback server with
/// hardware-sized workers, a 64-deep queue, a 5 s request deadline, a
/// 5 s keep-alive idle timeout, and a 16 MiB generation cache.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8787` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads; `0` = `CPGAN_SERVE_WORKERS` env if set, else the
    /// `cpgan-parallel` thread count (`CPGAN_THREADS` /
    /// `available_parallelism`).
    pub workers: usize,
    /// Bounded queue depth; admission beyond it is rejected with `429`.
    pub queue_depth: usize,
    /// Per-request deadline in milliseconds, measured from the first
    /// byte of the request; requests that cannot finish in time are
    /// answered `408`.
    pub deadline_ms: u64,
    /// Maximum jobs a worker drains from the queue per wakeup.
    pub batch_size: usize,
    /// Threads each worker may use *inside* one generation; `None` splits
    /// the `cpgan-parallel` thread count evenly across workers so
    /// concurrent requests do not oversubscribe cores. Results are
    /// bit-identical at any setting (the runtime's determinism contract).
    pub gen_threads: Option<usize>,
    /// Keep-alive idle timeout in milliseconds: a connection with no
    /// request in flight is closed after this much silence.
    pub idle_ms: u64,
    /// Byte budget for the seed-keyed generation cache; `0` disables
    /// caching.
    pub cache_bytes: usize,
    /// Maximum simultaneously open client connections; beyond this new
    /// sockets are answered `503` and closed.
    pub max_conns: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8787".to_string(),
            workers: 0,
            queue_depth: 64,
            deadline_ms: 5_000,
            batch_size: 8,
            gen_threads: None,
            idle_ms: 5_000,
            cache_bytes: 16 * 1024 * 1024,
            max_conns: 1024,
        }
    }
}

/// A cache-miss generation admitted to the worker queue. The stopwatch
/// started at the request's first byte and anchors its deadline.
pub(crate) struct Job {
    /// Event-loop connection id awaiting the completion.
    pub conn_id: usize,
    /// Canonical cache key (also the full generation parameter set).
    pub key: CacheKey,
    /// The resolved model.
    pub model: Arc<CpGan>,
    /// Deadline anchor.
    pub sw: Stopwatch,
}

/// A finished job travelling back to the event loop.
pub(crate) struct Completion {
    /// The connection the response belongs to.
    pub conn_id: usize,
    /// The response to write (`200` with a shared cached body, or an
    /// error from the taxonomy).
    pub response: Response,
}

/// State shared by the event loop and every worker.
pub(crate) struct Shared {
    pub registry: ModelRegistry,
    pub queue: Bounded<Job>,
    pub cache: GenCache,
    completions: Mutex<Vec<Completion>>,
    pub poller: Poller,
    pub deadline: Duration,
    pub idle: Duration,
    pub gen_threads: usize,
    pub workers: usize,
    pub batch_size: usize,
    pub max_conns: usize,
    pub stop: AtomicBool,
}

impl Shared {
    /// Posts a completion and wakes the event loop.
    pub fn complete(&self, completion: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(completion);
        if self.poller.notify().is_err() {
            counter_add("serve.notify_error", 1);
        }
    }

    /// Drains all pending completions (event-loop side).
    pub fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(
            &mut *self
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }
}

/// A running server. Dropping it performs a graceful drain (stop
/// accepting, finish everything admitted, join every thread).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr`, loads nothing (models come pre-loaded in
    /// `registry`), and starts the event-loop and worker threads.
    pub fn start(cfg: ServeConfig, registry: ModelRegistry) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let workers = resolve_workers(cfg.workers);
        let gen_threads = cfg
            .gen_threads
            .unwrap_or_else(|| (cpgan_parallel::current_threads() / workers).max(1))
            .max(1);
        let shared = Arc::new(Shared {
            registry,
            queue: Bounded::new(cfg.queue_depth),
            cache: GenCache::new(cfg.cache_bytes),
            completions: Mutex::new(Vec::new()),
            poller: Poller::new()?,
            deadline: Duration::from_millis(cfg.deadline_ms.max(1)),
            idle: Duration::from_millis(cfg.idle_ms.max(1)),
            gen_threads,
            workers,
            batch_size: cfg.batch_size.max(1),
            max_conns: cfg.max_conns.max(1),
            stop: AtomicBool::new(false),
        });

        let event = {
            let shared = Arc::clone(&shared);
            cpgan_parallel::spawn_service("serve-event", move || event::run(listener, &shared))?
        };
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(cpgan_parallel::spawn_service(
                &format!("serve-worker-{i}"),
                move || worker_loop(&shared),
            )?);
        }

        Ok(Server {
            addr,
            shared,
            event: Some(event),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Worker threads serving generation jobs.
    pub fn worker_count(&self) -> usize {
        self.shared.workers
    }

    /// Jobs currently queued (admission-side observability).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Gracefully drains the server: stops accepting, answers everything
    /// already admitted, and joins all threads. Equivalent to dropping
    /// the server, spelled out for call sites that mean it.
    pub fn shutdown(self) {
        drop(self);
    }

    /// Blocks until the server stops (for the CLI, that is "forever":
    /// only process termination ends a `cpgan serve` run).
    pub fn wait(mut self) {
        if let Some(handle) = self.event.take() {
            join_quietly(handle, "event loop");
        }
        // Reached only if the event loop stopped; drain as usual via Drop.
    }

    fn drain(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The poller wakeup replaces the old sleep-poll shutdown dance:
        // the event loop notices `stop` on the very next `poll` return.
        if self.shared.poller.notify().is_err() {
            counter_add("serve.notify_error", 1);
        }
        if let Some(handle) = self.event.take() {
            join_quietly(handle, "event loop");
        }
        // Only close after the event loop exits so nothing it admitted
        // lands on a closed queue.
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            join_quietly(handle, "worker");
        }
        gauge_set("serve.queue_depth", 0.0);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

fn join_quietly(handle: JoinHandle<()>, who: &str) {
    if handle.join().is_err() {
        eprintln!("cpgan-serve: {who} thread panicked");
    }
}

/// `cfg.workers` if positive, else `CPGAN_SERVE_WORKERS`, else the
/// `cpgan-parallel` thread count. Always at least 1.
fn resolve_workers(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("CPGAN_SERVE_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    cpgan_parallel::current_threads().max(1)
}

// -------------------------------------------------------------- routing

/// What the event loop should do with a parsed request.
pub(crate) enum Routed {
    /// Answer immediately (cheap routes and errors).
    Respond(Response),
    /// Run generation: check the cache under `key`, else dispatch.
    Generate {
        /// The canonical cache key.
        key: CacheKey,
        /// The resolved model.
        model: Arc<CpGan>,
    },
}

/// Routes one request. Everything except generation is answered inline;
/// generation resolves its model and canonical parameters here so the
/// cache key is complete before any queueing happens.
pub(crate) fn route(shared: &Shared, request: &Request) -> Result<Routed, ServeError> {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Ok(Routed::Respond(health(shared))),
        ("GET", "/v1/models") => Ok(Routed::Respond(Response::json(
            200,
            render_json(&shared.registry.to_json_value()),
        ))),
        ("GET", "/metrics") => Ok(Routed::Respond(Response::json(
            200,
            cpgan_obs::snapshot().to_json(),
        ))),
        ("POST", "/v1/generate") => prepare_generate(shared, request),
        (_, "/healthz" | "/v1/models" | "/metrics" | "/v1/generate") => {
            Err(ServeError::MethodNotAllowed {
                method: request.method.clone(),
                path: path.to_string(),
            })
        }
        _ => Err(ServeError::NotFound(request.path.clone())),
    }
}

/// Resolves model, shape, and seed into a canonical [`CacheKey`] —
/// defaulting mirrors `cpgan generate` (trained shape unless overridden,
/// [`DEFAULT_SEED`] unless set), so an empty body and the equivalent
/// explicit request share one cache entry.
fn prepare_generate(shared: &Shared, request: &Request) -> Result<Routed, ServeError> {
    let body = GenerateRequest::from_body(&request.body)?;
    let (name, model, rev) = match &body.model {
        Some(name) => {
            let (model, rev) = shared
                .registry
                .get_with_rev(name)
                .ok_or_else(|| ServeError::UnknownModel(name.clone()))?;
            (name.clone(), model, rev)
        }
        None => {
            let (name, _) = shared.registry.sole_model().ok_or_else(|| {
                ServeError::BadRequest(format!(
                    "request must name a model; loaded: {}",
                    shared.registry.names().join(", ")
                ))
            })?;
            let name = name.to_string();
            let (model, rev) = shared
                .registry
                .get_with_rev(&name)
                .ok_or_else(|| ServeError::UnknownModel(name.clone()))?;
            (name, model, rev)
        }
    };
    let (n, m) = match (model.trained_shape(), body.nodes, body.edges) {
        (_, Some(n), Some(m)) => (n, m),
        (Some((dn, dm)), n, m) => (n.unwrap_or(dn), m.unwrap_or(dm)),
        (None, _, _) => {
            return Err(ServeError::BadRequest(format!(
                "model '{name}' is untrained; request must set nodes and edges"
            )));
        }
    };
    Ok(Routed::Generate {
        key: CacheKey {
            model: name,
            rev,
            nodes: n,
            edges: m,
            seed: body.seed.unwrap_or(DEFAULT_SEED),
        },
        model,
    })
}

// -------------------------------------------------------------- workers

fn worker_loop(shared: &Shared) {
    loop {
        let (batch, done) = shared
            .queue
            .pop_batch(shared.batch_size, Duration::from_millis(25));
        if !batch.is_empty() {
            hist_record("serve.batch_size", batch.len() as f64);
            gauge_set("serve.queue_depth", shared.queue.len() as f64);
        }
        for job in batch {
            hist_record("serve.queue_wait_ns", job.sw.elapsed_ns() as f64);
            let response = run_job(shared, &job);
            shared.complete(Completion {
                conn_id: job.conn_id,
                response,
            });
        }
        if done {
            break;
        }
    }
}

/// Runs one generation job to a response. A panicking model must not
/// kill the worker (the pool is fixed-size) **and** must still answer
/// its connection — otherwise the event loop would hold the socket until
/// its deadline.
fn run_job(shared: &Shared, job: &Job) -> Response {
    if let Err(err) = remaining_deadline(shared, job.sw) {
        count_error(&err);
        return error_response(&err);
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        cpgan_parallel::with_thread_count(shared.gen_threads, || {
            generate_body(&job.model, &job.key)
        })
    }));
    match outcome {
        Ok(Ok(body)) => {
            let body = Arc::new(body);
            shared.cache.insert(job.key.clone(), Arc::clone(&body));
            counter_add("serve.generated", 1);
            Response::shared(200, body)
        }
        Ok(Err(err)) => {
            count_error(&err);
            error_response(&err)
        }
        Err(_) => {
            counter_add("serve.handler_panic", 1);
            let err = ServeError::Internal("generation panicked".to_string());
            count_error(&err);
            error_response(&err)
        }
    }
}

/// Generates the edge-list body for `key` — the same
/// seed → `StdRng` → `write_edge_list` pipeline as `cpgan generate`, so
/// served bytes (cached or not) are byte-identical to the CLI.
fn generate_body(model: &CpGan, key: &CacheKey) -> Result<Vec<u8>, ServeError> {
    let graph = {
        let _g = span("serve.generate");
        let mut rng = StdRng::seed_from_u64(key.seed);
        model.generate(key.nodes, key.edges, &mut rng)
    };
    let mut out = Vec::new();
    graph_io::write_edge_list(&graph, &mut out)
        .map_err(|e| ServeError::Io(std::io::Error::other(e.to_string())))?;
    Ok(out)
}

/// `Err(DeadlineExceeded)` once `sw` has outlived the deadline.
pub(crate) fn remaining_deadline(shared: &Shared, sw: Stopwatch) -> Result<Duration, ServeError> {
    let elapsed = Duration::from_nanos(sw.elapsed_ns());
    if elapsed >= shared.deadline {
        return Err(ServeError::DeadlineExceeded {
            waited_ms: sw.elapsed_ns() / 1_000_000,
            deadline_ms: shared.deadline.as_millis() as u64,
        });
    }
    Ok(shared.deadline - elapsed)
}

fn health(shared: &Shared) -> Response {
    let body = Value::Object(vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        (
            "models".to_string(),
            Value::UInt(shared.registry.len() as u64),
        ),
        (
            "queue_depth".to_string(),
            Value::UInt(shared.queue.len() as u64),
        ),
        (
            "queue_capacity".to_string(),
            Value::UInt(shared.queue.capacity() as u64),
        ),
        ("workers".to_string(), Value::UInt(shared.workers as u64)),
        (
            "deadline_ms".to_string(),
            Value::UInt(shared.deadline.as_millis() as u64),
        ),
        (
            "idle_ms".to_string(),
            Value::UInt(shared.idle.as_millis() as u64),
        ),
        (
            "cache_entries".to_string(),
            Value::UInt(shared.cache.len() as u64),
        ),
        (
            "cache_bytes".to_string(),
            Value::UInt(shared.cache.bytes() as u64),
        ),
    ]);
    Response::json(200, render_json(&body))
}

fn render_json(value: &Value) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string())
}

/// Renders a [`ServeError`] as its HTTP response:
/// `{"error":{"code":...,"message":...,"status":...}}`, with `Retry-After`
/// on overload/shutdown rejections.
pub fn error_response(err: &ServeError) -> Response {
    let body = Value::Object(vec![(
        "error".to_string(),
        Value::Object(vec![
            ("code".to_string(), Value::Str(err.code().to_string())),
            ("message".to_string(), Value::Str(err.to_string())),
            ("status".to_string(), Value::UInt(u64::from(err.status()))),
        ]),
    )]);
    let mut response = Response::json(err.status(), render_json(&body));
    if matches!(
        err,
        ServeError::QueueFull { .. } | ServeError::ShuttingDown | ServeError::OverCapacity { .. }
    ) {
        response.retry_after = Some(1);
    }
    response
}

pub(crate) fn count_error(err: &ServeError) {
    let name = match err {
        ServeError::BadRequest(_) => "serve.err.bad_request",
        ServeError::NotFound(_) => "serve.err.not_found",
        ServeError::UnknownModel(_) => "serve.err.unknown_model",
        ServeError::MethodNotAllowed { .. } => "serve.err.method_not_allowed",
        ServeError::DeadlineExceeded { .. } => "serve.err.deadline",
        ServeError::PayloadTooLarge { .. } => "serve.err.payload_too_large",
        ServeError::QueueFull { .. } => "serve.err.queue_full",
        ServeError::ShuttingDown => "serve.err.shutting_down",
        ServeError::OverCapacity { .. } => "serve.err.over_capacity",
        ServeError::ModelLoad(_) => "serve.err.model_load",
        ServeError::Io(_) => "serve.err.io",
        ServeError::Internal(_) => "serve.err.internal",
    };
    counter_add(name, 1);
}
