//! The server: one acceptor, a bounded queue, a fixed worker pool.
//!
//! Threading model (DESIGN.md §11): the acceptor thread only accepts TCP
//! connections and enqueues them — it never reads request bytes, so a
//! slow or hostile client cannot stall admission. Workers pop micro-
//! batches from the bounded queue and do everything else (parse, route,
//! generate, write). Overload is shed at the acceptor (`429` when the
//! queue is full), staleness at the workers (`408` once the per-request
//! deadline passes), and shutdown drains: accepting stops, every queued
//! and in-flight request still gets its response.

use crate::error::ServeError;
use crate::http::{self, Request, Response};
use crate::protocol::{GenerateRequest, DEFAULT_SEED};
use crate::queue::{Bounded, PushError};
use crate::registry::ModelRegistry;
use cpgan_graph::io as graph_io;
use cpgan_obs::{counter_add, gauge_set, hist_record, span, Stopwatch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration. `Default` gives a loopback server with
/// hardware-sized workers, a 64-deep queue, and a 5 s deadline.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8787` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads; `0` = `CPGAN_SERVE_WORKERS` env if set, else the
    /// `cpgan-parallel` thread count (`CPGAN_THREADS` /
    /// `available_parallelism`).
    pub workers: usize,
    /// Bounded queue depth; admission beyond it is rejected with `429`.
    pub queue_depth: usize,
    /// Per-request deadline in milliseconds, measured from accept;
    /// requests that cannot finish in time are answered `408`.
    pub deadline_ms: u64,
    /// Maximum requests a worker drains from the queue per wakeup.
    pub batch_size: usize,
    /// Threads each worker may use *inside* one generation; `None` splits
    /// the `cpgan-parallel` thread count evenly across workers so
    /// concurrent requests do not oversubscribe cores. Results are
    /// bit-identical at any setting (the runtime's determinism contract).
    pub gen_threads: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8787".to_string(),
            workers: 0,
            queue_depth: 64,
            deadline_ms: 5_000,
            batch_size: 8,
            gen_threads: None,
        }
    }
}

/// One accepted connection waiting for (or in) service. The stopwatch
/// starts at accept and is the request's deadline anchor.
struct Pending {
    stream: TcpStream,
    sw: Stopwatch,
}

/// State shared by the acceptor and every worker.
struct Shared {
    registry: ModelRegistry,
    queue: Bounded<Pending>,
    deadline: Duration,
    gen_threads: usize,
    workers: usize,
    batch_size: usize,
    stop: AtomicBool,
}

/// A running server. Dropping it performs a graceful drain (stop
/// accepting, finish queued and in-flight requests, join every thread).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr`, loads nothing (models come pre-loaded in
    /// `registry`), and starts the acceptor and worker threads.
    pub fn start(cfg: ServeConfig, registry: ModelRegistry) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        // Non-blocking accept lets the acceptor poll the stop flag, so
        // shutdown never needs a wake-up connection.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let workers = resolve_workers(cfg.workers);
        let gen_threads = cfg
            .gen_threads
            .unwrap_or_else(|| (cpgan_parallel::current_threads() / workers).max(1))
            .max(1);
        let shared = Arc::new(Shared {
            registry,
            queue: Bounded::new(cfg.queue_depth),
            deadline: Duration::from_millis(cfg.deadline_ms.max(1)),
            gen_threads,
            workers,
            batch_size: cfg.batch_size.max(1),
            stop: AtomicBool::new(false),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            cpgan_parallel::spawn_service("serve-accept", move || accept_loop(&listener, &shared))?
        };
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(cpgan_parallel::spawn_service(
                &format!("serve-worker-{i}"),
                move || worker_loop(&shared),
            )?);
        }

        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Worker threads serving requests.
    pub fn worker_count(&self) -> usize {
        self.shared.workers
    }

    /// Requests currently queued (admission-side observability).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Gracefully drains the server: stops accepting, answers everything
    /// already queued or in flight, and joins all threads. Equivalent to
    /// dropping the server, spelled out for call sites that mean it.
    pub fn shutdown(self) {
        drop(self);
    }

    /// Blocks until the server stops (for the CLI, that is "forever":
    /// only process termination ends a `cpgan serve` run).
    pub fn wait(mut self) {
        if let Some(handle) = self.acceptor.take() {
            join_quietly(handle, "acceptor");
        }
        // Reached only if the acceptor stopped; drain as usual via Drop.
    }

    fn drain(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            join_quietly(handle, "acceptor");
        }
        // Only close after the acceptor exits so nothing it admitted
        // lands on a closed queue.
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            join_quietly(handle, "worker");
        }
        gauge_set("serve.queue_depth", 0.0);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

fn join_quietly(handle: JoinHandle<()>, who: &str) {
    if handle.join().is_err() {
        eprintln!("cpgan-serve: {who} thread panicked");
    }
}

/// `cfg.workers` if positive, else `CPGAN_SERVE_WORKERS`, else the
/// `cpgan-parallel` thread count. Always at least 1.
fn resolve_workers(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("CPGAN_SERVE_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    cpgan_parallel::current_threads().max(1)
}

// ------------------------------------------------------------- acceptor

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _g = span("serve.accept");
                counter_add("serve.accepted", 1);
                // Accepted sockets may inherit the listener's non-blocking
                // mode (platform-dependent); workers want blocking reads
                // bounded by read timeouts.
                if stream.set_nonblocking(false).is_err() {
                    counter_add("serve.accept_error", 1);
                    continue;
                }
                let pending = Pending {
                    stream,
                    sw: Stopwatch::start(),
                };
                match shared.queue.try_push(pending) {
                    Ok(()) => {
                        gauge_set("serve.queue_depth", shared.queue.len() as f64);
                    }
                    Err(PushError::Full(p)) => {
                        counter_add("serve.err.queue_full", 1);
                        reject(
                            p.stream,
                            &ServeError::QueueFull {
                                depth: shared.queue.capacity(),
                            },
                        );
                    }
                    Err(PushError::Closed(p)) => {
                        counter_add("serve.err.shutting_down", 1);
                        reject(p.stream, &ServeError::ShuttingDown);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                counter_add("serve.accept_error", 1);
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Fast-rejection path (`429`/`503`): answer without reading the request,
/// then drain whatever the client already sent so closing the socket
/// cannot RST the response away before the client reads it.
fn reject(mut stream: TcpStream, err: &ServeError) {
    let response = error_response(err);
    if http::write_response(&mut stream, &response).is_err() {
        counter_add("serve.write_error", 1);
    }
    drain_connection(&mut stream);
}

/// Half-closes the write side and consumes leftover request bytes (with a
/// short timeout) so `close()` never discards an already-written response.
fn drain_connection(stream: &mut TcpStream) {
    let _ = stream.shutdown(Shutdown::Write);
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let mut sink = [0u8; 512];
    while let Ok(n) = stream.read(&mut sink) {
        if n == 0 {
            break;
        }
    }
}

// -------------------------------------------------------------- workers

fn worker_loop(shared: &Shared) {
    loop {
        let (batch, done) = shared
            .queue
            .pop_batch(shared.batch_size, Duration::from_millis(25));
        if !batch.is_empty() {
            hist_record("serve.batch_size", batch.len() as f64);
            gauge_set("serve.queue_depth", shared.queue.len() as f64);
        }
        for pending in batch {
            // A panicking handler must not kill the worker: the pool is
            // fixed-size, so a lost worker would silently shrink capacity
            // for the rest of the process.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                cpgan_parallel::with_thread_count(shared.gen_threads, || {
                    handle_pending(shared, pending)
                })
            }));
            if outcome.is_err() {
                counter_add("serve.handler_panic", 1);
            }
        }
        if done {
            break;
        }
    }
}

fn handle_pending(shared: &Shared, mut pending: Pending) {
    let _root = span("serve.request");
    hist_record("serve.queue_wait_ns", pending.sw.elapsed_ns() as f64);
    counter_add("serve.requests", 1);
    let (response, request_consumed) = match serve_one(shared, &mut pending.stream, pending.sw) {
        Ok(response) => (response, true),
        Err(err) => {
            count_error(&err);
            (error_response(&err), false)
        }
    };
    {
        let _w = span("serve.write");
        let ok = response.status == 200;
        match http::write_response(&mut pending.stream, &response) {
            Ok(()) if ok => counter_add("serve.ok", 1),
            Ok(()) => {}
            Err(_) => counter_add("serve.write_error", 1),
        }
    }
    if !request_consumed {
        // The request may be half-read; drain it so close cannot RST the
        // error response away.
        drain_connection(&mut pending.stream);
    }
    hist_record("serve.request_latency_ns", pending.sw.elapsed_ns() as f64);
}

/// Parses and routes one request, enforcing the deadline at each stage
/// boundary (queue exit, parse, pre-generate).
fn serve_one(
    shared: &Shared,
    stream: &mut TcpStream,
    sw: Stopwatch,
) -> Result<Response, ServeError> {
    let remaining = remaining_deadline(shared, sw)?;
    stream.set_read_timeout(Some(remaining))?;
    let request = {
        let _g = span("serve.parse");
        match http::read_request(stream) {
            Ok(request) => request,
            Err(ServeError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // The read timeout is the remaining deadline, so running
                // out of socket is running out of time.
                return Err(deadline_exceeded(shared, sw));
            }
            Err(err) => return Err(err),
        }
    };
    route(shared, sw, &request)
}

fn remaining_deadline(shared: &Shared, sw: Stopwatch) -> Result<Duration, ServeError> {
    let elapsed = Duration::from_nanos(sw.elapsed_ns());
    if elapsed >= shared.deadline {
        return Err(deadline_exceeded(shared, sw));
    }
    Ok((shared.deadline - elapsed).max(Duration::from_millis(1)))
}

fn deadline_exceeded(shared: &Shared, sw: Stopwatch) -> ServeError {
    ServeError::DeadlineExceeded {
        waited_ms: sw.elapsed_ns() / 1_000_000,
        deadline_ms: shared.deadline.as_millis() as u64,
    }
}

fn route(shared: &Shared, sw: Stopwatch, request: &Request) -> Result<Response, ServeError> {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Ok(health(shared)),
        ("GET", "/v1/models") => Ok(Response::json(
            200,
            render_json(&shared.registry.to_json_value()),
        )),
        ("GET", "/metrics") => Ok(Response::json(200, cpgan_obs::snapshot().to_json())),
        ("POST", "/v1/generate") => generate(shared, sw, request),
        (_, "/healthz" | "/v1/models" | "/metrics" | "/v1/generate") => {
            Err(ServeError::MethodNotAllowed {
                method: request.method.clone(),
                path: path.to_string(),
            })
        }
        _ => Err(ServeError::NotFound(request.path.clone())),
    }
}

fn generate(shared: &Shared, sw: Stopwatch, request: &Request) -> Result<Response, ServeError> {
    let body = GenerateRequest::from_body(&request.body)?;
    let (name, model) = match &body.model {
        Some(name) => {
            let model = shared
                .registry
                .get(name)
                .ok_or_else(|| ServeError::UnknownModel(name.clone()))?;
            (name.clone(), model)
        }
        None => shared
            .registry
            .sole_model()
            .map(|(n, m)| (n.to_string(), m))
            .ok_or_else(|| {
                ServeError::BadRequest(format!(
                    "request must name a model; loaded: {}",
                    shared.registry.names().join(", ")
                ))
            })?,
    };
    // Defaulting mirrors `cpgan generate`: the trained shape unless
    // overridden; an untrained model needs both overrides.
    let (n, m) = match (model.trained_shape(), body.nodes, body.edges) {
        (_, Some(n), Some(m)) => (n, m),
        (Some((dn, dm)), n, m) => (n.unwrap_or(dn), m.unwrap_or(dm)),
        (None, _, _) => {
            return Err(ServeError::BadRequest(format!(
                "model '{name}' is untrained; request must set nodes and edges"
            )));
        }
    };
    // Generation is the expensive stage; do not start it for a request
    // that has already missed its deadline.
    remaining_deadline(shared, sw)?;
    let seed = body.seed.unwrap_or(DEFAULT_SEED);
    let graph = {
        let _g = span("serve.generate");
        let mut rng = StdRng::seed_from_u64(seed);
        model.generate(n, m, &mut rng)
    };
    let mut out = Vec::new();
    graph_io::write_edge_list(&graph, &mut out)
        .map_err(|e| ServeError::Io(std::io::Error::other(e.to_string())))?;
    Ok(Response::text(200, out))
}

fn health(shared: &Shared) -> Response {
    let body = Value::Object(vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        (
            "models".to_string(),
            Value::UInt(shared.registry.len() as u64),
        ),
        (
            "queue_depth".to_string(),
            Value::UInt(shared.queue.len() as u64),
        ),
        (
            "queue_capacity".to_string(),
            Value::UInt(shared.queue.capacity() as u64),
        ),
        ("workers".to_string(), Value::UInt(shared.workers as u64)),
        (
            "deadline_ms".to_string(),
            Value::UInt(shared.deadline.as_millis() as u64),
        ),
    ]);
    Response::json(200, render_json(&body))
}

fn render_json(value: &Value) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string())
}

/// Renders a [`ServeError`] as its HTTP response:
/// `{"error":{"code":...,"message":...,"status":...}}`, with `Retry-After`
/// on overload/shutdown rejections.
pub fn error_response(err: &ServeError) -> Response {
    let body = Value::Object(vec![(
        "error".to_string(),
        Value::Object(vec![
            ("code".to_string(), Value::Str(err.code().to_string())),
            ("message".to_string(), Value::Str(err.to_string())),
            ("status".to_string(), Value::UInt(u64::from(err.status()))),
        ]),
    )]);
    let mut response = Response::json(err.status(), render_json(&body));
    if matches!(err, ServeError::QueueFull { .. } | ServeError::ShuttingDown) {
        response.retry_after = Some(1);
    }
    response
}

fn count_error(err: &ServeError) {
    let name = match err {
        ServeError::BadRequest(_) => "serve.err.bad_request",
        ServeError::NotFound(_) => "serve.err.not_found",
        ServeError::UnknownModel(_) => "serve.err.unknown_model",
        ServeError::MethodNotAllowed { .. } => "serve.err.method_not_allowed",
        ServeError::DeadlineExceeded { .. } => "serve.err.deadline",
        ServeError::PayloadTooLarge { .. } => "serve.err.payload_too_large",
        ServeError::QueueFull { .. } => "serve.err.queue_full",
        ServeError::ShuttingDown => "serve.err.shutting_down",
        ServeError::ModelLoad(_) => "serve.err.model_load",
        ServeError::Io(_) => "serve.err.io",
    };
    counter_add(name, 1);
}
