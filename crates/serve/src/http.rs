//! Minimal std-only HTTP/1.1 framing.
//!
//! Just enough of RFC 9112 for the serving API: one request per
//! connection (`Connection: close` on every response), `Content-Length`
//! bodies only (no chunked transfer), and hard limits on header and body
//! size so a hostile peer cannot balloon memory. Anything outside that
//! subset is a [`ServeError::BadRequest`].

use crate::error::ServeError;
use std::io::{Read, Write};

/// Maximum accepted size of the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Maximum accepted request body size, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, e.g. `/v1/generate` (query strings are kept
    /// verbatim; the serving API does not use them).
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Byte offset just past the `\r\n\r\n` (or lenient `\n\n`) head
/// terminator, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Reads and parses one request from `stream`.
///
/// Timeouts configured on the stream surface as [`ServeError::Io`] with
/// kind `WouldBlock`/`TimedOut`; the caller maps those onto the request
/// deadline (`408`). Oversized heads/bodies and malformed framing are
/// `400`/`413`.
pub fn read_request<R: Read>(stream: &mut R) -> Result<Request, ServeError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut tmp = [0u8; 2048];
    let head_len = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ServeError::BadRequest(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            return Err(ServeError::BadRequest(if buf.is_empty() {
                "connection closed before any request bytes".to_string()
            } else {
                "connection closed mid-request-head".to_string()
            }));
        }
        buf.extend_from_slice(&tmp[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| ServeError::BadRequest("request head is not valid UTF-8".to_string()))?;
    let mut lines = head.lines().filter(|l| !l.trim().is_empty());
    let request_line = lines
        .next()
        .ok_or_else(|| ServeError::BadRequest("empty request head".to_string()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServeError::BadRequest("missing method".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ServeError::BadRequest("missing request target".to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| ServeError::BadRequest("missing HTTP version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::BadRequest(format!(
            "unsupported protocol version '{version}'"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ServeError::BadRequest(format!("malformed header line '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ServeError::BadRequest(format!("unparseable content-length '{v}'")))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ServeError::PayloadTooLarge {
            limit: MAX_BODY_BYTES,
        });
    }

    let mut body = buf[head_len..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            return Err(ServeError::BadRequest(format!(
                "body truncated: got {} of {content_length} declared bytes",
                body.len()
            )));
        }
        body.extend_from_slice(&tmp[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// An HTTP response about to be written.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Optional `Retry-After` header value in seconds (`429`/`503`).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A plain-text response (the edge-list payload of `/v1/generate`).
    pub fn text(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
            retry_after: None,
        }
    }
}

/// Canonical reason phrase for the statuses the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes `response` (with `Connection: close`) and flushes.
pub fn write_response<W: Write>(stream: &mut W, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    if let Some(secs) = response.retry_after {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, ServeError> {
        read_request(&mut text.as_bytes())
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse("GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let body = r#"{"seed":3}"#;
        let text = format!(
            "POST /v1/generate HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let r = parse(&text).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, body.as_bytes());
    }

    #[test]
    fn tolerates_bare_lf_heads() {
        let r = parse("GET /v1/models HTTP/1.1\nhost: y\n\n").unwrap();
        assert_eq!(r.path, "/v1/models");
    }

    #[test]
    fn rejects_bad_framing() {
        assert!(matches!(parse(""), Err(ServeError::BadRequest(_))));
        assert!(matches!(
            parse("garbage\r\n\r\n"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n"),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let text = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(&text),
            Err(ServeError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn truncated_body_is_bad_request() {
        let text = "POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
        assert!(matches!(parse(text), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn response_round_trips_headers() {
        let mut out = Vec::new();
        let mut resp = Response::json(429, "{}".to_string());
        resp.retry_after = Some(1);
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
