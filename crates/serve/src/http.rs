//! Minimal std-only HTTP/1.1 framing for the event-loop connection layer.
//!
//! Just enough of RFC 9112 for the serving API, parsed **incrementally**:
//! [`parse_request`] consumes a prefix of a connection's receive buffer
//! and either yields a complete request (plus the byte count to drain),
//! asks for more bytes, or fails with a typed [`ServeError`]. Responses
//! support HTTP/1.1 keep-alive and `Transfer-Encoding: chunked` bodies;
//! [`parse_reply`] is the matching client-side decoder used by the
//! integration tests and the load bench. Hard limits on head and body
//! size keep a hostile peer from ballooning memory.

use crate::error::ServeError;
use std::sync::Arc;

/// Maximum accepted size of the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Maximum accepted request body size, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, e.g. `/v1/generate` (query strings are kept
    /// verbatim; the serving API does not use them).
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// HTTP minor version (`1` for HTTP/1.1, `0` for HTTP/1.0).
    pub version_minor: u8,
}

impl Request {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client wants the connection kept open after this
    /// exchange: HTTP/1.1 defaults to keep-alive unless `Connection:
    /// close`; HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        let conn = self
            .header("connection")
            .map(str::to_ascii_lowercase)
            .unwrap_or_default();
        if self.version_minor >= 1 {
            conn != "close"
        } else {
            conn == "keep-alive"
        }
    }
}

/// Byte offset just past the `\r\n\r\n` (or lenient `\n\n`) head
/// terminator, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Incrementally parses one request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a complete request is
/// present (`consumed` bytes must be drained from `buf`; the remainder is
/// the next pipelined request), `Ok(None)` when more bytes are needed,
/// and `Err` for malformed framing (`400`) or over-limit heads/bodies
/// (`400`/`413`) — after which the connection's framing is unrecoverable
/// and the caller must close it once the error response is written.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, ServeError> {
    let Some(head_len) = head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ServeError::BadRequest(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        return Ok(None);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(ServeError::BadRequest(format!(
            "request head exceeds {MAX_HEAD_BYTES} bytes"
        )));
    }

    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| ServeError::BadRequest("request head is not valid UTF-8".to_string()))?;
    let mut lines = head.lines().filter(|l| !l.trim().is_empty());
    let request_line = lines
        .next()
        .ok_or_else(|| ServeError::BadRequest("empty request head".to_string()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServeError::BadRequest("missing method".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ServeError::BadRequest("missing request target".to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| ServeError::BadRequest("missing HTTP version".to_string()))?;
    let version_minor = match version {
        "HTTP/1.1" => 1,
        "HTTP/1.0" => 0,
        other if other.starts_with("HTTP/1.") => 1,
        other => {
            return Err(ServeError::BadRequest(format!(
                "unsupported protocol version '{other}'"
            )));
        }
    };

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ServeError::BadRequest(format!("malformed header line '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ServeError::BadRequest(format!("unparseable content-length '{v}'")))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ServeError::PayloadTooLarge {
            limit: MAX_BODY_BYTES,
        });
    }
    let total = head_len + content_length;
    if buf.len() < total {
        return Ok(None);
    }

    Ok(Some((
        Request {
            method,
            path,
            headers,
            body: buf[head_len..total].to_vec(),
            version_minor,
        },
        total,
    )))
}

/// A response body: owned bytes, or a shared cache entry served without
/// copying (the head is assembled separately; body bytes are written to
/// the socket straight from the `Arc`).
#[derive(Debug, Clone)]
pub enum Body {
    /// Response-local bytes.
    Owned(Vec<u8>),
    /// A shared (cached) body.
    Shared(Arc<Vec<u8>>),
}

impl Body {
    /// The body bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Shared(a) => a,
        }
    }

    /// Body length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

/// An HTTP response about to be written.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Body,
    /// Optional `Retry-After` header value in seconds (`429`/`503`).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: Body::Owned(body.into_bytes()),
            retry_after: None,
        }
    }

    /// A plain-text response (the edge-list payload of `/v1/generate`).
    pub fn text(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: Body::Owned(body),
            retry_after: None,
        }
    }

    /// A plain-text response sharing an existing (cached) body without
    /// copying it.
    pub fn shared(status: u16, body: Arc<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: Body::Shared(body),
            retry_after: None,
        }
    }
}

/// Canonical reason phrase for the statuses the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders the response head (status line + headers + blank line).
/// `chunked` selects `transfer-encoding: chunked` framing instead of
/// `content-length`; `keep_alive` selects the `connection` header.
pub fn encode_head(response: &Response, keep_alive: bool, chunked: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
    );
    if chunked {
        head.push_str("transfer-encoding: chunked\r\n");
    } else {
        head.push_str(&format!("content-length: {}\r\n", response.body.len()));
    }
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n"
    } else {
        "connection: close\r\n"
    });
    if let Some(secs) = response.retry_after {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    head.push_str("\r\n");
    head.into_bytes()
}

/// A decoded response, as seen by a client (tests, the load bench).
#[derive(Debug)]
pub struct Reply {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The de-framed body (chunked bodies are reassembled).
    pub body: Vec<u8>,
}

impl Reply {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Incrementally decodes one response from the front of `buf`: the
/// client-side mirror of [`parse_request`]. Returns the reply plus the
/// byte count to drain (so keep-alive clients can decode back-to-back
/// responses from one buffer), `Ok(None)` when more bytes are needed.
pub fn parse_reply(buf: &[u8]) -> Result<Option<(Reply, usize)>, ServeError> {
    let Some(head_len) = head_end(buf) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| ServeError::BadRequest("reply head is not valid UTF-8".to_string()))?;
    let mut lines = head.lines().filter(|l| !l.trim().is_empty());
    let status_line = lines
        .next()
        .ok_or_else(|| ServeError::BadRequest("empty reply head".to_string()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ServeError::BadRequest(format!("bad status line '{status_line}'")))?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ServeError::BadRequest(format!("malformed header line '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    if !chunked {
        let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| ServeError::BadRequest(format!("unparseable content-length '{v}'")))?,
            None => 0,
        };
        let total = head_len + content_length;
        if buf.len() < total {
            return Ok(None);
        }
        return Ok(Some((
            Reply {
                status,
                headers,
                body: buf[head_len..total].to_vec(),
            },
            total,
        )));
    }

    // Chunked: `<hex size>\r\n<data>\r\n`... terminated by a zero chunk.
    let mut body = Vec::new();
    let mut pos = head_len;
    loop {
        let rest = &buf[pos..];
        let Some(line_end) = rest.windows(2).position(|w| w == b"\r\n") else {
            return Ok(None);
        };
        let size_text = std::str::from_utf8(&rest[..line_end])
            .map_err(|_| ServeError::BadRequest("non-utf8 chunk size".to_string()))?
            .trim();
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| ServeError::BadRequest(format!("bad chunk size '{size_text}'")))?;
        let data_start = pos + line_end + 2;
        if size == 0 {
            // Trailing CRLF after the zero chunk.
            if buf.len() < data_start + 2 {
                return Ok(None);
            }
            return Ok(Some((
                Reply {
                    status,
                    headers,
                    body,
                },
                data_start + 2,
            )));
        }
        if buf.len() < data_start + size + 2 {
            return Ok(None);
        }
        body.extend_from_slice(&buf[data_start..data_start + size]);
        pos = data_start + size + 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Option<(Request, usize)>, ServeError> {
        parse_request(text.as_bytes())
    }

    fn parse_complete(text: &str) -> Request {
        match parse(text) {
            Ok(Some((r, used))) => {
                assert_eq!(used, text.len(), "must consume the whole request");
                r
            }
            other => panic!("expected a complete request, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse_complete("GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
        assert_eq!(r.version_minor, 1);
        assert!(r.wants_keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let body = r#"{"seed":3}"#;
        let text = format!(
            "POST /v1/generate HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let r = parse_complete(&text);
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, body.as_bytes());
    }

    #[test]
    fn incomplete_requests_ask_for_more_bytes() {
        assert!(matches!(parse("GET /x HTTP/1.1\r\nhost"), Ok(None)));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc"),
            Ok(None),
        ));
        assert!(matches!(parse(""), Ok(None)));
    }

    #[test]
    fn pipelined_requests_consume_one_at_a_time() {
        let text = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (r, used) = parse(text).unwrap().unwrap();
        assert_eq!(r.path, "/a");
        let (r2, used2) = parse_request(&text.as_bytes()[used..]).unwrap().unwrap();
        assert_eq!(r2.path, "/b");
        assert_eq!(used + used2, text.len());
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let r = parse_complete("GET / HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(!r.wants_keep_alive());
        let r = parse_complete("GET / HTTP/1.0\r\n\r\n");
        assert!(!r.wants_keep_alive(), "HTTP/1.0 defaults to close");
        let r = parse_complete("GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n");
        assert!(r.wants_keep_alive());
    }

    #[test]
    fn tolerates_bare_lf_heads() {
        let r = parse_complete("GET /v1/models HTTP/1.1\nhost: y\n\n");
        assert_eq!(r.path, "/v1/models");
    }

    #[test]
    fn rejects_bad_framing() {
        assert!(matches!(
            parse("garbage\r\n\r\n"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n"),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_head_rejected_even_before_terminator() {
        let text = format!("GET /{} HTTP/1.1", "x".repeat(MAX_HEAD_BYTES + 8));
        assert!(matches!(parse(&text), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let text = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(&text),
            Err(ServeError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn head_encodes_framing_and_connection_modes() {
        let mut resp = Response::json(429, "{}".to_string());
        resp.retry_after = Some(1);
        let head = String::from_utf8(encode_head(&resp, false, false)).unwrap();
        assert!(
            head.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{head}"
        );
        assert!(head.contains("content-length: 2\r\n"));
        assert!(head.contains("connection: close\r\n"));
        assert!(head.contains("retry-after: 1\r\n"));
        assert!(head.ends_with("\r\n\r\n"));

        let resp = Response::text(200, b"hello".to_vec());
        let head = String::from_utf8(encode_head(&resp, true, true)).unwrap();
        assert!(head.contains("transfer-encoding: chunked\r\n"));
        assert!(!head.contains("content-length"), "{head}");
        assert!(head.contains("connection: keep-alive\r\n"));
    }

    #[test]
    fn reply_parser_round_trips_content_length() {
        let wire =
            b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\ncontent-length: 5\r\n\r\nhello<next>";
        let (reply, used) = parse_reply(wire).unwrap().unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, b"hello");
        assert_eq!(&wire[used..], b"<next>");
        assert!(matches!(parse_reply(&wire[..used - 1]), Ok(None)));
    }

    #[test]
    fn reply_parser_reassembles_chunked_bodies() {
        let wire = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\nrest";
        let (reply, used) = parse_reply(wire).unwrap().unwrap();
        assert_eq!(reply.body, b"wikipedia");
        assert_eq!(&wire[used..], b"rest");
        // Truncated mid-chunk: incomplete.
        assert!(matches!(parse_reply(&wire[..wire.len() - 10]), Ok(None)));
    }
}
