//! A bounded MPMC queue with explicit overload and drain semantics.
//!
//! The serving layer's backpressure hinges on two properties: a full
//! queue rejects **immediately** (no blocking producers, so the acceptor
//! can answer `429` while overloaded) and a closed queue still hands out
//! everything already enqueued (so graceful shutdown drains in-flight
//! requests instead of dropping them).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Why [`Bounded::try_push`] refused an item. The item is handed back so
/// the caller can respond on its connection.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue was closed for shutdown.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A poisoned lock means a consumer panicked mid-pop; the queue
        // state itself is still coherent (push/pop are single statements),
        // so keep serving rather than wedging every thread.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `item`, or returns it with the reason it was refused.
    /// Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues up to `max` items as one micro-batch, waiting up to
    /// `timeout` for the first item.
    ///
    /// Returns the batch plus `done = true` once the queue is closed
    /// **and** drained — the consumer's signal to exit. A non-empty batch
    /// can accompany `done = false` even after close: close only stops new
    /// work, it never drops queued work.
    pub fn pop_batch(&self, max: usize, timeout: Duration) -> (Vec<T>, bool) {
        let mut state = self.lock();
        if state.items.is_empty() && !state.closed {
            let (guard, _timeout_result) = self
                .available
                .wait_timeout(state, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
        let take = state.items.len().min(max.max(1));
        let batch: Vec<T> = state.items.drain(..take).collect();
        let done = state.closed && state.items.is_empty();
        if !state.items.is_empty() {
            // Leftovers for other consumers.
            drop(state);
            self.available.notify_one();
        }
        (batch, done)
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// queued items remain poppable, and all waiting consumers wake.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(10);

    #[test]
    fn push_pop_fifo_order() {
        let q = Bounded::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let (batch, done) = q.pop_batch(3, TICK);
        assert_eq!(batch, vec![0, 1, 2]);
        assert!(!done);
        let (batch, done) = q.pop_batch(10, TICK);
        assert_eq!(batch, vec![3, 4]);
        assert!(!done);
    }

    #[test]
    fn full_queue_rejects_immediately() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains_items() {
        let q = Bounded::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert!(matches!(q.try_push(8), Err(PushError::Closed(8))));
        let (batch, done) = q.pop_batch(4, TICK);
        assert_eq!(batch, vec![7]);
        assert!(done, "closed + drained must report done");
        let (batch, done) = q.pop_batch(4, TICK);
        assert!(batch.is_empty());
        assert!(done);
    }

    #[test]
    fn close_with_backlog_is_not_done_until_drained() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        let (batch, done) = q.pop_batch(1, TICK);
        assert_eq!(batch, vec![1]);
        assert!(!done, "still one item queued");
        let (batch, done) = q.pop_batch(1, TICK);
        assert_eq!(batch, vec![2]);
        assert!(done);
    }

    #[test]
    fn empty_pop_times_out_quickly() {
        let q: Bounded<u32> = Bounded::new(1);
        let (batch, done) = q.pop_batch(1, Duration::from_millis(1));
        assert!(batch.is_empty());
        assert!(!done);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(PushError::Full(_))));
    }
}
