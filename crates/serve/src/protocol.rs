//! The `/v1/generate` request body.
//!
//! A strict parser: unknown fields and wrong types are `400`s with the
//! offending field named, so a misconfigured client learns immediately
//! instead of silently generating with defaults.

use crate::error::ServeError;
use serde::Value;

/// Parsed body of `POST /v1/generate`. All fields optional; defaults
/// mirror `cpgan generate` exactly (that is what makes served output
/// byte-identical to the CLI's).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GenerateRequest {
    /// Model name; may be omitted when exactly one model is loaded.
    pub model: Option<String>,
    /// Node-count override (defaults to the model's trained shape).
    pub nodes: Option<usize>,
    /// Edge-count override (defaults to the model's trained shape).
    pub edges: Option<usize>,
    /// Generation seed (defaults to 7, the CLI default).
    pub seed: Option<u64>,
}

/// The seed used when a request omits `"seed"` — identical to the CLI's
/// `--seed` default so bare requests match bare `cpgan generate` runs.
pub const DEFAULT_SEED: u64 = 7;

fn bad(field: &str, expected: &str, got: &Value) -> ServeError {
    ServeError::BadRequest(format!(
        "field '{field}' must be {expected}, got {}",
        got.kind()
    ))
}

impl GenerateRequest {
    /// Parses a request body. An empty body is the all-defaults request.
    pub fn from_body(body: &[u8]) -> Result<GenerateRequest, ServeError> {
        if body.iter().all(u8::is_ascii_whitespace) {
            return Ok(GenerateRequest::default());
        }
        let text = std::str::from_utf8(body)
            .map_err(|_| ServeError::BadRequest("body is not valid UTF-8".to_string()))?;
        let value = serde_json::parse_value(text)
            .map_err(|e| ServeError::BadRequest(format!("body is not valid JSON: {e}")))?;
        let Value::Object(fields) = &value else {
            return Err(ServeError::BadRequest(format!(
                "body must be a JSON object, got {}",
                value.kind()
            )));
        };
        let mut req = GenerateRequest::default();
        for (key, val) in fields {
            match key.as_str() {
                "model" => match val {
                    Value::Str(s) => req.model = Some(s.clone()),
                    other => return Err(bad("model", "a string", other)),
                },
                "nodes" => {
                    let v = val
                        .as_u64()
                        .ok_or_else(|| bad("nodes", "a non-negative integer", val))?;
                    req.nodes = Some(usize::try_from(v).map_err(|_| {
                        ServeError::BadRequest(format!("field 'nodes' too large: {v}"))
                    })?);
                }
                "edges" => {
                    let v = val
                        .as_u64()
                        .ok_or_else(|| bad("edges", "a non-negative integer", val))?;
                    req.edges = Some(usize::try_from(v).map_err(|_| {
                        ServeError::BadRequest(format!("field 'edges' too large: {v}"))
                    })?);
                }
                "seed" => {
                    req.seed = Some(
                        val.as_u64()
                            .ok_or_else(|| bad("seed", "a non-negative integer", val))?,
                    );
                }
                other => {
                    return Err(ServeError::BadRequest(format!(
                        "unknown field '{other}' (expected model/nodes/edges/seed)"
                    )));
                }
            }
        }
        Ok(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_body_is_all_defaults() {
        assert_eq!(
            GenerateRequest::from_body(b"").unwrap(),
            GenerateRequest::default()
        );
        assert_eq!(
            GenerateRequest::from_body(b"  \n").unwrap(),
            GenerateRequest::default()
        );
    }

    #[test]
    fn parses_full_request() {
        let r =
            GenerateRequest::from_body(br#"{"model":"citeseer","nodes":120,"edges":340,"seed":9}"#)
                .unwrap();
        assert_eq!(r.model.as_deref(), Some("citeseer"));
        assert_eq!(r.nodes, Some(120));
        assert_eq!(r.edges, Some(340));
        assert_eq!(r.seed, Some(9));
    }

    #[test]
    fn rejects_malformed_bodies_with_field_names() {
        let cases: Vec<(&[u8], &str)> = vec![
            (b"not json", "JSON"),
            (b"[1,2]", "object"),
            (br#"{"model":3}"#, "'model'"),
            (br#"{"nodes":-4}"#, "'nodes'"),
            (br#"{"seed":"abc"}"#, "'seed'"),
            (br#"{"extra":1}"#, "unknown field 'extra'"),
        ];
        for (body, needle) in cases {
            let err = GenerateRequest::from_body(body).unwrap_err();
            assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
            assert!(
                err.to_string().contains(needle),
                "message '{err}' should mention {needle}"
            );
        }
    }
}
