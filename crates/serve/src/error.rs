//! The serving error taxonomy and its HTTP mapping.
//!
//! Every way a request can fail is a [`ServeError`] variant with a fixed
//! status code and a stable machine-readable `code` string, so clients can
//! branch on failures without parsing prose and tests can assert exact
//! semantics (DESIGN.md §11).

use std::fmt;

/// Everything that can go wrong while serving (or starting the server).
#[derive(Debug)]
pub enum ServeError {
    /// The request could not be parsed (HTTP framing or JSON body). `400`.
    BadRequest(String),
    /// No route matches the request path. `404`.
    NotFound(String),
    /// The requested model name is not in the registry. `404`.
    UnknownModel(String),
    /// The path exists but not for this method. `405`.
    MethodNotAllowed {
        /// The method the client used.
        method: String,
        /// The path it targeted.
        path: String,
    },
    /// The per-request deadline elapsed before a response was produced
    /// (in queue, mid-parse, or before generation started). `408`.
    DeadlineExceeded {
        /// Time the request had been in flight when it was abandoned.
        waited_ms: u64,
        /// The configured deadline.
        deadline_ms: u64,
    },
    /// The declared request body exceeds the server's limit. `413`.
    PayloadTooLarge {
        /// Maximum accepted body size in bytes.
        limit: usize,
    },
    /// The bounded request queue is full — fast rejection so overload
    /// sheds load instead of building unbounded latency. `429` with
    /// `Retry-After`.
    QueueFull {
        /// The configured queue capacity that was exhausted.
        depth: usize,
    },
    /// The server is draining and no longer accepts new requests. `503`.
    ShuttingDown,
    /// The connection limit is reached; new sockets are turned away
    /// before they can consume event-loop state. `503` with
    /// `Retry-After`.
    OverCapacity {
        /// The configured connection limit that was hit.
        limit: usize,
    },
    /// A model file could not be loaded into the registry at startup.
    ModelLoad(String),
    /// Transport-level I/O failure (bind, accept, read, write).
    Io(std::io::Error),
    /// The worker failed unexpectedly (generation panicked). `500`.
    Internal(String),
}

impl ServeError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) | ServeError::UnknownModel(_) => 404,
            ServeError::MethodNotAllowed { .. } => 405,
            ServeError::DeadlineExceeded { .. } => 408,
            ServeError::PayloadTooLarge { .. } => 413,
            ServeError::QueueFull { .. } => 429,
            ServeError::ShuttingDown | ServeError::OverCapacity { .. } => 503,
            ServeError::ModelLoad(_) | ServeError::Io(_) | ServeError::Internal(_) => 500,
        }
    }

    /// A stable machine-readable error code for response bodies.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad_request",
            ServeError::NotFound(_) => "not_found",
            ServeError::UnknownModel(_) => "unknown_model",
            ServeError::MethodNotAllowed { .. } => "method_not_allowed",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::PayloadTooLarge { .. } => "payload_too_large",
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::OverCapacity { .. } => "over_capacity",
            ServeError::ModelLoad(_) => "model_load",
            ServeError::Io(_) => "io",
            ServeError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::NotFound(path) => write!(f, "no route for {path}"),
            ServeError::UnknownModel(name) => write!(f, "unknown model '{name}'"),
            ServeError::MethodNotAllowed { method, path } => {
                write!(f, "method {method} not allowed for {path}")
            }
            ServeError::DeadlineExceeded {
                waited_ms,
                deadline_ms,
            } => write!(
                f,
                "deadline exceeded: {waited_ms}ms in flight (deadline {deadline_ms}ms)"
            ),
            ServeError::PayloadTooLarge { limit } => {
                write!(f, "request body exceeds {limit} bytes")
            }
            ServeError::QueueFull { depth } => {
                write!(f, "request queue full ({depth} waiting); retry later")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::OverCapacity { limit } => {
                write!(f, "connection limit reached ({limit}); retry later")
            }
            ServeError::ModelLoad(m) => write!(f, "cannot load model: {m}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_and_code_mapping() {
        let cases: Vec<(ServeError, u16, &str)> = vec![
            (ServeError::BadRequest("x".into()), 400, "bad_request"),
            (ServeError::NotFound("/x".into()), 404, "not_found"),
            (ServeError::UnknownModel("m".into()), 404, "unknown_model"),
            (
                ServeError::MethodNotAllowed {
                    method: "PUT".into(),
                    path: "/v1/generate".into(),
                },
                405,
                "method_not_allowed",
            ),
            (
                ServeError::DeadlineExceeded {
                    waited_ms: 10,
                    deadline_ms: 5,
                },
                408,
                "deadline_exceeded",
            ),
            (
                ServeError::PayloadTooLarge { limit: 1 },
                413,
                "payload_too_large",
            ),
            (ServeError::QueueFull { depth: 4 }, 429, "queue_full"),
            (ServeError::ShuttingDown, 503, "shutting_down"),
            (ServeError::OverCapacity { limit: 9 }, 503, "over_capacity"),
            (ServeError::Internal("boom".into()), 500, "internal"),
        ];
        for (err, status, code) in cases {
            assert_eq!(err.status(), status, "{err}");
            assert_eq!(err.code(), code, "{err}");
            assert!(!err.to_string().is_empty());
        }
    }
}
