//! Per-connection state for the event loop.
//!
//! A [`Conn`] owns one non-blocking socket plus its receive buffer and
//! (while responding) a [`ResponseWriter`]. Connections move through a
//! strict sequential state machine — `Reading → Dispatched → Writing →
//! Reading` — so pipelined requests on one socket are answered in order
//! (bytes for later requests simply wait in the buffer). The writer
//! streams response bodies straight from their backing buffer (owned or
//! a shared `Arc` cache entry) with `transfer-encoding: chunked` framing
//! for large bodies, so serving a cached graph never copies the body.

use crate::http::{encode_head, Body, Response};
use cpgan_obs::Stopwatch;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Bodies at or above this size are streamed with chunked framing (and
/// chunks are emitted at this granularity).
pub const CHUNK_BYTES: usize = 64 * 1024;

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Waiting for (more of) a request.
    Reading,
    /// A complete request was handed to the worker queue; the poller
    /// ignores this socket until the completion arrives.
    Dispatched,
    /// A response is being written (possibly across many `POLLOUT`s).
    Writing,
}

/// One client connection owned by the event loop.
pub struct Conn {
    /// The non-blocking socket.
    pub stream: TcpStream,
    /// Bytes received but not yet consumed by the parser. Pipelined
    /// requests accumulate here and are drained one at a time.
    pub buf: Vec<u8>,
    /// State-machine position.
    pub state: ConnState,
    /// The in-flight response writer (`Writing` state).
    pub writer: Option<ResponseWriter>,
    /// Started when the first byte of the current request arrives;
    /// cleared after the response is fully written. Drives the
    /// per-request deadline (slow headers/bodies → `408`).
    pub request_sw: Option<Stopwatch>,
    /// Reset on every read/write; drives the idle keep-alive deadline.
    pub idle_sw: Stopwatch,
    /// Close after the current response finishes (client asked, error
    /// made framing unrecoverable, or the server is draining).
    pub close_after_write: bool,
    /// The peer half-closed its read side.
    pub eof: bool,
    /// The current request speaks HTTP/1.1 (may receive chunked
    /// framing). Tracked on the connection so completions arriving from
    /// workers frame correctly for HTTP/1.0 peers.
    pub http11: bool,
    /// Requests answered on this connection (observability).
    pub served: u64,
}

impl Conn {
    /// Wraps an accepted socket (already set non-blocking).
    pub fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            state: ConnState::Reading,
            writer: None,
            request_sw: None,
            idle_sw: Stopwatch::start(),
            close_after_write: false,
            eof: false,
            http11: true,
            served: 0,
        }
    }

    /// Drains everything currently readable into `buf` (until
    /// `WouldBlock`). Returns the number of bytes read; sets `eof` when
    /// the peer closed. `Err` means the connection is broken.
    pub fn read_available(&mut self) -> io::Result<usize> {
        let mut total = 0usize;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    total += n;
                    if self.request_sw.is_none() {
                        self.request_sw = Some(Stopwatch::start());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if total > 0 {
            self.idle_sw = Stopwatch::start();
        }
        Ok(total)
    }

    /// Begins writing `response`; `allow_chunked` is false for HTTP/1.0
    /// peers (they cannot decode chunked framing).
    pub fn begin_response(&mut self, response: Response, allow_chunked: bool) {
        if !self.close_after_write {
            // An error status makes request framing unrecoverable for
            // 400/408/413, and 429/503 answers are close-mode too: the
            // client should back off and reconnect.
            if response.status != 200 {
                self.close_after_write = true;
            }
        }
        let keep_alive = !self.close_after_write;
        self.writer = Some(ResponseWriter::new(response, keep_alive, allow_chunked));
        self.state = ConnState::Writing;
    }

    /// Pushes pending response bytes to the socket. Returns `Ok(true)`
    /// when the response is complete (the caller rotates the state
    /// machine), `Ok(false)` when the socket is full (`WouldBlock` —
    /// wait for `POLLOUT`).
    pub fn write_pending(&mut self) -> io::Result<bool> {
        let Some(writer) = self.writer.as_mut() else {
            return Ok(true);
        };
        let done = writer.write_to(&mut self.stream)?;
        if done {
            self.writer = None;
            self.request_sw = None;
            self.served += 1;
            self.idle_sw = Stopwatch::start();
            self.state = ConnState::Reading;
        }
        Ok(done)
    }
}

/// Incremental, non-blocking response serialization.
///
/// The head is rendered once; body bytes are written directly from the
/// [`Body`] (owned or shared) without intermediate copies. Bodies of
/// [`CHUNK_BYTES`] or more use chunked transfer-encoding: framing bytes
/// live in a small staging buffer between body slices, so even a
/// multi-megabyte cached graph streams with zero body-sized allocations.
pub struct ResponseWriter {
    head: Vec<u8>,
    head_pos: usize,
    body: Body,
    body_pos: usize,
    /// End of the body range currently being written.
    chunk_end: usize,
    /// Pending framing bytes (chunk size lines / terminator).
    stage: Vec<u8>,
    stage_pos: usize,
    chunked: bool,
    /// The zero-chunk terminator has been staged.
    terminated: bool,
    status: u16,
}

impl ResponseWriter {
    /// Prepares a writer for `response`. Chunked framing is used when
    /// the peer supports it and the body is [`CHUNK_BYTES`] or larger.
    pub fn new(response: Response, keep_alive: bool, allow_chunked: bool) -> ResponseWriter {
        let chunked = allow_chunked && response.body.len() >= CHUNK_BYTES;
        let head = encode_head(&response, keep_alive, chunked);
        let status = response.status;
        let mut w = ResponseWriter {
            head,
            head_pos: 0,
            body: response.body,
            body_pos: 0,
            chunk_end: 0,
            stage: Vec::new(),
            stage_pos: 0,
            chunked,
            terminated: false,
            status,
        };
        if w.chunked {
            w.stage_next_chunk(true);
        } else {
            w.chunk_end = w.body.len();
        }
        w
    }

    /// The response's status code (for logging/counters at completion).
    pub fn status(&self) -> u16 {
        self.status
    }

    fn stage_next_chunk(&mut self, first: bool) {
        self.stage.clear();
        self.stage_pos = 0;
        if !first {
            // Terminates the previous chunk's data.
            self.stage.extend_from_slice(b"\r\n");
        }
        let remaining = self.body.len() - self.body_pos;
        if remaining == 0 {
            self.stage.extend_from_slice(b"0\r\n\r\n");
            self.terminated = true;
        } else {
            let size = remaining.min(CHUNK_BYTES);
            self.stage
                .extend_from_slice(format!("{size:x}\r\n").as_bytes());
            self.chunk_end = self.body_pos + size;
        }
    }

    /// Writes as much as the sink accepts. `Ok(true)` = response fully
    /// written; `Ok(false)` = sink is full (`WouldBlock`).
    pub fn write_to(&mut self, sink: &mut impl Write) -> io::Result<bool> {
        loop {
            let pending: &[u8] = if self.head_pos < self.head.len() {
                &self.head[self.head_pos..]
            } else if self.stage_pos < self.stage.len() {
                &self.stage[self.stage_pos..]
            } else if self.body_pos < self.chunk_end {
                &self.body.as_slice()[self.body_pos..self.chunk_end]
            } else {
                if !self.chunked {
                    return Ok(true);
                }
                if self.terminated {
                    return Ok(true);
                }
                self.stage_next_chunk(false);
                continue;
            };
            match sink.write(pending) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    if self.head_pos < self.head.len() {
                        self.head_pos += n;
                    } else if self.stage_pos < self.stage.len() {
                        self.stage_pos += n;
                    } else {
                        self.body_pos += n;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::parse_reply;
    use std::sync::Arc;

    fn drain(mut w: ResponseWriter) -> Vec<u8> {
        let mut out = Vec::new();
        assert!(w.write_to(&mut out).unwrap());
        out
    }

    #[test]
    fn small_bodies_use_content_length() {
        let wire = drain(ResponseWriter::new(
            Response::text(200, b"hello".to_vec()),
            true,
            true,
        ));
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.contains("content-length: 5\r\n"), "{text}");
        assert!(!text.contains("chunked"), "{text}");
        let (reply, used) = parse_reply(&wire).unwrap().unwrap();
        assert_eq!(reply.body, b"hello");
        assert_eq!(used, wire.len());
    }

    #[test]
    fn large_bodies_stream_chunked_and_round_trip() {
        let body: Vec<u8> = (0..3 * CHUNK_BYTES + 17).map(|i| (i % 251) as u8).collect();
        let wire = drain(ResponseWriter::new(
            Response::shared(200, Arc::new(body.clone())),
            true,
            true,
        ));
        let head = String::from_utf8_lossy(&wire[..128]);
        assert!(head.contains("transfer-encoding: chunked"), "{head}");
        let (reply, used) = parse_reply(&wire).unwrap().unwrap();
        assert_eq!(reply.body, body, "chunked framing must round-trip");
        assert_eq!(used, wire.len());
    }

    #[test]
    fn http10_peers_never_get_chunked_framing() {
        let body = vec![b'z'; 2 * CHUNK_BYTES];
        let wire = drain(ResponseWriter::new(
            Response::text(200, body.clone()),
            false,
            false,
        ));
        let head = String::from_utf8_lossy(&wire[..128]);
        assert!(!head.contains("chunked"), "{head}");
        let (reply, _) = parse_reply(&wire).unwrap().unwrap();
        assert_eq!(reply.body, body);
    }

    /// A sink that accepts at most N bytes per write and interleaves
    /// WouldBlock, exercising every resume point in the writer.
    struct Trickle {
        out: Vec<u8>,
        budget: usize,
        starve: bool,
    }

    impl Write for Trickle {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.starve = !self.starve;
            if self.starve {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = data.len().min(self.budget);
            self.out.extend_from_slice(&data[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_writes_and_wouldblock_resume_cleanly() {
        let body: Vec<u8> = (0..CHUNK_BYTES + 999).map(|i| (i % 17) as u8).collect();
        let mut w = ResponseWriter::new(Response::text(200, body.clone()), true, true);
        let mut sink = Trickle {
            out: Vec::new(),
            budget: 1333,
            starve: false,
        };
        let mut rounds = 0;
        while !w.write_to(&mut sink).unwrap() {
            rounds += 1;
            assert!(rounds < 10_000, "writer failed to make progress");
        }
        let (reply, used) = parse_reply(&sink.out).unwrap().unwrap();
        assert_eq!(reply.body, body);
        assert_eq!(used, sink.out.len());
        assert!(rounds > 1, "trickle sink must actually fragment writes");
    }

    #[test]
    fn conn_error_responses_force_close_mode() {
        // begin_response on a non-200 flips close_after_write, and the
        // encoded head advertises `connection: close`.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        drop(client);
        let mut conn = Conn::new(server_side);
        conn.begin_response(Response::json(400, "{}".to_string()), true);
        assert!(conn.close_after_write);
        assert_eq!(conn.state, ConnState::Writing);
        let head = String::from_utf8(encode_head(
            &Response::json(400, "{}".to_string()),
            false,
            false,
        ))
        .unwrap();
        assert!(head.contains("connection: close"));
    }
}
