//! The `poll(2)` event loop: one thread, every socket.
//!
//! A single `serve-event` thread owns the listener and all client
//! connections. Each iteration waits on the poller (timeout = the
//! nearest connection deadline, or forever when nothing is pending),
//! then services readiness events, worker completions, and deadlines.
//! Idle keep-alive sockets cost one map entry and zero threads; wakeups
//! (worker completions, shutdown) arrive through the poller's notify
//! channel, so nothing in the serving path ever sleep-polls.
//!
//! Connection lifecycle: `Reading` sockets are registered for `POLLIN`
//! and parsed incrementally; a complete request is answered inline
//! (cheap routes, errors, **cache hits**) or dispatched to the worker
//! queue, during which the socket is *deregistered* (`Dispatched`) —
//! pipelined bytes simply wait in kernel/user buffers. Responses write
//! non-blockingly (`Writing`, `POLLOUT` on short writes); when a
//! keep-alive response completes, leftover buffered bytes are parsed
//! immediately, so pipelined requests drain back-to-back without extra
//! round trips.

use crate::conn::{Conn, ConnState};
use crate::error::ServeError;
use crate::http::{self, Response};
use crate::queue::PushError;
use crate::server::{self, Job, Shared};
use cpgan_obs::{counter_add, gauge_set, hist_record, Stopwatch};
use polling::{Event, Events, Poller};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Poller key of the listening socket; connection ids start above it.
const LISTENER_KEY: usize = 0;

/// What a connection should do next after a service step.
enum Flow {
    /// Close and forget the connection.
    Remove,
    /// Response in progress; wait for `POLLOUT`.
    AwaitWritable,
    /// Response finished (or nothing to write); keep reading/parsing.
    KeepGoing,
}

/// Runs the event loop until shutdown; errors are terminal for the
/// serving process and logged (the bind itself already succeeded, so
/// this is poller registration failing — not a per-request condition).
pub(crate) fn run(listener: TcpListener, shared: &Shared) {
    if let Err(e) = event_loop(listener, shared) {
        counter_add("serve.event_loop_error", 1);
        eprintln!("cpgan-serve: event loop failed: {e}");
    }
}

fn event_loop(listener: TcpListener, shared: &Shared) -> std::io::Result<()> {
    let poller = &shared.poller;
    poller.add(&listener, Event::readable(LISTENER_KEY))?;
    let mut listener = Some(listener);
    let mut conns: BTreeMap<usize, Conn> = BTreeMap::new();
    let mut next_id = LISTENER_KEY + 1;
    let mut events = Events::new();
    let mut draining = false;

    loop {
        events.clear();
        poller.wait(&mut events, wait_timeout(&conns, shared, draining))?;

        if !draining && shared.stop.load(Ordering::SeqCst) {
            draining = true;
            if let Some(l) = listener.take() {
                let _ = poller.delete(&l);
            }
            begin_drain(&mut conns, poller);
        }

        for ev in events.iter() {
            if ev.key == LISTENER_KEY {
                if let Some(l) = listener.as_ref() {
                    accept_burst(l, &mut conns, &mut next_id, shared, poller);
                }
                continue;
            }
            let remove = match conns.get_mut(&ev.key) {
                Some(conn) => service_event(ev.key, conn, shared, poller),
                None => false,
            };
            if remove {
                drop_conn(&mut conns, ev.key, poller);
            }
        }

        for completion in shared.take_completions() {
            let remove = match conns.get_mut(&completion.conn_id) {
                Some(conn) => {
                    let chunk_ok = conn.http11;
                    matches!(
                        respond(
                            completion.conn_id,
                            conn,
                            completion.response,
                            chunk_ok,
                            poller
                        ),
                        Flow::Remove
                    ) || {
                        // Keep-alive completion finished instantly: the
                        // buffer may hold the next pipelined request.
                        conn.state == ConnState::Reading
                            && matches!(
                                advance_reading(completion.conn_id, conn, shared, poller),
                                Flow::Remove
                            )
                    }
                }
                None => {
                    // The connection died (deadline, peer reset) before
                    // its job finished; the response has no home.
                    counter_add("serve.orphan_completion", 1);
                    continue;
                }
            };
            if remove {
                drop_conn(&mut conns, completion.conn_id, poller);
            }
        }

        enforce_deadlines(&mut conns, shared, poller);
        gauge_set("serve.open_conns", conns.len() as f64);

        if draining && conns.is_empty() {
            break;
        }
    }
    Ok(())
}

/// The poller timeout: the nearest deadline across all connections
/// (idle cutoff while parked, request deadline while parsing, write
/// budget while responding). `None` — wait indefinitely — when every
/// wakeup will come from readiness or a notify.
fn wait_timeout(
    conns: &BTreeMap<usize, Conn>,
    shared: &Shared,
    draining: bool,
) -> Option<Duration> {
    if draining && conns.is_empty() {
        return Some(Duration::ZERO);
    }
    let mut nearest: Option<Duration> = None;
    for conn in conns.values() {
        let remaining = match conn.state {
            ConnState::Dispatched => continue,
            ConnState::Reading => match conn.request_sw {
                Some(sw) => shared
                    .deadline
                    .saturating_sub(Duration::from_nanos(sw.elapsed_ns())),
                None => shared
                    .idle
                    .saturating_sub(Duration::from_nanos(conn.idle_sw.elapsed_ns())),
            },
            ConnState::Writing => shared
                .deadline
                .saturating_sub(Duration::from_nanos(conn.idle_sw.elapsed_ns())),
        };
        nearest = Some(match nearest {
            Some(n) => n.min(remaining),
            None => remaining,
        });
    }
    nearest
}

fn accept_burst(
    listener: &TcpListener,
    conns: &mut BTreeMap<usize, Conn>,
    next_id: &mut usize,
    shared: &Shared,
    poller: &Poller,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                counter_add("serve.accepted", 1);
                if conns.len() >= shared.max_conns {
                    let err = ServeError::OverCapacity {
                        limit: shared.max_conns,
                    };
                    server::count_error(&err);
                    turn_away(stream, &err);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    counter_add("serve.accept_error", 1);
                    continue;
                }
                // Small request/response exchanges should not wait on
                // Nagle; best-effort (not every platform supports it).
                let _ = stream.set_nodelay(true);
                let conn = Conn::new(stream);
                let id = *next_id;
                *next_id += 1;
                if poller.add(&conn.stream, Event::readable(id)).is_err() {
                    counter_add("serve.accept_error", 1);
                    continue;
                }
                conns.insert(id, conn);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                counter_add("serve.accept_error", 1);
                break;
            }
        }
    }
}

/// Best-effort rejection of a socket we will not track: one write into
/// the (empty, thus willing) socket buffer, then drop.
fn turn_away(mut stream: TcpStream, err: &ServeError) {
    let response = server::error_response(err);
    let mut wire = http::encode_head(&response, false, false);
    wire.extend_from_slice(response.body.as_slice());
    let _ = stream.write_all(&wire);
}

/// Services one readiness event. Returns `true` when the connection
/// must be dropped.
fn service_event(id: usize, conn: &mut Conn, shared: &Shared, poller: &Poller) -> bool {
    match conn.state {
        ConnState::Reading => {
            if conn.read_available().is_err() {
                return true;
            }
            matches!(advance_reading(id, conn, shared, poller), Flow::Remove)
        }
        ConnState::Writing => match pump_write(id, conn, poller) {
            Flow::Remove => true,
            Flow::AwaitWritable => false,
            Flow::KeepGoing => {
                matches!(advance_reading(id, conn, shared, poller), Flow::Remove)
            }
        },
        // Dispatched sockets are deregistered; a stray event (e.g. a
        // wakeup raced the deregistration) is ignored.
        ConnState::Dispatched => false,
    }
}

/// Parses and handles as many complete requests as the buffer holds.
/// Stops when bytes run out (keep reading), a response blocks on
/// `POLLOUT`, a job is dispatched, or the connection must close.
fn advance_reading(id: usize, conn: &mut Conn, shared: &Shared, poller: &Poller) -> Flow {
    loop {
        if conn.state != ConnState::Reading {
            return Flow::KeepGoing;
        }
        match http::parse_request(&conn.buf) {
            Ok(Some((request, used))) => {
                conn.buf.drain(..used);
                counter_add("serve.requests", 1);
                if conn.request_sw.is_none() {
                    // A pipelined request that was already buffered when
                    // the previous response finished starts its clock
                    // now.
                    conn.request_sw = Some(Stopwatch::start());
                }
                conn.http11 = request.version_minor >= 1;
                let allow_chunked = conn.http11;
                if !request.wants_keep_alive() {
                    conn.close_after_write = true;
                }
                let flow = handle_request(id, conn, &request, allow_chunked, shared, poller);
                match flow {
                    Flow::KeepGoing => continue,
                    other => return other,
                }
            }
            Ok(None) => {
                if conn.eof {
                    if conn.buf.is_empty() {
                        return Flow::Remove;
                    }
                    let err = ServeError::BadRequest("connection closed mid-request".to_string());
                    server::count_error(&err);
                    conn.close_after_write = true;
                    return respond(id, conn, server::error_response(&err), true, poller);
                }
                return Flow::KeepGoing;
            }
            Err(err) => {
                // Framing is unrecoverable: answer and close.
                server::count_error(&err);
                conn.close_after_write = true;
                return respond(id, conn, server::error_response(&err), true, poller);
            }
        }
    }
}

/// Routes one parsed request: inline answer, cache hit, or dispatch.
fn handle_request(
    id: usize,
    conn: &mut Conn,
    request: &http::Request,
    allow_chunked: bool,
    shared: &Shared,
    poller: &Poller,
) -> Flow {
    match server::route(shared, request) {
        Ok(server::Routed::Respond(response)) => respond(id, conn, response, allow_chunked, poller),
        Ok(server::Routed::Generate { key, model }) => {
            if let Some(body) = shared.cache.get(&key) {
                return respond(id, conn, Response::shared(200, body), allow_chunked, poller);
            }
            if shared.stop.load(Ordering::SeqCst) {
                let err = ServeError::ShuttingDown;
                server::count_error(&err);
                return respond(
                    id,
                    conn,
                    server::error_response(&err),
                    allow_chunked,
                    poller,
                );
            }
            let job = Job {
                conn_id: id,
                key,
                model,
                sw: conn.request_sw.unwrap_or_else(Stopwatch::start),
            };
            match shared.queue.try_push(job) {
                Ok(()) => {
                    gauge_set("serve.queue_depth", shared.queue.len() as f64);
                    conn.state = ConnState::Dispatched;
                    // Ignore the socket until the completion arrives;
                    // pipelined bytes wait their turn in the buffers.
                    let _ = poller.delete(&conn.stream);
                    Flow::KeepGoing
                }
                Err(PushError::Full(_)) => {
                    let err = ServeError::QueueFull {
                        depth: shared.queue.capacity(),
                    };
                    server::count_error(&err);
                    respond(
                        id,
                        conn,
                        server::error_response(&err),
                        allow_chunked,
                        poller,
                    )
                }
                Err(PushError::Closed(_)) => {
                    let err = ServeError::ShuttingDown;
                    server::count_error(&err);
                    respond(
                        id,
                        conn,
                        server::error_response(&err),
                        allow_chunked,
                        poller,
                    )
                }
            }
        }
        Err(err) => {
            server::count_error(&err);
            respond(
                id,
                conn,
                server::error_response(&err),
                allow_chunked,
                poller,
            )
        }
    }
}

/// Starts writing `response` and pushes as much as the socket takes.
fn respond(
    id: usize,
    conn: &mut Conn,
    response: Response,
    allow_chunked: bool,
    poller: &Poller,
) -> Flow {
    conn.begin_response(response, allow_chunked);
    // The write budget starts now: a peer that stops draining mid-
    // response is cut off one deadline later (`enforce_deadlines`).
    conn.idle_sw = Stopwatch::start();
    pump_write(id, conn, poller)
}

/// Advances an in-progress response write and rotates the state machine
/// when it completes.
fn pump_write(id: usize, conn: &mut Conn, poller: &Poller) -> Flow {
    let status = conn.writer.as_ref().map(|w| w.status()).unwrap_or(200);
    let sw = conn.request_sw;
    match conn.write_pending() {
        Err(_) => {
            counter_add("serve.write_error", 1);
            Flow::Remove
        }
        Ok(true) => {
            if status == 200 {
                counter_add("serve.ok", 1);
            }
            if let Some(sw) = sw {
                hist_record("serve.request_latency_ns", sw.elapsed_ns() as f64);
            }
            if conn.close_after_write || conn.eof {
                return Flow::Remove;
            }
            set_interest(poller, &conn.stream, Event::readable(id));
            Flow::KeepGoing
        }
        Ok(false) => {
            set_interest(poller, &conn.stream, Event::writable(id));
            Flow::AwaitWritable
        }
    }
}

/// Points the poller's interest for a socket at `event`, registering it
/// first if a dispatch had deregistered it.
fn set_interest(poller: &Poller, stream: &TcpStream, event: Event) {
    if let Err(e) = poller.modify(stream, event) {
        if e.kind() == std::io::ErrorKind::NotFound && poller.add(stream, event).is_err() {
            counter_add("serve.poller_error", 1);
        }
    }
}

/// Applies idle, request, and write deadlines across all connections.
fn enforce_deadlines(conns: &mut BTreeMap<usize, Conn>, shared: &Shared, poller: &Poller) {
    let ids: Vec<usize> = conns.keys().copied().collect();
    for id in ids {
        let Some(conn) = conns.get_mut(&id) else {
            continue;
        };
        let remove = match conn.state {
            ConnState::Dispatched => false,
            ConnState::Reading => match conn.request_sw {
                Some(sw) => {
                    // Slow header/body (slowloris): the request's clock
                    // ran out before it finished arriving.
                    if Duration::from_nanos(sw.elapsed_ns()) >= shared.deadline {
                        let err = ServeError::DeadlineExceeded {
                            waited_ms: sw.elapsed_ns() / 1_000_000,
                            deadline_ms: shared.deadline.as_millis() as u64,
                        };
                        server::count_error(&err);
                        conn.close_after_write = true;
                        matches!(
                            respond(id, conn, server::error_response(&err), true, poller),
                            Flow::Remove
                        )
                    } else {
                        false
                    }
                }
                None => {
                    // Parked keep-alive connection past the idle cutoff:
                    // close silently (this is normal keep-alive hygiene,
                    // not an error).
                    if Duration::from_nanos(conn.idle_sw.elapsed_ns()) >= shared.idle {
                        counter_add("serve.idle_close", 1);
                        true
                    } else {
                        false
                    }
                }
            },
            ConnState::Writing => {
                // The peer stopped draining the response.
                if Duration::from_nanos(conn.idle_sw.elapsed_ns()) >= shared.deadline {
                    counter_add("serve.write_stall_close", 1);
                    true
                } else {
                    false
                }
            }
        };
        if remove {
            drop_conn(conns, id, poller);
        }
    }
}

/// On shutdown: parked connections close now; anything mid-request is
/// answered `503`; dispatched/writing connections finish their response
/// and then close. Nothing already admitted is dropped.
fn begin_drain(conns: &mut BTreeMap<usize, Conn>, poller: &Poller) {
    let ids: Vec<usize> = conns.keys().copied().collect();
    for id in ids {
        let Some(conn) = conns.get_mut(&id) else {
            continue;
        };
        let remove = match conn.state {
            ConnState::Reading => {
                if conn.buf.is_empty() && conn.request_sw.is_none() {
                    true
                } else {
                    let err = ServeError::ShuttingDown;
                    server::count_error(&err);
                    conn.close_after_write = true;
                    matches!(
                        respond(id, conn, server::error_response(&err), true, poller),
                        Flow::Remove
                    )
                }
            }
            ConnState::Dispatched | ConnState::Writing => {
                conn.close_after_write = true;
                false
            }
        };
        if remove {
            drop_conn(conns, id, poller);
        }
    }
    // `stop` flips before the queue closes, so jobs admitted while
    // draining still complete; new generations are refused inline.
}

/// Forgets a connection: deregisters (idempotent) and drops the socket.
fn drop_conn(conns: &mut BTreeMap<usize, Conn>, id: usize, poller: &Poller) {
    if let Some(conn) = conns.remove(&id) {
        let _ = poller.delete(&conn.stream);
        counter_add("serve.closed", 1);
    }
}
