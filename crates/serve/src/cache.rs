//! Seed-keyed generation cache.
//!
//! Generation is a pure function of `(model, snapshot-rev, canonicalized
//! params, seed)` — the byte-identical-to-CLI contract — so identical
//! requests can be answered from memory without touching a worker. The
//! cache is bounded by **bytes** (not entries) with deterministic LRU
//! eviction, and bodies are stored behind `Arc<Vec<u8>>` so a hit is
//! served with zero body copies (the response writer streams straight
//! from the shared buffer). Hits, misses, and evictions are counted via
//! `cpgan-obs` (`serve.cache.hit` / `serve.cache.miss` /
//! `serve.cache.evict`, gauge `serve.cache.bytes`).

use cpgan_obs::{counter_add, gauge_set};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Identity of a cacheable generation. Built **after** defaulting, so an
/// empty request body and an explicit request for the trained shape with
/// the default seed share one entry. `rev` is the registry's snapshot
/// revision for the model, so replacing a snapshot under the same name
/// can never serve stale bytes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Resolved model name.
    pub model: String,
    /// Registry snapshot revision of that model.
    pub rev: u64,
    /// Canonical (post-default) node count.
    pub nodes: usize,
    /// Canonical (post-default) edge count.
    pub edges: usize,
    /// Generation seed.
    pub seed: u64,
}

struct CacheState {
    /// key -> (body, last-use tick).
    map: BTreeMap<CacheKey, (Arc<Vec<u8>>, u64)>,
    /// last-use tick -> key; the smallest tick is the LRU victim. Ticks
    /// are unique (bumped on every touch), so this is a total order and
    /// eviction is deterministic.
    lru: BTreeMap<u64, CacheKey>,
    /// Sum of cached body lengths.
    bytes: usize,
    /// Monotonic use counter.
    tick: u64,
}

/// A byte-bounded, deterministically-LRU-evicting response cache.
pub struct GenCache {
    state: Mutex<CacheState>,
    capacity_bytes: usize,
}

impl GenCache {
    /// A cache holding at most `capacity_bytes` of body bytes. Zero
    /// disables caching entirely (every lookup misses, inserts are
    /// dropped).
    pub fn new(capacity_bytes: usize) -> GenCache {
        GenCache {
            state: Mutex::new(CacheState {
                map: BTreeMap::new(),
                lru: BTreeMap::new(),
                bytes: 0,
                tick: 0,
            }),
            capacity_bytes,
        }
    }

    /// Whether caching is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Looks `key` up, refreshing its recency on a hit. Counts
    /// `serve.cache.hit` / `serve.cache.miss`.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        if !self.enabled() {
            counter_add("serve.cache.miss", 1);
            return None;
        }
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.tick += 1;
        let tick = s.tick;
        match s.map.get_mut(key) {
            Some(entry) => {
                let old_tick = entry.1;
                let body = Arc::clone(&entry.0);
                entry.1 = tick;
                s.lru.remove(&old_tick);
                s.lru.insert(tick, key.clone());
                drop(s);
                counter_add("serve.cache.hit", 1);
                Some(body)
            }
            None => {
                drop(s);
                counter_add("serve.cache.miss", 1);
                None
            }
        }
    }

    /// Inserts `body` under `key`, evicting least-recently-used entries
    /// until the byte budget holds. A body larger than the whole budget
    /// is not cached. Re-inserting an existing key refreshes its body
    /// and recency.
    pub fn insert(&self, key: CacheKey, body: Arc<Vec<u8>>) {
        if !self.enabled() || body.len() > self.capacity_bytes {
            return;
        }
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.tick += 1;
        let tick = s.tick;
        if let Some((old_body, old_tick)) = s.map.remove(&key) {
            s.bytes -= old_body.len();
            s.lru.remove(&old_tick);
        }
        s.bytes += body.len();
        s.map.insert(key.clone(), (body, tick));
        s.lru.insert(tick, key);
        let mut evicted = 0u64;
        while s.bytes > self.capacity_bytes {
            // Oldest tick first: deterministic LRU.
            let Some((&victim_tick, _)) = s.lru.iter().next() else {
                break;
            };
            let Some(victim_key) = s.lru.remove(&victim_tick) else {
                break;
            };
            if let Some((victim_body, _)) = s.map.remove(&victim_key) {
                s.bytes -= victim_body.len();
            }
            evicted += 1;
        }
        let bytes_now = s.bytes;
        drop(s);
        if evicted > 0 {
            counter_add("serve.cache.evict", evicted);
        }
        gauge_set("serve.cache.bytes", bytes_now as f64);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cached body bytes.
    pub fn bytes(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> CacheKey {
        CacheKey {
            model: "m".to_string(),
            rev: 1,
            nodes: 10,
            edges: 20,
            seed,
        }
    }

    fn body(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![b'x'; n])
    }

    #[test]
    fn hit_returns_the_inserted_bytes() {
        let c = GenCache::new(1024);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), body(8));
        assert_eq!(c.get(&key(1)).map(|b| b.len()), Some(8));
        assert!(c.get(&key(2)).is_none(), "different seed, different entry");
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 8);
    }

    #[test]
    fn rev_changes_invalidate_by_keying() {
        let c = GenCache::new(1024);
        c.insert(key(1), body(8));
        let mut newer = key(1);
        newer.rev = 2;
        assert!(c.get(&newer).is_none(), "new snapshot rev must miss");
    }

    #[test]
    fn eviction_is_lru_and_byte_bounded() {
        let c = GenCache::new(30);
        c.insert(key(1), body(10));
        c.insert(key(2), body(10));
        c.insert(key(3), body(10));
        assert_eq!(c.len(), 3);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(&key(1)).is_some());
        c.insert(key(4), body(10));
        assert!(c.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert!(c.get(&key(4)).is_some());
        assert!(c.bytes() <= 30);
    }

    #[test]
    fn oversized_bodies_are_not_cached() {
        let c = GenCache::new(16);
        c.insert(key(1), body(17));
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let c = GenCache::new(0);
        assert!(!c.enabled());
        c.insert(key(1), body(1));
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_and_keeps_byte_accounting() {
        let c = GenCache::new(64);
        c.insert(key(1), body(10));
        c.insert(key(1), body(20));
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 20);
        assert_eq!(c.get(&key(1)).map(|b| b.len()), Some(20));
    }
}
