#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `cpgan-serve` — a batched, backpressured graph-generation server.
//!
//! A dependency-free (std + workspace crates) HTTP/1.1 server that turns
//! trained CPGAN snapshots into a long-lived generation service
//! (DESIGN.md §11):
//!
//! * `POST /v1/generate` — body `{"model","nodes","edges","seed"}` (all
//!   optional), answers the generated graph as a plain-text edge list
//!   **byte-identical** to what `cpgan generate` writes for the same
//!   model/seed/size,
//! * `GET /v1/models` — the loaded [`ModelRegistry`] with parameter
//!   counts and trained shapes,
//! * `GET /healthz` — liveness plus queue/worker state,
//! * `GET /metrics` — the merged `cpgan-obs` report as JSON.
//!
//! Architecture: an acceptor thread admits connections into a bounded
//! MPMC queue ([`queue::Bounded`]) and a fixed worker pool drains them in
//! micro-batches. Robustness semantics are explicit and typed
//! ([`ServeError`]): malformed requests are `400`s, a full queue rejects
//! instantly with `429` + `Retry-After`, requests that outlive the
//! per-request deadline are `408`s, and shutdown stops accepting but
//! answers everything already admitted. Every stage is instrumented with
//! `cpgan-obs` spans (`serve.request/serve.parse/serve.generate/
//! serve.write`) and latency histograms (`serve.queue_wait_ns`,
//! `serve.request_latency_ns`).
//!
//! ```no_run
//! use cpgan_serve::{ModelRegistry, ServeConfig, Server};
//!
//! let mut registry = ModelRegistry::new();
//! registry.load_file("model.json").unwrap();
//! let server = Server::start(
//!     ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() },
//!     registry,
//! )
//! .unwrap();
//! println!("listening on {}", server.addr());
//! server.wait();
//! ```

mod error;
pub mod http;
mod protocol;
pub mod queue;
mod registry;
mod server;

pub use error::ServeError;
pub use protocol::{GenerateRequest, DEFAULT_SEED};
pub use registry::ModelRegistry;
pub use server::{error_response, ServeConfig, Server};
