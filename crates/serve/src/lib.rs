#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `cpgan-serve` — a keep-alive, cached, backpressured graph-generation
//! server.
//!
//! A dependency-free (std + workspace crates + the `polling` shim) HTTP/1.1
//! server that turns trained CPGAN snapshots into a long-lived generation
//! service (DESIGN.md §11):
//!
//! * `POST /v1/generate` — body `{"model","nodes","edges","seed"}` (all
//!   optional), answers the generated graph as a plain-text edge list
//!   **byte-identical** to what `cpgan generate` writes for the same
//!   model/seed/size — cached or not,
//! * `GET /v1/models` — the loaded [`ModelRegistry`] with parameter
//!   counts and trained shapes,
//! * `GET /healthz` — liveness plus queue/cache state,
//! * `GET /metrics` — the merged `cpgan-obs` report as JSON.
//!
//! Architecture: a single `poll(2)`-based event-loop thread owns every
//! socket — non-blocking accept, incremental parsing, HTTP/1.1
//! keep-alive with pipelined request draining, idle/slow-header
//! deadlines, and chunked streaming writes. Because generation is a pure
//! function of `(model, snapshot-rev, params, seed)`, a seed-keyed LRU
//! [`cache`](crate) answers repeat requests inline with zero body
//! copies; only cache misses reach the bounded queue
//! ([`queue::Bounded`]) and its fixed worker pool. Robustness semantics
//! are explicit and typed ([`ServeError`]): malformed requests are
//! `400`s, oversized bodies `413`s, a full queue rejects instantly with
//! `429` + `Retry-After`, requests that outlive the per-request deadline
//! are `408`s, the connection limit turns sockets away with `503`, and
//! shutdown stops accepting but answers everything already admitted.
//! Every stage is instrumented with `cpgan-obs` counters/histograms
//! (`serve.cache.hit/miss/evict`, `serve.queue_wait_ns`,
//! `serve.request_latency_ns`, ...).
//!
//! ```no_run
//! use cpgan_serve::{ModelRegistry, ServeConfig, Server};
//!
//! let mut registry = ModelRegistry::new();
//! registry.load_file("model.json").unwrap();
//! let server = Server::start(
//!     ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() },
//!     registry,
//! )
//! .unwrap();
//! println!("listening on {}", server.addr());
//! server.wait();
//! ```

mod cache;
mod conn;
mod error;
mod event;
pub mod http;
mod protocol;
pub mod queue;
mod registry;
mod server;

pub use cache::{CacheKey, GenCache};
pub use error::ServeError;
pub use protocol::{GenerateRequest, DEFAULT_SEED};
pub use registry::ModelRegistry;
pub use server::{error_response, ServeConfig, Server};
