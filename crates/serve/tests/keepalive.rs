//! Connection-layer tests: keep-alive reuse, pipelining, slow-header
//! (slowloris) deadlines, idle closes, oversized bodies, chunked
//! streaming, and cache hit == miss byte-equality across connection
//! modes.

#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

mod common;

use common::{generate_request, registry_for, small_graph, temp_model_path, Client};
use cpgan::{CpGan, CpGanConfig};
use cpgan_graph::io as graph_io;
use cpgan_serve::http::MAX_BODY_BYTES;
use cpgan_serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn trained_model_path(tag: &str) -> PathBuf {
    let g = small_graph();
    let mut model = CpGan::new(CpGanConfig {
        epochs: 4,
        sample_size: 36,
        ..CpGanConfig::tiny()
    });
    model.fit(&g);
    temp_model_path(tag, &model)
}

fn cli_bytes(path: &std::path::Path, n: usize, m: usize, seed: u64) -> Vec<u8> {
    let model = CpGan::load(path).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    graph_io::write_edge_list(&model.generate(n, m, &mut rng), &mut out).unwrap();
    out
}

#[test]
fn one_connection_serves_many_sequential_requests() {
    let path = trained_model_path("ka_sequential");
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();

    let model = CpGan::load(&path).unwrap();
    let (n, m) = model.trained_shape().unwrap();

    let mut client = Client::connect(server.addr());
    for seed in [3u64, 4, 5, 3] {
        client.post_generate(&format!(r#"{{"seed":{seed}}}"#));
        let reply = client.read_reply();
        assert_eq!(reply.status, 200, "seed {seed}");
        assert_eq!(
            reply.header("connection"),
            Some("keep-alive"),
            "successful exchanges must keep the connection"
        );
        assert_eq!(
            reply.body,
            cli_bytes(&path, n, m, seed),
            "seed {seed} bytes"
        );
    }
    // A GET on the same socket still works after generations.
    client.get("/healthz");
    assert_eq!(client.read_reply().status, 200);

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn pipelined_requests_on_one_socket_answer_in_order() {
    let path = trained_model_path("ka_pipeline");
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();

    let model = CpGan::load(&path).unwrap();
    let (n, m) = model.trained_shape().unwrap();

    // All four requests in one write before reading anything: three
    // generations with distinct seeds (mixing cache misses and, for the
    // repeated seed, a hit) plus a health check. Responses must come
    // back complete and strictly in request order.
    let mut wire = String::new();
    for seed in [11u64, 12, 11] {
        wire.push_str(&generate_request(&format!(r#"{{"seed":{seed}}}"#), true));
    }
    wire.push_str("GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");

    let mut client = Client::connect(server.addr());
    client.send_raw(wire.as_bytes());
    for seed in [11u64, 12, 11] {
        let reply = client.read_reply();
        assert_eq!(reply.status, 200, "seed {seed}");
        assert_eq!(
            reply.body,
            cli_bytes(&path, n, m, seed),
            "pipelined replies must arrive in request order (seed {seed})"
        );
    }
    let reply = client.read_reply();
    assert_eq!(reply.status, 200);
    assert!(String::from_utf8(reply.body)
        .unwrap()
        .contains("\"status\":\"ok\""));

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn slow_header_connection_is_408d_at_the_deadline() {
    let path = trained_model_path("ka_slowloris");
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            deadline_ms: 200,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();

    // Send a partial request head and then stall — a slowloris. The
    // event loop must answer 408 and close at the deadline, freeing the
    // connection slot, without any worker ever being involved.
    let mut client = Client::connect(server.addr());
    client.send_raw(b"POST /v1/generate HTTP/1.1\r\nhost: t\r\n");
    let reply = client.read_reply();
    assert_eq!(reply.status, 408, "slow header must time out");
    assert_eq!(reply.header("connection"), Some("close"));
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.contains("\"code\":\"deadline_exceeded\""), "{body}");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn idle_keep_alive_connection_is_closed_silently() {
    let path = trained_model_path("ka_idle");
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            idle_ms: 150,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();

    // A connection that completed a request and then goes quiet is
    // closed after the idle cutoff — silently, because an idle close is
    // keep-alive hygiene, not a request error.
    let mut client = Client::connect(server.addr());
    client.get("/healthz");
    assert_eq!(client.read_reply().status, 200);
    client.expect_silent_close();

    // Same for a connection that never sends anything at all.
    let mut mute = Client::connect(server.addr());
    mute.expect_silent_close();

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn oversized_body_is_rejected_with_413() {
    let path = trained_model_path("ka_payload");
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();

    // The limit is enforced from the declared length at head-parse time:
    // no body bytes need to arrive (or be buffered) to reject.
    let mut client = Client::connect(server.addr());
    client.send_raw(
        format!(
            "POST /v1/generate HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .as_bytes(),
    );
    let reply = client.read_reply();
    assert_eq!(reply.status, 413);
    assert_eq!(reply.header("connection"), Some("close"));
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.contains("\"code\":\"payload_too_large\""), "{body}");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn cache_hit_equals_miss_byte_for_byte_across_connection_modes() {
    cpgan_obs::set_enabled(true);
    let path = trained_model_path("ka_cache");
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    let model = CpGan::load(&path).unwrap();
    let (n, m) = model.trained_shape().unwrap();
    let expected = cli_bytes(&path, n, m, 21);
    let body = r#"{"seed":21}"#;

    // Miss (close mode), then hit (close mode), then hits (keep-alive):
    // every response must be byte-identical to the CLI regardless of
    // cache state or connection mode.
    let miss = common::post_generate(addr, body);
    assert_eq!(miss.status, 200);
    assert_eq!(miss.body, expected, "cold (miss) response");

    let hit_close = common::post_generate(addr, body);
    assert_eq!(hit_close.status, 200);
    assert_eq!(hit_close.body, expected, "cache hit over connection: close");

    let mut keep = Client::connect(addr);
    for round in 0..2 {
        keep.post_generate(body);
        let reply = keep.read_reply();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, expected, "cache hit over keep-alive ({round})");
    }

    // The metrics endpoint must show the cache actually worked: one
    // miss, several hits.
    let metrics = common::get(addr, "/metrics");
    let text = String::from_utf8(metrics.body).unwrap();
    assert!(text.contains("\"serve.cache.hit\":"), "{text}");
    assert!(text.contains("\"serve.cache.miss\":"), "{text}");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn large_bodies_stream_chunked_and_match_the_cli() {
    let path = temp_model_path("ka_chunked", &CpGan::new(CpGanConfig::tiny()));
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            deadline_ms: 60_000,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();

    // ~10k edges serialize past the 64 KiB chunking threshold.
    let (n, m, seed) = (3000usize, 10_000usize, 2u64);
    let expected = cli_bytes(&path, n, m, seed);
    assert!(expected.len() >= 64 * 1024, "fixture must exceed threshold");

    let mut client = Client::connect(server.addr());
    for round in 0..2 {
        // Round 0 exercises the worker (miss), round 1 the cached body:
        // both stream chunked and de-frame to identical bytes.
        client.post_generate(&format!(r#"{{"nodes":{n},"edges":{m},"seed":{seed}}}"#));
        let reply = client.read_reply();
        assert_eq!(reply.status, 200, "round {round}");
        assert_eq!(
            reply.header("transfer-encoding"),
            Some("chunked"),
            "large bodies must stream chunked (round {round})"
        );
        assert_eq!(reply.body, expected, "round {round}");
    }

    // An HTTP/1.0 client must get the same bytes with content-length
    // framing instead (chunked is 1.1-only).
    let mut old = Client::connect(server.addr());
    let body = format!(r#"{{"nodes":{n},"edges":{m},"seed":{seed}}}"#);
    old.send_raw(
        format!(
            "POST /v1/generate HTTP/1.0\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    let reply = old.read_reply();
    assert_eq!(reply.status, 200);
    assert!(reply.header("transfer-encoding").is_none());
    assert_eq!(
        reply.body, expected,
        "HTTP/1.0 framing must not alter bytes"
    );

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn connection_limit_turns_new_sockets_away_with_503() {
    let path = trained_model_path("ka_maxconns");
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            max_conns: 2,
            idle_ms: 10_000,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    // Two parked keep-alive connections occupy the limit...
    let mut a = Client::connect(addr);
    a.get("/healthz");
    assert_eq!(a.read_reply().status, 200);
    let mut b = Client::connect(addr);
    b.get("/healthz");
    assert_eq!(b.read_reply().status, 200);

    // ...so a third is turned away with 503 over_capacity.
    let mut c = Client::connect(addr);
    c.get("/healthz");
    let reply = c.read_reply();
    assert_eq!(reply.status, 503);
    assert_eq!(reply.header("retry-after"), Some("1"));
    let text = String::from_utf8(reply.body).unwrap();
    assert!(text.contains("\"code\":\"over_capacity\""), "{text}");

    // Parked connections still work fine.
    a.get("/healthz");
    assert_eq!(a.read_reply().status, 200);

    server.shutdown();
    std::fs::remove_file(&path).ok();
}
