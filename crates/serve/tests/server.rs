//! End-to-end serving tests over real TCP sockets: the determinism
//! contract (served bytes == CLI bytes), the robustness taxonomy
//! (400/404/405/408/429), and graceful drain.

// Integration-test helpers sit outside `#[test]` fns, so the
// `allow-panic-in-tests` carve-out does not reach them.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan::{CpGan, CpGanConfig};
use cpgan_graph::{io as graph_io, Graph};
use cpgan_serve::{ModelRegistry, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A small 3-community graph (same family as the persist tests).
fn small_graph() -> Graph {
    let mut edges = Vec::new();
    for c in 0..3u32 {
        let base = c * 12;
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                if (a + b) % 2 == 0 {
                    edges.push((base + a, base + b));
                }
            }
        }
        edges.push((base, (base + 12) % 36));
    }
    Graph::from_edges(36, edges).unwrap()
}

fn temp_model_path(tag: &str, model: &CpGan) -> PathBuf {
    let dir = std::env::temp_dir().join("cpgan_serve_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.json"));
    model.save(&path).unwrap();
    path
}

fn registry_for(path: &Path) -> ModelRegistry {
    let mut registry = ModelRegistry::new();
    registry.load_file(path.to_str().unwrap()).unwrap();
    registry
}

struct Reply {
    status: u16,
    headers: HashMap<String, String>,
    body: Vec<u8>,
}

/// Sends raw request bytes and reads the whole reply (the server closes
/// every connection after one exchange).
fn exchange(addr: SocketAddr, raw: &[u8]) -> Reply {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    parse_reply(&buf)
}

fn parse_reply(buf: &[u8]) -> Reply {
    let head_end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("reply must have a complete head")
        + 4;
    let head = std::str::from_utf8(&buf[..head_end]).unwrap();
    let mut lines = head.lines();
    let status_line = lines.next().unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Reply {
        status,
        headers,
        body: buf[head_end..].to_vec(),
    }
}

fn post_generate(addr: SocketAddr, body: &str) -> Reply {
    let raw = format!(
        "POST /v1/generate HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    exchange(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> Reply {
    exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes(),
    )
}

/// A connection that connects and sends nothing, pinning a worker (or a
/// queue slot) until the server's deadline expires.
fn stall(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn read_reply(mut stream: TcpStream) -> Reply {
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    parse_reply(&buf)
}

// ----------------------------------------------------------- determinism

#[test]
fn served_generation_is_byte_identical_to_cli_generation() {
    // Fit a tiny model exactly once, the way `cpgan fit` would.
    let g = small_graph();
    let mut model = CpGan::new(CpGanConfig {
        epochs: 6,
        sample_size: 36,
        ..CpGanConfig::tiny()
    });
    model.fit(&g);
    let path = temp_model_path("e2e_trained", &model);

    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    // What `cpgan generate --model <path> --output out.txt --seed 3` does:
    // load the snapshot, default (n, m) to the trained shape, seed the
    // rng, generate, write the edge list.
    let cli_model = CpGan::load(&path).unwrap();
    let (n, m) = cli_model.trained_shape().expect("model is trained");
    let mut rng = StdRng::seed_from_u64(3);
    let cli_graph = cli_model.generate(n, m, &mut rng);
    let out_path = std::env::temp_dir().join("cpgan_serve_tests/e2e_cli_out.txt");
    graph_io::save(&cli_graph, &out_path).unwrap();
    let cli_bytes = std::fs::read(&out_path).unwrap();

    // Served generation with the same model and seed, twice (the second
    // proves the server is stateless across requests).
    for round in 0..2 {
        let reply = post_generate(addr, r#"{"seed":3}"#);
        assert_eq!(reply.status, 200, "round {round}");
        assert_eq!(
            reply.body, cli_bytes,
            "served edge list must be byte-identical to the CLI's (round {round})"
        );
    }

    // Defaults mirror the CLI too: an empty body is seed 7 + trained shape.
    let mut rng7 = StdRng::seed_from_u64(7);
    let mut default_bytes = Vec::new();
    graph_io::write_edge_list(&cli_model.generate(n, m, &mut rng7), &mut default_bytes).unwrap();
    let reply = post_generate(addr, "");
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.body, default_bytes,
        "empty body must equal CLI defaults"
    );

    server.shutdown();
    std::fs::remove_file(&out_path).ok();
    std::fs::remove_file(&path).ok();
}

// ------------------------------------------------------------ robustness

#[test]
fn malformed_and_misrouted_requests_map_to_the_error_taxonomy() {
    let path = temp_model_path("robust_untrained", &CpGan::new(CpGanConfig::tiny()));
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    // Malformed JSON body -> 400 bad_request.
    let reply = post_generate(addr, "definitely not json");
    assert_eq!(reply.status, 400);
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.contains("\"code\":\"bad_request\""), "{body}");

    // Unknown field -> 400 naming the field.
    let reply = post_generate(addr, r#"{"sede":3}"#);
    assert_eq!(reply.status, 400);
    assert!(String::from_utf8(reply.body).unwrap().contains("sede"));

    // Untrained model without explicit nodes/edges -> 400.
    let reply = post_generate(addr, r#"{"seed":1}"#);
    assert_eq!(reply.status, 400);
    assert!(String::from_utf8(reply.body).unwrap().contains("untrained"));

    // Unknown model -> 404 unknown_model.
    let reply = post_generate(addr, r#"{"model":"nope","nodes":10,"edges":10}"#);
    assert_eq!(reply.status, 404);
    assert!(String::from_utf8(reply.body)
        .unwrap()
        .contains("\"code\":\"unknown_model\""));

    // Unknown route -> 404; known route with wrong method -> 405.
    assert_eq!(get(addr, "/v2/whatever").status, 404);
    assert_eq!(get(addr, "/v1/generate").status, 405);
    let reply = exchange(addr, b"DELETE /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(reply.status, 405);

    // Broken HTTP framing -> 400.
    let reply = exchange(addr, b"NOT-HTTP\r\n\r\n");
    assert_eq!(reply.status, 400);

    // An untrained model *with* explicit shape serves 200 (control).
    let reply = post_generate(addr, r#"{"nodes":24,"edges":40,"seed":1}"#);
    assert_eq!(reply.status, 200);
    let text = String::from_utf8(reply.body).unwrap();
    assert!(text.starts_with("# nodes: 24\n"), "{text}");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn full_queue_rejects_with_429_and_retry_after() {
    let path = temp_model_path("backpressure", &CpGan::new(CpGanConfig::tiny()));
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth: 2,
            deadline_ms: 600,
            batch_size: 1,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    // Pin the single worker with a silent connection...
    let in_flight = stall(addr);
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(
        server.queue_len(),
        0,
        "worker should have claimed the stall"
    );
    // ...then fill both queue slots...
    let queued_a = stall(addr);
    let queued_b = stall(addr);
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(server.queue_len(), 2, "both stalls should be queued");

    // ...so the next admission is rejected instantly, well before any
    // deadline could fire.
    let reply = read_reply(stall(addr));
    assert_eq!(reply.status, 429);
    assert_eq!(
        reply.headers.get("retry-after").map(String::as_str),
        Some("1")
    );
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.contains("\"code\":\"queue_full\""), "{body}");

    // The pinned connections all resolve to 408 once the deadline passes.
    for (who, stream) in [
        ("in-flight", in_flight),
        ("queued-a", queued_a),
        ("queued-b", queued_b),
    ] {
        let reply = read_reply(stream);
        assert_eq!(reply.status, 408, "{who}");
    }

    // And the server is healthy again afterwards.
    let reply = post_generate(addr, r#"{"nodes":16,"edges":20,"seed":2}"#);
    assert_eq!(reply.status, 200);

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn deadline_expires_stalled_and_overqueued_requests_with_408() {
    let path = temp_model_path("deadline", &CpGan::new(CpGanConfig::tiny()));
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth: 8,
            deadline_ms: 200,
            batch_size: 1,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    // Two silent connections occupy the single worker back to back; a
    // *valid* request sent now therefore waits in queue longer than its
    // own deadline and must be answered 408 without ever being parsed.
    // (Reading the victim first keeps the stalled sockets unread, so the
    // worker's post-response drain of each stall holds the line long
    // enough for the victim's queue wait to exceed its deadline.)
    let stall_a = stall(addr);
    let stall_b = stall(addr);
    std::thread::sleep(Duration::from_millis(50));
    let victim = {
        let mut stream = stall(addr);
        let body = r#"{"nodes":16,"edges":20,"seed":2}"#;
        stream
            .write_all(
                format!(
                    "POST /v1/generate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        stream
    };

    let reply = read_reply(victim);
    assert_eq!(reply.status, 408, "queued-past-deadline request must 408");
    let reply = read_reply(stall_a);
    assert_eq!(reply.status, 408, "stalled parse must time out");
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.contains("\"code\":\"deadline_exceeded\""), "{body}");
    assert_eq!(read_reply(stall_b).status, 408);

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn graceful_drain_answers_everything_already_admitted() {
    let path = temp_model_path("drain", &CpGan::new(CpGanConfig::tiny()));
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth: 8,
            deadline_ms: 2_000,
            batch_size: 1,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    // Expected bytes for the queued request, computed independently.
    let model = CpGan::load(&path).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let mut expected = Vec::new();
    graph_io::write_edge_list(&model.generate(20, 30, &mut rng), &mut expected).unwrap();

    // Pin the worker with a *partial* request (headers still in flight),
    // then queue a complete request behind it.
    let mut slow = stall(addr);
    slow.write_all(b"POST /v1/generate HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let queued = {
        let mut stream = stall(addr);
        let body = r#"{"nodes":20,"edges":30,"seed":5}"#;
        stream
            .write_all(
                format!(
                    "POST /v1/generate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        stream
    };
    std::thread::sleep(Duration::from_millis(50));

    // Begin shutdown while both requests are genuinely in flight; it must
    // block until they are answered, not cut them off.
    let drainer = std::thread::spawn(move || {
        server.shutdown();
    });
    std::thread::sleep(Duration::from_millis(150));

    // Finish the slow request mid-drain; both replies must now complete.
    let body = r#"{"nodes":16,"edges":20,"seed":2}"#;
    slow.write_all(format!("content-length: {}\r\n\r\n{body}", body.len()).as_bytes())
        .unwrap();
    drainer.join().expect("shutdown thread must not panic");

    let reply = read_reply(slow);
    assert_eq!(reply.status, 200, "in-flight request must finish, not drop");
    let reply = read_reply(queued);
    assert_eq!(
        reply.status, 200,
        "queued request must be served, not dropped"
    );
    assert_eq!(reply.body, expected, "drained response must still be exact");

    // New connections are refused once the listener is gone.
    assert!(
        TcpStream::connect(addr).is_err(),
        "post-shutdown connections must be refused"
    );
    std::fs::remove_file(&path).ok();
}

// ------------------------------------------------------------ endpoints

#[test]
fn models_healthz_and_metrics_endpoints() {
    cpgan_obs::set_enabled(true);
    let path = temp_model_path("endpoints", &CpGan::new(CpGanConfig::tiny()));
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 4,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    let reply = get(addr, "/healthz");
    assert_eq!(reply.status, 200);
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"workers\":2"), "{body}");
    assert!(body.contains("\"queue_capacity\":4"), "{body}");

    let reply = get(addr, "/v1/models");
    assert_eq!(reply.status, 200);
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.contains("\"name\":\"endpoints\""), "{body}");
    assert!(body.contains("\"trained_nodes\":null"), "{body}");

    let reply = get(addr, "/metrics");
    assert_eq!(reply.status, 200);
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.starts_with("{\"spans\":{"), "{body}");
    assert!(body.contains("\"serve.accepted\":"), "{body}");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}
