//! End-to-end serving tests over real TCP sockets: the determinism
//! contract (served bytes == CLI bytes, cached or not), the robustness
//! taxonomy (400/404/405/408/429), and graceful drain without
//! sleep-polling.

// Integration-test helpers sit outside `#[test]` fns, so the
// `allow-panic-in-tests` carve-out does not reach them.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

mod common;

use common::{get, post_generate, registry_for, small_graph, temp_model_path, Client};
use cpgan::{CpGan, CpGanConfig};
use cpgan_graph::io as graph_io;
use cpgan_serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpStream;
use std::time::Duration;

// ----------------------------------------------------------- determinism

#[test]
fn served_generation_is_byte_identical_to_cli_generation() {
    // Fit a tiny model exactly once, the way `cpgan fit` would.
    let g = small_graph();
    let mut model = CpGan::new(CpGanConfig {
        epochs: 6,
        sample_size: 36,
        ..CpGanConfig::tiny()
    });
    model.fit(&g);
    let path = temp_model_path("e2e_trained", &model);

    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    // What `cpgan generate --model <path> --output out.txt --seed 3` does:
    // load the snapshot, default (n, m) to the trained shape, seed the
    // rng, generate, write the edge list.
    let cli_model = CpGan::load(&path).unwrap();
    let (n, m) = cli_model.trained_shape().expect("model is trained");
    let mut rng = StdRng::seed_from_u64(3);
    let cli_graph = cli_model.generate(n, m, &mut rng);
    let out_path = std::env::temp_dir().join("cpgan_serve_tests/e2e_cli_out.txt");
    graph_io::save(&cli_graph, &out_path).unwrap();
    let cli_bytes = std::fs::read(&out_path).unwrap();

    // Served generation with the same model and seed, twice: round 0 is
    // a cache miss (a worker generates), round 1 a cache hit (answered
    // inline from the seed-keyed cache) — both must equal the CLI bytes.
    for round in 0..2 {
        let reply = post_generate(addr, r#"{"seed":3}"#);
        assert_eq!(reply.status, 200, "round {round}");
        assert_eq!(
            reply.body, cli_bytes,
            "served edge list must be byte-identical to the CLI's (round {round})"
        );
    }

    // Defaults mirror the CLI too: an empty body is seed 7 + trained
    // shape, and because keys canonicalize *after* defaulting, the
    // explicit spelling of the defaults shares the same cache entry.
    let mut rng7 = StdRng::seed_from_u64(7);
    let mut default_bytes = Vec::new();
    graph_io::write_edge_list(&cli_model.generate(n, m, &mut rng7), &mut default_bytes).unwrap();
    let reply = post_generate(addr, "");
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.body, default_bytes,
        "empty body must equal CLI defaults"
    );
    let reply = post_generate(addr, &format!(r#"{{"nodes":{n},"edges":{m},"seed":7}}"#));
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.body, default_bytes,
        "explicit defaults must hit the same entry"
    );

    server.shutdown();
    std::fs::remove_file(&out_path).ok();
    std::fs::remove_file(&path).ok();
}

// ------------------------------------------------------------ robustness

#[test]
fn malformed_and_misrouted_requests_map_to_the_error_taxonomy() {
    let path = temp_model_path("robust_untrained", &CpGan::new(CpGanConfig::tiny()));
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    // Malformed JSON body -> 400 bad_request.
    let reply = post_generate(addr, "definitely not json");
    assert_eq!(reply.status, 400);
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.contains("\"code\":\"bad_request\""), "{body}");

    // Unknown field -> 400 naming the field.
    let reply = post_generate(addr, r#"{"sede":3}"#);
    assert_eq!(reply.status, 400);
    assert!(String::from_utf8(reply.body).unwrap().contains("sede"));

    // Untrained model without explicit nodes/edges -> 400.
    let reply = post_generate(addr, r#"{"seed":1}"#);
    assert_eq!(reply.status, 400);
    assert!(String::from_utf8(reply.body).unwrap().contains("untrained"));

    // Unknown model -> 404 unknown_model.
    let reply = post_generate(addr, r#"{"model":"nope","nodes":10,"edges":10}"#);
    assert_eq!(reply.status, 404);
    assert!(String::from_utf8(reply.body)
        .unwrap()
        .contains("\"code\":\"unknown_model\""));

    // Unknown route -> 404; known route with wrong method -> 405.
    assert_eq!(get(addr, "/v2/whatever").status, 404);
    assert_eq!(get(addr, "/v1/generate").status, 405);
    let reply = common::exchange(addr, b"DELETE /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(reply.status, 405);

    // Broken HTTP framing -> 400.
    let reply = common::exchange(addr, b"NOT-HTTP\r\n\r\n");
    assert_eq!(reply.status, 400);

    // Error responses close the connection (framing is unrecoverable).
    assert_eq!(
        reply.header("connection"),
        Some("close"),
        "errors must advertise close"
    );

    // An untrained model *with* explicit shape serves 200 (control).
    let reply = post_generate(addr, r#"{"nodes":24,"edges":40,"seed":1}"#);
    assert_eq!(reply.status, 200);
    let text = String::from_utf8(reply.body).unwrap();
    assert!(text.starts_with("# nodes: 24\n"), "{text}");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn full_queue_rejects_with_429_and_retry_after() {
    let path = temp_model_path("backpressure", &CpGan::new(CpGanConfig::tiny()));
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth: 2,
            deadline_ms: 60_000,
            batch_size: 1,
            gen_threads: Some(1),
            cache_bytes: 0, // force every request through the queue
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    // Eight generations, each expensive enough (~100ms+ even in release)
    // that the single worker cannot drain the 2-deep queue while the
    // batch is being submitted — submissions take microseconds, so the
    // overflow *must* be rejected instantly with 429.
    let mut clients = Vec::new();
    for seed in 0..8 {
        let mut client = Client::connect(addr);
        client.post_generate(&format!(r#"{{"nodes":10000,"edges":20000,"seed":{seed}}}"#));
        clients.push(client);
    }

    let mut ok = 0;
    let mut rejected = 0;
    for (i, client) in clients.iter_mut().enumerate() {
        let reply = client.read_reply();
        match reply.status {
            200 => ok += 1,
            429 => {
                rejected += 1;
                assert_eq!(
                    reply.header("retry-after"),
                    Some("1"),
                    "429 must carry Retry-After"
                );
                let body = String::from_utf8(reply.body).unwrap();
                assert!(body.contains("\"code\":\"queue_full\""), "{body}");
            }
            other => panic!("client {i}: unexpected status {other}"),
        }
    }
    assert!(ok >= 1, "the admitted head of the burst must be served");
    assert!(
        rejected >= 1,
        "overflow beyond worker+queue must shed as 429 ({ok} ok)"
    );
    assert_eq!(ok + rejected, 8);

    // And the server is healthy again afterwards.
    let reply = post_generate(addr, r#"{"nodes":16,"edges":20,"seed":2}"#);
    assert_eq!(reply.status, 200);

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn queue_wait_past_deadline_answers_408_without_generating() {
    let path = temp_model_path("queue_deadline", &CpGan::new(CpGanConfig::tiny()));
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth: 8,
            deadline_ms: 120,
            batch_size: 1,
            gen_threads: Some(1),
            cache_bytes: 0,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    // The first generation occupies the sole worker for well over the
    // 120ms deadline (n=16000 takes ~300ms in release, seconds in
    // debug); the second request is admitted behind it and must come
    // back 408 once the worker reaches it — generation never starts for
    // a request that has already missed its deadline.
    let mut first = Client::connect(addr);
    first.post_generate(r#"{"nodes":16000,"edges":32000,"seed":1}"#);
    std::thread::sleep(Duration::from_millis(40)); // worker has popped it
    let mut second = Client::connect(addr);
    second.post_generate(r#"{"nodes":16000,"edges":32000,"seed":2}"#);

    let reply = second.read_reply();
    assert_eq!(reply.status, 408, "queued-past-deadline request must 408");
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.contains("\"code\":\"deadline_exceeded\""), "{body}");

    // The in-flight request itself still completes (deadlines are
    // enforced at stage boundaries, never mid-generation).
    assert_eq!(first.read_reply().status, 200);

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn graceful_drain_answers_everything_already_admitted() {
    let path = temp_model_path("drain", &CpGan::new(CpGanConfig::tiny()));
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth: 8,
            deadline_ms: 60_000,
            batch_size: 1,
            gen_threads: Some(1),
            cache_bytes: 0,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    // Expected bytes for the queued request, computed independently.
    let model = CpGan::load(&path).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let mut expected = Vec::new();
    graph_io::write_edge_list(&model.generate(20, 30, &mut rng), &mut expected).unwrap();

    // Pin the worker with an expensive generation, then queue a cheap
    // request behind it.
    let mut slow = Client::connect(addr);
    slow.post_generate(r#"{"nodes":16000,"edges":32000,"seed":9}"#);
    std::thread::sleep(Duration::from_millis(40));
    let mut queued = Client::connect(addr);
    queued.post_generate(r#"{"nodes":20,"edges":30,"seed":5}"#);
    std::thread::sleep(Duration::from_millis(40));

    // Begin shutdown while both requests are genuinely in flight; it
    // must block until they are answered, not cut them off.
    let drainer = std::thread::spawn(move || {
        server.shutdown();
    });

    let reply = slow.read_reply();
    assert_eq!(reply.status, 200, "in-flight request must finish, not drop");
    let reply = queued.read_reply();
    assert_eq!(
        reply.status, 200,
        "queued request must be served, not dropped"
    );
    assert_eq!(reply.body, expected, "drained response must still be exact");
    drainer.join().expect("shutdown thread must not panic");

    // New connections are refused once the listener is gone.
    assert!(
        TcpStream::connect(addr).is_err(),
        "post-shutdown connections must be refused"
    );
    std::fs::remove_file(&path).ok();
}

/// The shutdown path (and everything else in the serving layer) must be
/// wakeup-driven: no `thread::sleep` poll loops, no short
/// `set_read_timeout` dances anywhere in `crates/serve/src`.
#[test]
fn no_sleep_polling_anywhere_in_the_serving_layer() {
    let src = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    for entry in std::fs::read_dir(&src).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        for needle in ["thread::sleep", "set_read_timeout"] {
            assert!(
                !text.contains(needle),
                "{} contains `{needle}` — the serving layer must be \
                 wakeup-driven (poller notify / condvar), never sleep-polled",
                path.display()
            );
        }
    }
}

// ------------------------------------------------------------ endpoints

#[test]
fn models_healthz_and_metrics_endpoints() {
    cpgan_obs::set_enabled(true);
    let path = temp_model_path("endpoints", &CpGan::new(CpGanConfig::tiny()));
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 4,
            ..ServeConfig::default()
        },
        registry_for(&path),
    )
    .unwrap();
    let addr = server.addr();

    let reply = get(addr, "/healthz");
    assert_eq!(reply.status, 200);
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"workers\":2"), "{body}");
    assert!(body.contains("\"queue_capacity\":4"), "{body}");
    assert!(body.contains("\"cache_entries\":"), "{body}");

    let reply = get(addr, "/v1/models");
    assert_eq!(reply.status, 200);
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.contains("\"name\":\"endpoints\""), "{body}");
    assert!(body.contains("\"trained_nodes\":null"), "{body}");

    let reply = get(addr, "/metrics");
    assert_eq!(reply.status, 200);
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.starts_with("{\"spans\":{"), "{body}");
    assert!(body.contains("\"serve.accepted\":"), "{body}");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}
