//! Shared helpers for the serve integration tests: model fixtures and a
//! tiny keep-alive-aware HTTP client built on the crate's own framed
//! reply parser (`cpgan_serve::http::parse_reply`), so tests never rely
//! on connection-close semantics to find message boundaries.

#![allow(dead_code)] // each integration-test binary uses a subset

use cpgan::CpGan;
use cpgan_graph::Graph;
use cpgan_serve::http::{parse_reply, Reply};
use cpgan_serve::ModelRegistry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A small 3-community graph (same family as the persist tests).
pub fn small_graph() -> Graph {
    let mut edges = Vec::new();
    for c in 0..3u32 {
        let base = c * 12;
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                if (a + b) % 2 == 0 {
                    edges.push((base + a, base + b));
                }
            }
        }
        edges.push((base, (base + 12) % 36));
    }
    Graph::from_edges(36, edges).unwrap()
}

pub fn temp_model_path(tag: &str, model: &CpGan) -> PathBuf {
    let dir = std::env::temp_dir().join("cpgan_serve_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.json"));
    model.save(&path).unwrap();
    path
}

pub fn registry_for(path: &Path) -> ModelRegistry {
    let mut registry = ModelRegistry::new();
    registry.load_file(path.to_str().unwrap()).unwrap();
    registry
}

/// A keep-alive HTTP client: one socket, framed reads, any number of
/// request/response exchanges.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    pub fn send_raw(&mut self, raw: &[u8]) {
        self.stream.write_all(raw).unwrap();
    }

    pub fn get(&mut self, path: &str) {
        self.send_raw(format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes());
    }

    pub fn post_generate(&mut self, body: &str) {
        self.send_raw(generate_request(body, true).as_bytes());
    }

    /// Reads exactly one framed reply (content-length or chunked).
    pub fn read_reply(&mut self) -> Reply {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some((reply, used)) = parse_reply(&self.buf).expect("well-formed reply") {
                self.buf.drain(..used);
                return reply;
            }
            let n = self.stream.read(&mut chunk).expect("reply read");
            assert!(n > 0, "server closed before a complete reply arrived");
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Expects the server to close the connection without sending
    /// anything further (idle-deadline hygiene).
    pub fn expect_silent_close(&mut self) {
        let mut chunk = [0u8; 1024];
        let n = self.stream.read(&mut chunk).expect("read until close");
        assert_eq!(
            n,
            0,
            "expected a silent close, got {} unexpected bytes",
            self.buf.len() + n
        );
    }

    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// A `POST /v1/generate` request; `keep_alive = false` adds
/// `connection: close`.
pub fn generate_request(body: &str, keep_alive: bool) -> String {
    let conn = if keep_alive {
        ""
    } else {
        "connection: close\r\n"
    };
    format!(
        "POST /v1/generate HTTP/1.1\r\nhost: t\r\n{conn}content-length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// One-shot exchange on a fresh connection (close mode).
pub fn exchange(addr: SocketAddr, raw: &[u8]) -> Reply {
    let mut client = Client::connect(addr);
    client.send_raw(raw);
    client.read_reply()
}

pub fn post_generate(addr: SocketAddr, body: &str) -> Reply {
    exchange(addr, generate_request(body, false).as_bytes())
}

pub fn get(addr: SocketAddr, path: &str) -> Reply {
    exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
    )
}
