//! Doc-sync: DESIGN.md §11 documents the serving architecture. If the
//! connection layer, cache, or bench gate changes, the section must move
//! with it — these tests fail on drift, mirroring the §12/§13/§14 suites.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

/// DESIGN.md §11 body (from the section header to the next `## `).
fn section_11() -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
    let text = std::fs::read_to_string(path).expect("DESIGN.md must be readable");
    let start = text
        .find("## 11.")
        .expect("DESIGN.md must have a §11 (serving architecture)");
    let body = &text[start..];
    let end = body[6..].find("\n## ").map(|i| i + 6).unwrap_or(body.len());
    body[..end].to_string()
}

#[test]
fn design_section_documents_the_event_loop() {
    let s = section_11();
    for item in [
        "poll(2)",
        "Reading",
        "Dispatched",
        "Writing",
        "keep-alive",
        "Poller::notify",
        "--max-conns",
        "--idle-ms",
        "slowloris",
    ] {
        assert!(s.contains(item), "DESIGN.md §11 must mention `{item}`");
    }
}

#[test]
fn design_section_documents_the_cache_and_streaming() {
    let s = section_11();
    for item in [
        "GenCache",
        "CacheKey",
        "--cache-mb",
        "LRU",
        "Arc<Vec<u8>>",
        "serve.cache.hit",
        "serve.cache.miss",
        "transfer-encoding: chunked",
        "content-length",
    ] {
        assert!(s.contains(item), "DESIGN.md §11 must mention `{item}`");
    }
}

#[test]
fn design_section_states_the_taxonomy_and_gate() {
    let s = section_11();
    for code in [
        "bad_request",
        "deadline_exceeded",
        "payload_too_large",
        "queue_full",
        "over_capacity",
        "shutting_down",
    ] {
        assert!(s.contains(code), "§11 must keep wire code `{code}`");
    }
    assert!(
        s.contains("BENCH_serve.json"),
        "§11 must name the bench artifact"
    );
    for flag in [
        "--assert-min-rps",
        "--assert-max-p99-ms",
        "--assert-min-cached-over-cold",
    ] {
        assert!(s.contains(flag), "§11 must name the CI gate flag `{flag}`");
    }
}
