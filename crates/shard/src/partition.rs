//! Recursive Louvain sharding under a max-shard-size budget.
//!
//! A shard is a set of original node ids that trains and generates as one
//! unit. Louvain supplies the community structure; communities larger than
//! the budget are re-partitioned on their induced subgraph (with a
//! depth-salted seed so the recursion explores fresh refinements), and a
//! deterministic contiguous-chunk fallback guarantees termination when
//! Louvain refuses to split further.

use cpgan_community::louvain::louvain;
use cpgan_graph::{Graph, NodeId};

/// One community shard: the original node ids it owns, ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Original node ids, sorted ascending (the index of a node in this
    /// list is its local id inside the shard's induced subgraph).
    pub nodes: Vec<NodeId>,
}

/// Recursion depth cap: past this the contiguous-chunk fallback takes over
/// (Louvain making sub-linear progress on adversarial inputs).
const MAX_DEPTH: usize = 32;

/// Partitions `g` into community shards of at most `max_shard_size` nodes.
///
/// Shards are returned sorted by their smallest node id, so shard indices
/// are a pure function of `(g, max_shard_size, seed)` — the determinism
/// anchor for per-shard seed derivation. Every node lands in exactly one
/// shard; the empty graph yields no shards.
pub fn partition_shards(g: &Graph, max_shard_size: usize, seed: u64) -> Vec<Shard> {
    let max = max_shard_size.max(1);
    let all: Vec<NodeId> = (0..g.n() as NodeId).collect();
    let mut out = Vec::new();
    if !all.is_empty() {
        split(g, all, max, seed, 0, &mut out);
    }
    out.sort_by_key(|s| s.nodes.first().copied().unwrap_or(NodeId::MAX));
    out
}

/// Splits `nodes` (ascending) into shards of at most `max`, recursing on
/// oversized Louvain communities.
fn split(g: &Graph, nodes: Vec<NodeId>, max: usize, seed: u64, depth: usize, out: &mut Vec<Shard>) {
    if nodes.len() <= max {
        out.push(Shard { nodes });
        return;
    }
    if depth < MAX_DEPTH {
        let (sub, order) = g.induced_subgraph(&nodes);
        let part = louvain(&sub, seed.wrapping_add(depth as u64));
        let k = part.community_count();
        if k > 1 {
            let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); k];
            for (v, &c) in part.labels().iter().enumerate() {
                groups[c].push(order[v]);
            }
            for mut grp in groups {
                if grp.is_empty() {
                    continue;
                }
                // `order` is ascending (first-occurrence of an ascending
                // list), so each group is already sorted; keep the sort as
                // a cheap invariant guard against future reorderings.
                grp.sort_unstable();
                split(g, grp, max, seed, depth + 1, out);
            }
            return;
        }
    }
    // Louvain saw one community (or the recursion ran too deep): fall back
    // to deterministic contiguous chunks.
    for chunk in nodes.chunks(max) {
        out.push(Shard {
            nodes: chunk.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> Graph {
        // Two 6-cliques joined by one bridge edge.
        let mut edges = Vec::new();
        for base in [0u32, 6] {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 6));
        Graph::from_edges(12, edges).unwrap()
    }

    #[test]
    fn covers_every_node_exactly_once() {
        let g = two_cliques();
        let shards = partition_shards(&g, 8, 1);
        let mut seen: Vec<NodeId> = shards.iter().flat_map(|s| s.nodes.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
        for s in &shards {
            assert!(s.nodes.len() <= 8, "oversized shard: {:?}", s.nodes);
            assert!(s.nodes.windows(2).all(|w| w[0] < w[1]), "unsorted shard");
        }
    }

    #[test]
    fn cliques_stay_together() {
        let g = two_cliques();
        let shards = partition_shards(&g, 8, 1);
        assert_eq!(shards.len(), 2, "{shards:?}");
        assert_eq!(shards[0].nodes, (0..6).collect::<Vec<_>>());
        assert_eq!(shards[1].nodes, (6..12).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_fallback_on_unsplittable_input() {
        // A clique has one community at every resolution: the contiguous
        // fallback must still respect the size budget.
        let mut edges = Vec::new();
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(10, edges).unwrap();
        let shards = partition_shards(&g, 4, 7);
        assert!(shards.iter().all(|s| s.nodes.len() <= 4));
        let total: usize = shards.iter().map(|s| s.nodes.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn deterministic_across_calls() {
        let g = two_cliques();
        assert_eq!(partition_shards(&g, 5, 3), partition_shards(&g, 5, 3));
    }

    #[test]
    fn empty_graph_yields_no_shards() {
        let g = Graph::from_edges(0, []).unwrap();
        assert!(partition_shards(&g, 10, 0).is_empty());
    }
}
