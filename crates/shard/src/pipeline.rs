//! The sharded train → generate → stitch pipeline.
//!
//! Determinism contract (DESIGN.md §8, §14): the output graph is a pure
//! function of `(input graph, ShardConfig)`. Per-shard randomness derives
//! from `(seed, shard index)`, per-pair stitching randomness from
//! `(seed, community pair)`, and results are always combined in shard-index
//! order — so thread count, wave layout, and shard processing order are all
//! invisible in the output.

use crate::partition::{partition_shards, Shard};
use crate::schedule::{estimate_peak_bytes, peak_estimate, plan_waves};
use crate::ShardError;
use cpgan::{CpGan, CpGanConfig};
use cpgan_graph::{Graph, GraphBuilder, NodeId};
use cpgan_nn::Matrix;
use cpgan_parallel::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Golden-ratio mix constant for per-shard seed derivation.
const SHARD_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;
/// Salt separating the generation stream from the training stream.
const GEN_SALT: u64 = 0xD1B5_4A32_D192_ED03;
/// Salt for the quotient-assembly RNG.
const STITCH_SALT: u64 = 0x2545_F491_4F6C_DD1D;
/// Salt for per-pair edge realization RNGs.
const PAIR_SALT: u64 = 0x6A09_E667_F3BC_C909;

/// Largest quotient (community count) the dense §III-G assembler runs on;
/// beyond this the sparse two-stage selection takes over (a dense k×k
/// matrix at k = 32k communities would be ~4 GiB).
const MAX_DENSE_QUOTIENT: usize = 4096;

/// Shards smaller than this skip model training and echo their observed
/// subgraph: a handful of nodes cannot support the encoder, and echoing is
/// the deterministic community-preserving fallback.
const MIN_TRAINABLE_NODES: usize = 8;
/// Minimum observed edges for a shard to be worth training on.
const MIN_TRAINABLE_EDGES: usize = 4;

/// Configuration of the sharded pipeline.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Maximum nodes per shard (oversized Louvain communities are
    /// recursively re-partitioned).
    pub max_shard_size: usize,
    /// Per-wave peak-bytes budget for shard scheduling; 0 disables
    /// budgeting (single wave).
    pub memory_budget_bytes: usize,
    /// Per-shard model hyper-parameters; the `seed` field is ignored (the
    /// pipeline derives per-shard seeds from [`ShardConfig::seed`]).
    pub model: CpGanConfig,
    /// Pipeline seed: the single entropy root for partitioning, every
    /// shard's model, and stitching.
    pub seed: u64,
    /// Fraction of observed community-pair links the quotient assembly
    /// keeps (1.0 = all observed pairs; lower values sparsify while the
    /// categorical stage still guarantees every community one external
    /// link).
    pub inter_pair_fraction: f64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            max_shard_size: 4000,
            memory_budget_bytes: 256 << 20,
            model: CpGanConfig::tiny(),
            seed: 42,
            inter_pair_fraction: 1.0,
        }
    }
}

/// Output of a pipeline run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The generated graph (same node count as the input).
    pub graph: Graph,
    /// Number of community shards.
    pub shards: usize,
    /// Number of scheduling waves executed.
    pub waves: usize,
    /// Generated intra-shard edges.
    pub intra_edges: usize,
    /// Generated inter-shard (stitched) edges.
    pub inter_edges: usize,
    /// Largest shard, in nodes.
    pub max_shard_nodes: usize,
    /// Scheduled peak of the per-wave byte estimates.
    pub peak_estimate_bytes: usize,
}

/// The community-sharded divide-and-conquer pipeline.
#[derive(Debug, Clone)]
pub struct ShardPipeline {
    cfg: ShardConfig,
}

impl ShardPipeline {
    /// Validates `cfg` and builds the pipeline.
    pub fn new(cfg: ShardConfig) -> Result<Self, ShardError> {
        if cfg.max_shard_size < 2 {
            return Err(ShardError::Config(format!(
                "max_shard_size must be >= 2, got {}",
                cfg.max_shard_size
            )));
        }
        if !(cfg.inter_pair_fraction > 0.0 && cfg.inter_pair_fraction <= 1.0) {
            return Err(ShardError::Config(format!(
                "inter_pair_fraction must be in (0, 1], got {}",
                cfg.inter_pair_fraction
            )));
        }
        cfg.model
            .validate()
            .map_err(|e| ShardError::Config(e.to_string()))?;
        Ok(ShardPipeline { cfg })
    }

    /// The validated configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// Runs the full pipeline on `g`, scheduling shards into
    /// memory-budgeted waves and fanning each wave out over the parallel
    /// runtime.
    pub fn run(&self, g: &Graph) -> Result<ShardReport, ShardError> {
        let _span = cpgan_obs::span("shard.pipeline");
        let shards = self.partition(g);
        let estimates: Vec<usize> = shards
            .iter()
            .map(|s| {
                let m = intra_edge_count(g, s);
                estimate_peak_bytes(s.nodes.len(), m, &self.cfg.model)
            })
            .collect();
        let waves = plan_waves(&estimates, self.cfg.memory_budget_bytes);
        let peak = peak_estimate(&estimates, &waves);
        cpgan_obs::gauge_set("shard.waves", waves.len() as f64);
        cpgan_obs::gauge_set("shard.peak_estimate_bytes", peak as f64);
        let generated = self.generate_shards(g, &shards, &waves);
        self.assemble(g, &shards, generated, waves.len(), peak)
    }

    /// Like [`ShardPipeline::run`] but processes shards sequentially in the
    /// given order — `order` must be a permutation of `0..shards`. The
    /// output graph is bit-identical to [`ShardPipeline::run`]'s (shard
    /// results are keyed by index, never by completion order); the
    /// determinism suite pins exactly this.
    pub fn run_with_order(&self, g: &Graph, order: &[usize]) -> Result<ShardReport, ShardError> {
        let _span = cpgan_obs::span("shard.pipeline");
        let shards = self.partition(g);
        let mut seen = vec![false; shards.len()];
        for &i in order {
            if i >= shards.len() || seen[i] {
                return Err(ShardError::Config(format!(
                    "order must be a permutation of 0..{}",
                    shards.len()
                )));
            }
            seen[i] = true;
        }
        if !seen.iter().all(|&s| s) {
            return Err(ShardError::Config(format!(
                "order must cover every shard index 0..{}",
                shards.len()
            )));
        }
        // One single-shard wave per order entry: the scheduling skeleton
        // exercises the arbitrary completion order.
        let waves: Vec<Vec<usize>> = order.iter().map(|&i| vec![i]).collect();
        let estimates: Vec<usize> = shards
            .iter()
            .map(|s| {
                let m = intra_edge_count(g, s);
                estimate_peak_bytes(s.nodes.len(), m, &self.cfg.model)
            })
            .collect();
        let peak = peak_estimate(&estimates, &waves);
        let generated = self.generate_shards(g, &shards, &waves);
        self.assemble(g, &shards, generated, waves.len(), peak)
    }

    fn partition(&self, g: &Graph) -> Vec<Shard> {
        let _span = cpgan_obs::span("shard.partition");
        let shards = partition_shards(g, self.cfg.max_shard_size, self.cfg.seed);
        cpgan_obs::gauge_set("shard.count", shards.len() as f64);
        cpgan_obs::gauge_set(
            "shard.max_nodes",
            shards.iter().map(|s| s.nodes.len()).max().unwrap_or(0) as f64,
        );
        shards
    }

    /// Trains + generates every shard, wave by wave; results are keyed by
    /// shard index regardless of wave layout or scheduling order.
    fn generate_shards(&self, g: &Graph, shards: &[Shard], waves: &[Vec<usize>]) -> Vec<Graph> {
        let _span = cpgan_obs::span("shard.train_generate");
        let mut results: Vec<Option<Graph>> = vec![None; shards.len()];
        for wave in waves {
            let items: Vec<(usize, Graph)> = wave
                .iter()
                .map(|&i| (i, g.induced_subgraph(&shards[i].nodes).0))
                .collect();
            let model_cfg = self.cfg.model.clone();
            let base_seed = self.cfg.seed;
            let done = Pool::global().par_map_owned(items, move |_, (idx, sub)| {
                let shard_seed = base_seed ^ (idx as u64 + 1).wrapping_mul(SHARD_SEED_MIX);
                (idx, train_generate_one(&sub, &model_cfg, shard_seed))
            });
            for (idx, graph) in done {
                results[idx] = Some(graph);
            }
        }
        // Every shard index appears in exactly one wave, so every slot is
        // filled; an empty placeholder keeps the no-panic contract.
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(empty_graph))
            .collect()
    }

    /// Combines intra-shard generations and stitches inter-shard edges.
    fn assemble(
        &self,
        g: &Graph,
        shards: &[Shard],
        generated: Vec<Graph>,
        waves: usize,
        peak_estimate_bytes: usize,
    ) -> Result<ShardReport, ShardError> {
        let _span = cpgan_obs::span("shard.stitch");
        let mut builder = GraphBuilder::with_capacity(g.n(), g.m());
        let mut intra_edges = 0usize;
        for (shard, gen) in shards.iter().zip(&generated) {
            for &(a, b) in gen.edges() {
                builder.add_edge(shard.nodes[a as usize], shard.nodes[b as usize])?;
                intra_edges += 1;
            }
        }
        let inter_edges = self.stitch(g, shards, &generated, &mut builder)?;
        cpgan_obs::gauge_set("shard.intra_edges", intra_edges as f64);
        cpgan_obs::gauge_set("shard.inter_edges", inter_edges as f64);
        Ok(ShardReport {
            graph: builder.build(),
            shards: shards.len(),
            waves,
            intra_edges,
            inter_edges,
            max_shard_nodes: shards.iter().map(|s| s.nodes.len()).max().unwrap_or(0),
            peak_estimate_bytes,
        })
    }

    /// Two-stage edge assembly (§III-G) on the quotient graph of
    /// community-to-community edge counts, then per-pair realization.
    fn stitch(
        &self,
        g: &Graph,
        shards: &[Shard],
        generated: &[Graph],
        builder: &mut GraphBuilder,
    ) -> Result<usize, ShardError> {
        let k = shards.len();
        if k < 2 {
            return Ok(0);
        }
        // Map node -> shard index.
        let mut shard_of = vec![0usize; g.n()];
        for (i, s) in shards.iter().enumerate() {
            for &v in &s.nodes {
                shard_of[v as usize] = i;
            }
        }
        // Quotient weights: observed inter-community edge counts.
        let mut weights: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for &(u, v) in g.edges() {
            let (a, b) = (shard_of[u as usize], shard_of[v as usize]);
            if a != b {
                let key = if a < b { (a, b) } else { (b, a) };
                *weights.entry(key).or_insert(0) += 1;
            }
        }
        let total_inter: usize = weights.values().sum();
        if total_inter == 0 {
            return Ok(0);
        }

        let target_pairs = ((weights.len() as f64 * self.cfg.inter_pair_fraction).ceil() as usize)
            .clamp(1, weights.len());
        let selected: Vec<(usize, usize)> = if target_pairs == weights.len() {
            // Keeping every observed pair: selection is the identity, so
            // skip the assembler (and its dense k×k matrix) outright.
            weights.keys().copied().collect()
        } else if k <= MAX_DENSE_QUOTIENT {
            // Stage 1+2 of §III-G on the quotient: probabilities
            // proportional to observed pair weights; degree budgets =
            // observed quotient degrees, so no community accumulates more
            // distinct partners than it had.
            let mut probs = Matrix::zeros(k, k);
            let mut qdeg = vec![0usize; k];
            for (&(a, b), &w) in &weights {
                let p = count_to_f32(w) / count_to_f32(total_inter);
                probs.set(a, b, p);
                probs.set(b, a, p);
                qdeg[a] += 1;
                qdeg[b] += 1;
            }
            let quotient_nodes: Vec<NodeId> = (0..k as NodeId).collect();
            let mut qrng = StdRng::seed_from_u64(self.cfg.seed ^ STITCH_SALT);
            let mut asm =
                cpgan::assembly::GraphAssembler::new(k, target_pairs).with_degree_budgets(qdeg);
            // One round suffices: the probability support is exactly the
            // observed pairs, so the categorical stage seeds every
            // community and the top-k stage fills to the target within the
            // support.
            asm.add_subgraph(&quotient_nodes, &probs, target_pairs, &mut qrng);
            asm.build()
                .edges()
                .iter()
                .map(|&(a, b)| (a as usize, b as usize))
                .collect()
        } else {
            // The dense-assembler path would allocate a k×k matrix; past
            // MAX_DENSE_QUOTIENT communities run the same two stages
            // sparsely and deterministically: seed every community with its
            // heaviest observed pair (the categorical stage's guarantee),
            // then fill to the target in global weight order (the top-k
            // stage).
            select_pairs_sparse(&weights, k, target_pairs)
        };

        // Apportion the observed inter-edge total over the selected pairs
        // proportionally to their weights (largest remainder), then realize
        // each pair's budget with degree-proportional endpoints inside the
        // generated shards.
        let sel_weight: usize = selected
            .iter()
            .map(|p| weights.get(p).copied().unwrap_or(0))
            .sum();
        if sel_weight == 0 {
            return Ok(0);
        }
        let mut counts: Vec<(usize, (usize, usize))> = Vec::with_capacity(selected.len());
        let mut rema: Vec<(f64, usize)> = Vec::with_capacity(selected.len());
        let mut assigned = 0usize;
        for (i, &pair) in selected.iter().enumerate() {
            let w = weights.get(&pair).copied().unwrap_or(0);
            let exact = total_inter as f64 * w as f64 / sel_weight as f64;
            let base = exact.floor() as usize;
            assigned += base;
            counts.push((base, pair));
            rema.push((exact - base as f64, i));
        }
        // Largest remainder, index tiebreak: deterministic apportionment.
        rema.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut leftover = total_inter.saturating_sub(assigned);
        for &(_, i) in &rema {
            if leftover == 0 {
                break;
            }
            counts[i].0 += 1;
            leftover -= 1;
        }

        // Degree-proportional endpoint weights inside each generated shard
        // (degree + 1 so isolated generated nodes stay reachable).
        let cum: Vec<Vec<f64>> = generated
            .iter()
            .map(|gen| {
                let mut acc = 0.0;
                (0..gen.n())
                    .map(|v| {
                        acc += gen.degree(v as NodeId) as f64 + 1.0;
                        acc
                    })
                    .collect()
            })
            .collect();
        let mut inter_edges = 0usize;
        for &(count, (a, b)) in &counts {
            if count == 0 {
                continue;
            }
            let pair_key = ((a as u64) << 32) | b as u64;
            let mut rng = StdRng::seed_from_u64(
                self.cfg.seed ^ PAIR_SALT ^ pair_key.wrapping_mul(SHARD_SEED_MIX),
            );
            let mut placed: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
            let mut attempts = 0usize;
            let max_attempts = 30 * count + 100;
            while placed.len() < count && attempts < max_attempts {
                attempts += 1;
                let (Some(u), Some(v)) = (
                    pick_weighted(&cum[a], &mut rng),
                    pick_weighted(&cum[b], &mut rng),
                ) else {
                    break;
                };
                placed.insert((shards[a].nodes[u], shards[b].nodes[v]));
            }
            for &(u, v) in &placed {
                builder.add_edge(u, v)?;
                inter_edges += 1;
            }
        }
        Ok(inter_edges)
    }
}

/// Saturating edge-count → f32 for *relative* probability weights: pair
/// counts sit far below 2^24, and past u32::MAX the ratio is already
/// approximate, so saturation loses nothing the f32 hadn't.
fn count_to_f32(c: usize) -> f32 {
    u32::try_from(c).unwrap_or(u32::MAX) as f32
}

/// Sparse mirror of the two-stage §III-G selection for huge quotients:
/// stage 1 keeps each community's heaviest observed pair (every community
/// with an external link keeps at least one), stage 2 fills to
/// `target_pairs` in global weight order. Fully deterministic — ties break
/// on the (ordered) pair key.
fn select_pairs_sparse(
    weights: &BTreeMap<(usize, usize), usize>,
    k: usize,
    target_pairs: usize,
) -> Vec<(usize, usize)> {
    // Heaviest incident pair per community (weight desc, key asc on ties —
    // BTreeMap iterates keys ascending, so `>` keeps the first max).
    let mut best: Vec<Option<(usize, (usize, usize))>> = vec![None; k];
    for (&pair, &w) in weights {
        for c in [pair.0, pair.1] {
            if best[c].is_none_or(|(bw, _)| w > bw) {
                best[c] = Some((w, pair));
            }
        }
    }
    let mut chosen: BTreeSet<(usize, usize)> = best.into_iter().flatten().map(|(_, p)| p).collect();
    if chosen.len() < target_pairs {
        let mut rest: Vec<(usize, (usize, usize))> = weights
            .iter()
            .filter(|(p, _)| !chosen.contains(p))
            .map(|(&p, &w)| (w, p))
            .collect();
        rest.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, p) in rest.into_iter().take(target_pairs - chosen.len()) {
            chosen.insert(p);
        }
    }
    chosen.into_iter().collect()
}

/// The zero-node graph (infallible placeholder for an unreachable slot).
fn empty_graph() -> Graph {
    GraphBuilder::new(0).build()
}

/// Observed intra-shard edge count (both endpoints inside the shard).
fn intra_edge_count(g: &Graph, shard: &Shard) -> usize {
    let set: BTreeSet<NodeId> = shard.nodes.iter().copied().collect();
    let mut m = 0usize;
    for &v in &shard.nodes {
        for &w in g.neighbors(v) {
            if v < w && set.contains(&w) {
                m += 1;
            }
        }
    }
    m
}

/// Samples an index proportionally to the positive increments of the
/// cumulative weight array `cum`.
fn pick_weighted(cum: &[f64], rng: &mut StdRng) -> Option<usize> {
    let total = *cum.last()?;
    // NaN or non-positive totals both mean "nothing to sample".
    if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return None;
    }
    let x = rng.gen::<f64>() * total;
    Some(cum.partition_point(|&p| p <= x).min(cum.len() - 1))
}

/// Trains a shard model on `sub` and generates a same-shape replacement.
/// All randomness flows from `shard_seed`; degenerate shards echo their
/// observed structure (see [`MIN_TRAINABLE_NODES`]).
fn train_generate_one(sub: &Graph, model: &CpGanConfig, shard_seed: u64) -> Graph {
    if sub.n() < MIN_TRAINABLE_NODES || sub.m() < MIN_TRAINABLE_EDGES {
        return sub.clone();
    }
    let _span = cpgan_obs::span("shard.fit_one");
    let mut cfg = model.clone();
    cfg.seed = shard_seed;
    cfg.sample_size = cfg.sample_size.min(sub.n());
    let mut m = CpGan::new(cfg);
    let _stats = m.fit(sub);
    let mut rng = StdRng::seed_from_u64(shard_seed ^ GEN_SALT);
    m.generate(sub.n(), sub.m(), &mut rng)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    fn quick_cfg() -> ShardConfig {
        let mut model = CpGanConfig::tiny();
        model.epochs = 2;
        model.sample_size = 16;
        ShardConfig {
            max_shard_size: 8,
            memory_budget_bytes: 0,
            model,
            seed: 7,
            inter_pair_fraction: 1.0,
        }
    }

    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for base in [0u32, 8] {
            for i in 0..8 {
                for j in (i + 1)..8 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 8));
        edges.push((1, 9));
        Graph::from_edges(16, edges).unwrap()
    }

    #[test]
    fn rejects_bad_configs() {
        let mut cfg = quick_cfg();
        cfg.max_shard_size = 1;
        assert!(matches!(
            ShardPipeline::new(cfg),
            Err(ShardError::Config(_))
        ));
        let mut cfg = quick_cfg();
        cfg.inter_pair_fraction = 0.0;
        assert!(ShardPipeline::new(cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.inter_pair_fraction = 1.5;
        assert!(ShardPipeline::new(cfg).is_err());
        assert!(ShardPipeline::new(quick_cfg()).is_ok());
    }

    #[test]
    fn run_preserves_node_count_and_generates_edges() {
        let g = two_cliques();
        let report = ShardPipeline::new(quick_cfg()).unwrap().run(&g).unwrap();
        assert_eq!(report.graph.n(), g.n());
        assert_eq!(report.shards, 2);
        assert!(report.intra_edges > 0, "{report:?}");
        assert!(report.inter_edges > 0, "{report:?}");
        assert_eq!(report.graph.m(), report.intra_edges + report.inter_edges);
        assert!(report.max_shard_nodes <= 8);
        assert!(report.waves >= 1);
        assert!(report.peak_estimate_bytes > 0);
    }

    #[test]
    fn run_with_order_validates_permutations() {
        let g = two_cliques();
        let p = ShardPipeline::new(quick_cfg()).unwrap();
        assert!(p.run_with_order(&g, &[0, 0]).is_err(), "duplicate index");
        assert!(p.run_with_order(&g, &[0, 5]).is_err(), "out of range");
        assert!(p.run_with_order(&g, &[0]).is_err(), "incomplete cover");
        assert!(p.run_with_order(&g, &[1, 0]).is_ok());
    }

    #[test]
    fn single_shard_has_no_inter_edges() {
        let mut edges = Vec::new();
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(10, edges).unwrap();
        let mut cfg = quick_cfg();
        cfg.max_shard_size = 32;
        let report = ShardPipeline::new(cfg).unwrap().run(&g).unwrap();
        assert_eq!(report.shards, 1);
        assert_eq!(report.inter_edges, 0);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new(0).build();
        let report = ShardPipeline::new(quick_cfg()).unwrap().run(&g).unwrap();
        assert_eq!(report.graph.n(), 0);
        assert_eq!(report.shards, 0);
        assert_eq!(report.graph.m(), 0);
    }

    #[test]
    fn sparse_selection_seeds_every_community() {
        // Chain 0-1-2-3 with weights 5, 1, 3: target 2 pairs. Stage 1 keeps
        // each community's heaviest pair — {(0,1), (1,2)? no: 1's best is
        // (0,1), 2's best is (2,3), 3's best is (2,3)} — so {(0,1), (2,3)}
        // already covers everyone and meets the target.
        let mut w = BTreeMap::new();
        w.insert((0usize, 1usize), 5usize);
        w.insert((1, 2), 1);
        w.insert((2, 3), 3);
        let sel = select_pairs_sparse(&w, 4, 2);
        assert_eq!(sel, vec![(0, 1), (2, 3)]);
        // Raising the target pulls in the remaining pair.
        assert_eq!(select_pairs_sparse(&w, 4, 3), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn fractional_inter_pairs_reduce_stitching() {
        let g = fixture_sparse_bridges();
        let mut full = quick_cfg();
        full.max_shard_size = 6;
        let mut frac = full.clone();
        frac.inter_pair_fraction = 0.4;
        let full_report = ShardPipeline::new(full).unwrap().run(&g).unwrap();
        let frac_report = ShardPipeline::new(frac).unwrap().run(&g).unwrap();
        // Fewer community pairs carry the same inter-edge mass, so the
        // fractional run realizes at most as many stitched edges.
        assert!(frac_report.inter_edges <= full_report.inter_edges);
        assert!(frac_report.inter_edges > 0);
    }

    /// Four 6-cliques in a bridge ring: multiple communities with several
    /// observed community pairs, for selection-path tests.
    fn fixture_sparse_bridges() -> Graph {
        let mut edges = Vec::new();
        for c in 0..4u32 {
            let base = c * 6;
            for i in 0..6 {
                for j in (i + 1)..6 {
                    edges.push((base + i, base + j));
                }
            }
        }
        for c in 0..4u32 {
            let next = (c + 1) % 4;
            edges.push((c * 6, next * 6));
            edges.push((c * 6 + 1, next * 6 + 1));
            edges.push((c * 6 + 2, next * 6 + 2));
        }
        Graph::from_edges(24, edges).unwrap()
    }

    #[test]
    fn tiny_shards_echo_observed_structure() {
        // 3 nodes, 2 edges: below the trainable floor, so the pipeline must
        // echo the observed subgraph exactly.
        let g = Graph::from_edges(3, [(0u32, 1), (1, 2)]).unwrap();
        let mut cfg = quick_cfg();
        cfg.max_shard_size = 16;
        let report = ShardPipeline::new(cfg).unwrap().run(&g).unwrap();
        assert_eq!(report.graph.edges(), g.edges());
    }
}
