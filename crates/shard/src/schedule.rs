//! Memory-budgeted shard scheduling.
//!
//! Training a shard's model has a predictable peak-bytes envelope (dense
//! `n_s × n_s` working matrices dominate; see the estimate below). The
//! scheduler greedily bin-packs shards into sequential *waves* whose summed
//! estimates fit the byte budget; shards inside a wave fan out in parallel.
//! Packing is a pure function of the estimates, so the wave layout — like
//! everything else in the pipeline — is independent of thread count.

use cpgan::CpGanConfig;

/// Estimated peak heap bytes for training + generating one shard.
///
/// The envelope is dominated by the dense subgraph working set: the
/// adjacency target, logits, and gradient mirrors are `n_s × n_s` f32
/// matrices (`n_s = min(sample_size, shard_n)`), plus hidden activations
/// (`n_s × hidden`) and the sparse CSR of the shard itself. Constants are
/// deliberately generous — the scheduler's job is to never exceed the
/// budget, not to pack tightly (DESIGN.md §14).
pub fn estimate_peak_bytes(shard_n: usize, shard_m: usize, cfg: &CpGanConfig) -> usize {
    let ns = cfg.sample_size.min(shard_n).max(2);
    let h = cfg.hidden_dim.max(cfg.latent_dim);
    let dense = 8 * ns * ns * 4; // adjacency target + logits + grads + tape slack
    let hidden = 12 * ns * h * 4; // activations + grads across layers
    let params = 6 * h * h * 4; // weights + Adam moments
    let csr = 24 * shard_m + 64 * shard_n; // shard CSR + spectral features
    dense + hidden + params + csr
}

/// Greedy first-fit-decreasing bin-packing of shard indices into waves.
///
/// Shards are placed largest-estimate first (ties broken by index) into the
/// earliest wave with room; a shard whose own estimate exceeds the budget
/// gets a dedicated wave (it cannot be split, so the budget is best-effort
/// for it — the caller reports this through the peak estimate). A `budget`
/// of 0 means unlimited: one wave with every shard in index order.
pub fn plan_waves(estimates: &[usize], budget: usize) -> Vec<Vec<usize>> {
    if budget == 0 {
        return if estimates.is_empty() {
            Vec::new()
        } else {
            vec![(0..estimates.len()).collect()]
        };
    }
    let mut order: Vec<usize> = (0..estimates.len()).collect();
    order.sort_by_key(|&i| (usize::MAX - estimates[i], i));
    let mut waves: Vec<(usize, Vec<usize>)> = Vec::new(); // (used, members)
    for i in order {
        let e = estimates[i];
        match waves
            .iter_mut()
            .find(|(used, _)| used.saturating_add(e) <= budget)
        {
            Some((used, members)) => {
                *used += e;
                members.push(i);
            }
            None => waves.push((e, vec![i])),
        }
    }
    // Inside a wave, process in shard-index order (cosmetic: results are
    // index-keyed either way).
    waves
        .into_iter()
        .map(|(_, mut m)| {
            m.sort_unstable();
            m
        })
        .collect()
}

/// The peak of the per-wave estimate sums — what the pipeline reports as
/// its scheduled memory high-water mark.
pub fn peak_estimate(estimates: &[usize], waves: &[Vec<usize>]) -> usize {
    waves
        .iter()
        .map(|w| w.iter().map(|&i| estimates[i]).sum())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waves_respect_budget() {
        let est = vec![40, 10, 30, 20, 10];
        let waves = plan_waves(&est, 50);
        for w in &waves {
            let used: usize = w.iter().map(|&i| est[i]).sum();
            assert!(used <= 50, "wave {w:?} uses {used}");
        }
        let mut all: Vec<usize> = waves.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        assert!(peak_estimate(&est, &waves) <= 50);
    }

    #[test]
    fn oversized_shard_gets_own_wave() {
        let est = vec![100, 5];
        let waves = plan_waves(&est, 50);
        assert!(waves.contains(&vec![0]));
        assert_eq!(peak_estimate(&est, &waves), 100);
    }

    #[test]
    fn zero_budget_means_one_wave() {
        let est = vec![1, 2, 3];
        assert_eq!(plan_waves(&est, 0), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn estimate_grows_with_shard_size() {
        let cfg = CpGanConfig::tiny();
        let small = estimate_peak_bytes(10, 20, &cfg);
        let large = estimate_peak_bytes(10_000, 40_000, &cfg);
        assert!(large > small);
        // sample_size caps the dense term: two big shards differ only by
        // the linear CSR term.
        let larger = estimate_peak_bytes(20_000, 80_000, &cfg);
        assert!(larger - large < large);
    }
}
