#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Community-sharded divide-and-conquer generation (DESIGN.md §14).
//!
//! CPGAN's monolithic pipeline trains one model over the whole input graph,
//! which caps the practical scale well below the paper's largest targets.
//! This crate scales it out the way SANGEA/BTGAE-style systems do, while
//! keeping the workspace's bit-identical determinism contract (§8):
//!
//! 1. **Partition** — Louvain communities under a max-shard-size budget;
//!    oversized communities are recursively re-partitioned
//!    ([`partition::partition_shards`]).
//! 2. **Train + generate per shard** — each shard trains and samples its
//!    own small CPGAN, fanned out over [`cpgan_parallel`]; every shard's
//!    randomness derives from `(pipeline seed, shard index)`, and results
//!    are combined in shard-index order, so neither the thread count nor
//!    the processing order can change a bit of the output.
//! 3. **Stitch** — inter-community edges are re-created by running the
//!    paper's two-stage edge assembly (§III-G) on the *quotient graph* of
//!    community-to-community edge counts, then realizing each selected
//!    community pair's edge budget with degree-proportional endpoints
//!    inside the generated shards.
//!
//! Shard scheduling is memory-budgeted: a peak-bytes estimate per shard
//! ([`schedule::estimate_peak_bytes`]) feeds greedy bin-packing into
//! sequential waves ([`schedule::plan_waves`]) so concurrent training never
//! exceeds the configured byte budget.

pub mod partition;
pub mod pipeline;
pub mod schedule;

pub use partition::{partition_shards, Shard};
pub use pipeline::{ShardConfig, ShardPipeline, ShardReport};

use std::fmt;

/// Errors from the sharded pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Invalid pipeline or model configuration.
    Config(String),
    /// An underlying graph operation failed.
    Graph(cpgan_graph::GraphError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Config(msg) => write!(f, "shard config error: {msg}"),
            ShardError::Graph(e) => write!(f, "shard graph error: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<cpgan_graph::GraphError> for ShardError {
    fn from(e: cpgan_graph::GraphError) -> Self {
        ShardError::Graph(e)
    }
}
