//! Sharded-pipeline determinism suite (DESIGN.md §8, §14).
//!
//! The pipeline's output must be a pure function of `(input graph, config)`:
//! neither the worker-pool thread count nor the order in which shards are
//! processed may change a single bit of the generated edge list. Both axes
//! are pinned here through an FNV-1a checksum of the canonical edge list,
//! mirroring `crates/generators/tests/determinism.rs`.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan::CpGanConfig;
use cpgan_graph::Graph;
use cpgan_parallel::with_thread_count;
use cpgan_shard::{ShardConfig, ShardPipeline};

/// FNV-1a over the canonical edge list (order included: the list itself is
/// canonical, so this pins both membership and ordering).
fn edge_checksum(g: &Graph) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u32| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &(u, v) in g.edges() {
        mix(u);
        mix(v);
    }
    h
}

/// Four 12-cliques joined by a sparse ring of bridges — clean community
/// structure so partitioning yields several trainable shards.
fn fixture_graph() -> Graph {
    let k = 4u32;
    let size = 12u32;
    let mut edges = Vec::new();
    for c in 0..k {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size {
                edges.push((base + i, base + j));
            }
        }
    }
    for c in 0..k {
        let next = (c + 1) % k;
        edges.push((c * size, next * size));
        edges.push((c * size + 1, next * size + 1));
    }
    Graph::from_edges((k * size) as usize, edges).unwrap()
}

fn pipeline() -> ShardPipeline {
    let mut model = CpGanConfig::tiny();
    model.epochs = 3;
    model.sample_size = 24;
    ShardPipeline::new(ShardConfig {
        max_shard_size: 12,
        memory_budget_bytes: 0,
        model,
        seed: 42,
        inter_pair_fraction: 1.0,
    })
    .unwrap()
}

#[test]
fn output_is_bit_identical_across_thread_counts() {
    let g = fixture_graph();
    let p = pipeline();
    let serial = with_thread_count(1, || p.run(&g).unwrap());
    assert!(serial.graph.m() > 0, "fixture produced an empty graph");
    let pin = edge_checksum(&serial.graph);
    for threads in [2, 4, 8] {
        let parallel = with_thread_count(threads, || p.run(&g).unwrap());
        assert_eq!(
            edge_checksum(&parallel.graph),
            pin,
            "sharded output drifted at {threads} threads \
             (serial m={}, parallel m={})",
            serial.graph.m(),
            parallel.graph.m()
        );
        assert_eq!(parallel.graph.edges(), serial.graph.edges());
        assert_eq!(parallel.intra_edges, serial.intra_edges);
        assert_eq!(parallel.inter_edges, serial.inter_edges);
    }
}

#[test]
fn output_is_bit_identical_across_shard_orderings() {
    let g = fixture_graph();
    let p = pipeline();
    let baseline = p.run(&g).unwrap();
    let k = baseline.shards;
    assert!(k >= 2, "fixture must split into multiple shards, got {k}");
    let pin = edge_checksum(&baseline.graph);

    // Forward, reverse, and two fixed shuffles: shard-completion order is
    // an explicit input here, so any order-dependence fails loudly.
    let forward: Vec<usize> = (0..k).collect();
    let reverse: Vec<usize> = (0..k).rev().collect();
    let rotated: Vec<usize> = (0..k).map(|i| (i + k / 2) % k).collect();
    let interleaved: Vec<usize> = (0..k)
        .map(|i| if i % 2 == 0 { i / 2 } else { k - 1 - i / 2 })
        .collect();
    for order in [forward, reverse, rotated, interleaved] {
        let out = p.run_with_order(&g, &order).unwrap();
        assert_eq!(
            edge_checksum(&out.graph),
            pin,
            "sharded output depends on processing order {order:?}"
        );
        assert_eq!(out.graph.edges(), baseline.graph.edges());
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let g = fixture_graph();
    let p = pipeline();
    let a = p.run(&g).unwrap();
    let b = p.run(&g).unwrap();
    assert_eq!(a.graph.edges(), b.graph.edges());
    assert_eq!(edge_checksum(&a.graph), edge_checksum(&b.graph));
}

#[test]
fn seed_changes_output() {
    let g = fixture_graph();
    let p1 = pipeline();
    let mut cfg = p1.config().clone();
    cfg.seed = 4242;
    let p2 = ShardPipeline::new(cfg).unwrap();
    let a = p1.run(&g).unwrap();
    let b = p2.run(&g).unwrap();
    assert_ne!(
        edge_checksum(&a.graph),
        edge_checksum(&b.graph),
        "different seeds should explore different generations"
    );
}
