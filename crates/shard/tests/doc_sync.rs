//! Doc-sync: DESIGN.md §14 documents the sharded pipeline. If the crate's
//! public surface or stage structure changes, the section must move with
//! it — these tests fail on drift, mirroring the §12/§13 doc-sync suites.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

/// DESIGN.md §14 body (from the section header to end of file — it is the
/// last section; a later §15 would terminate it and still keep this sound).
fn section_14() -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
    let text = std::fs::read_to_string(path).expect("DESIGN.md must be readable");
    let start = text
        .find("## 14.")
        .expect("DESIGN.md must have a §14 (community-sharded scale-out)");
    let body = &text[start..];
    let end = body[6..].find("\n## ").map(|i| i + 6).unwrap_or(body.len());
    body[..end].to_string()
}

#[test]
fn design_section_documents_the_pipeline_stages() {
    let s = section_14();
    for span in [
        "shard.pipeline",
        "shard.partition",
        "shard.train_generate",
        "shard.stitch",
    ] {
        assert!(
            s.contains(span),
            "DESIGN.md §14 must document span `{span}`"
        );
    }
}

#[test]
fn design_section_documents_the_public_surface() {
    let s = section_14();
    for item in [
        "partition_shards",
        "estimate_peak_bytes",
        "plan_waves",
        "run_with_order",
        "inter_pair_fraction",
        "max_shard_size",
        "memory_budget_bytes",
    ] {
        assert!(s.contains(item), "DESIGN.md §14 must mention `{item}`");
    }
}

#[test]
fn design_section_states_the_gate_and_artifacts() {
    let s = section_14();
    assert!(
        s.contains("BENCH_scale.json"),
        "§14 must name the bench artifact"
    );
    assert!(
        s.contains("--assert-min-nodes-per-sec"),
        "§14 must name the CI throughput gate flag"
    );
    assert!(
        s.contains("crates/shard/tests/determinism.rs"),
        "§14 must point at the determinism suite"
    );
}
