#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Evaluation harness reproducing every table and figure of the paper's
//! experimental section (§IV).
//!
//! * [`registry`] — a uniform interface over all 15 generators (8
//!   traditional, 6 learning-based, CPGAN + its ablation variants),
//! * [`budget`] — the 24 GB GPU memory model that reproduces the paper's
//!   "OOM" rows at full dataset scale,
//! * [`pipelines`] — one module per experiment (Tables III–IX, Figures 5–6),
//! * [`report`] — paper-vs-measured table rendering.

pub mod budget;
pub mod paper;
pub mod pipelines;
pub mod registry;
pub mod report;

/// Scaling and effort knobs shared by the experiment pipelines.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Divisor applied to the paper's dataset sizes (1 = full scale).
    pub scale: usize,
    /// Random repetitions for mean ± std columns.
    pub seeds: usize,
    /// Training epochs for the deep baselines.
    pub deep_epochs: usize,
    /// Training epochs for CPGAN.
    pub cpgan_epochs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Hard cap on nodes for models that materialize dense `n x n` state
    /// locally (they are skipped above it even when the paper-scale budget
    /// says they fit — CPU time guard, not a memory guard).
    pub dense_node_cap: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            scale: 16,
            seeds: 2,
            deep_epochs: 200,
            cpgan_epochs: 300,
            seed: 20220501,
            dense_node_cap: 1400,
        }
    }
}

impl EvalConfig {
    /// A fast smoke configuration for tests and `--fast` runs.
    pub fn fast() -> Self {
        EvalConfig {
            scale: 48,
            seeds: 1,
            deep_epochs: 60,
            cpgan_epochs: 60,
            dense_node_cap: 600,
            ..Default::default()
        }
    }

    /// Parses `--scale`, `--seeds`, `--fast` style CLI arguments (used by
    /// every `table*`/`fig*` binary).
    pub fn from_args(args: &[String]) -> Self {
        let mut cfg = if args.iter().any(|a| a == "--fast") {
            EvalConfig::fast()
        } else {
            EvalConfig::default()
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut grab = |field: &mut usize| {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    *field = v;
                }
            };
            match a.as_str() {
                "--scale" => grab(&mut cfg.scale),
                "--seeds" => grab(&mut cfg.seeds),
                "--deep-epochs" => grab(&mut cfg.deep_epochs),
                "--cpgan-epochs" => grab(&mut cfg.cpgan_epochs),
                _ => {}
            }
        }
        cfg
    }
}

/// Parses the sweep sizes for the efficiency binaries: all of
/// `cpgan_data::sweep::SWEEP_SIZES` up to `--max-size` (default 100k, or 1k
/// under `--fast`).
pub fn sweep_sizes_from_args(args: &[String]) -> Vec<usize> {
    let max: usize = args
        .iter()
        .position(|a| a == "--max-size")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if args.iter().any(|a| a == "--fast") {
            1_000
        } else {
            100_000
        });
    cpgan_data::sweep::SWEEP_SIZES
        .iter()
        .copied()
        .filter(|&n| n <= max)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--scale", "32", "--seeds", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = EvalConfig::from_args(&args);
        assert_eq!(cfg.scale, 32);
        assert_eq!(cfg.seeds, 3);
    }

    #[test]
    fn fast_flag() {
        let args = vec!["--fast".to_string()];
        let cfg = EvalConfig::from_args(&args);
        assert_eq!(cfg.seeds, 1);
        assert_eq!(sweep_sizes_from_args(&args), vec![100, 1_000]);
    }

    #[test]
    fn sweep_sizes_default_and_capped() {
        assert_eq!(
            sweep_sizes_from_args(&[]),
            vec![100, 1_000, 10_000, 100_000]
        );
        let args: Vec<String> = ["--max-size", "10000"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(sweep_sizes_from_args(&args), vec![100, 1_000, 10_000]);
    }
}
