//! The paper's published numbers (Tables III–IX), embedded so every
//! pipeline can print measured values next to their references.

/// Table III reference: `(dataset, model, NMI*100, ARI*100)`; absent entries
/// were OOM in the paper.
pub const TABLE3: &[(&str, &str, f64, f64)] = &[
    ("Citeseer", "SBM", 19.7, 1.9),
    ("Citeseer", "DCSBM", 27.1, 1.7),
    ("Citeseer", "BTER", 27.3, 1.8),
    ("Citeseer", "MMSB", 26.7, 4.4),
    ("Citeseer", "VGAE", 63.0, 29.0),
    ("Citeseer", "Graphite", 62.8, 28.2),
    ("Citeseer", "SBMGNN", 62.6, 21.5),
    ("Citeseer", "NetGAN", 57.9, 20.1),
    ("Citeseer", "CPGAN", 72.5, 44.3),
    ("PubMed", "SBM", 4.4, 0.3),
    ("PubMed", "DCSBM", 18.9, 0.3),
    ("PubMed", "BTER", 19.1, 0.3),
    ("PubMed", "VGAE", 42.0, 15.0),
    ("PubMed", "Graphite", 43.0, 15.1),
    ("PubMed", "SBMGNN", 39.3, 14.1),
    ("PubMed", "CPGAN", 45.8, 34.1),
    ("PPI", "SBM", 11.3, 1.2),
    ("PPI", "DCSBM", 18.6, 1.8),
    ("PPI", "BTER", 19.0, 1.7),
    ("PPI", "MMSB", 15.4, 0.8),
    ("PPI", "VGAE", 50.4, 40.0),
    ("PPI", "Graphite", 52.3, 33.4),
    ("PPI", "SBMGNN", 56.9, 31.0),
    ("PPI", "NetGAN", 55.2, 30.2),
    ("PPI", "CPGAN", 57.0, 44.2),
    ("3D Point Cloud", "SBM", 37.0, 11.4),
    ("3D Point Cloud", "DCSBM", 37.3, 11.5),
    ("3D Point Cloud", "BTER", 38.1, 12.1),
    ("3D Point Cloud", "MMSB", 7.1, 1.3),
    ("3D Point Cloud", "VGAE", 57.0, 8.2),
    ("3D Point Cloud", "Graphite", 58.8, 13.2),
    ("3D Point Cloud", "SBMGNN", 59.2, 15.9),
    ("3D Point Cloud", "NetGAN", 67.4, 37.8),
    ("3D Point Cloud", "CPGAN", 70.6, 39.9),
    ("Facebook", "SBM", 14.5, 2.1),
    ("Facebook", "DCSBM", 17.5, 1.9),
    ("Facebook", "BTER", 17.9, 2.1),
    ("Facebook", "CPGAN", 54.7, 28.4),
    ("Google", "SBM", 24.4, 1.3),
    ("Google", "DCSBM", 29.4, 5.7),
    ("Google", "BTER", 30.3, 5.8),
    ("Google", "CPGAN", 38.7, 30.8),
];

/// Table III lookup.
pub fn table3_ref(dataset: &str, model: &str) -> Option<(f64, f64)> {
    TABLE3
        .iter()
        .find(|(d, m, _, _)| *d == dataset && *m == model)
        .map(|&(_, _, nmi, ari)| (nmi, ari))
}

/// Table IV reference: `(dataset, model, [Deg, Clus, CPL, GINI, PWE])`.
pub const TABLE4: &[(&str, &str, [f64; 5])] = &[
    ("Citeseer", "E-R", [1.27e-2, 1.71e-2, 17.5, 8.86e-2, 0.12]),
    ("Citeseer", "B-A", [1.40e-2, 1.25e-2, 19.4, 0.159, 1.43]),
    (
        "Citeseer",
        "Chung-Lu",
        [1.47e-2, 1.73e-2, 18.5, 9.83e-2, 0.15],
    ),
    (
        "Citeseer",
        "SBM",
        [1.36e-2, 4.94e-3, 12.4, 7.87e-2, 5.13e-2],
    ),
    (
        "Citeseer",
        "DCSBM",
        [2.40e-2, 3.44e-3, 13.3, 0.142, 8.14e-2],
    ),
    (
        "Citeseer",
        "BTER",
        [1.21e-2, 2.71e-3, 13.1, 7.73e-2, 3.03e-2],
    ),
    (
        "Citeseer",
        "Kronecker",
        [2.58e-2, 1.91e-2, 18.5, 0.132, 3.12e-2],
    ),
    ("Citeseer", "MMSB", [2.98e-2, 1.84e-2, 17.9, 0.173, 0.186]),
    ("Citeseer", "VGAE", [0.123, 3.78e-2, 18.2, 0.477, 0.126]),
    (
        "Citeseer",
        "GraphRNN-S",
        [1.34e-3, 1.48e-3, 17.3, 7.32e-2, 0.176],
    ),
    ("Citeseer", "CondGen-R", [8.42e-2, 0.14, 20.8, 0.362, 0.295]),
    ("Citeseer", "NetGAN", [1.07e-3, 1.51e-3, 16.5, 0.136, 0.154]),
    (
        "Citeseer",
        "CPGAN",
        [1.25e-3, 2.26e-3, 15.3, 7.23e-2, 9.32e-2],
    ),
    ("3D Point Cloud", "E-R", [0.349, 2.0, 25.6, 0.237, 13.6]),
    ("3D Point Cloud", "B-A", [0.546, 2.0, 27.7, 0.331, 12.2]),
    (
        "3D Point Cloud",
        "Chung-Lu",
        [0.353, 2.0, 25.7, 0.222, 13.7],
    ),
    ("3D Point Cloud", "SBM", [0.317, 1.99, 23.4, 0.209, 13.8]),
    ("3D Point Cloud", "DCSBM", [0.309, 1.98, 23.4, 0.218, 13.8]),
    ("3D Point Cloud", "BTER", [0.301, 2.0, 22.6, 0.207, 13.6]),
    (
        "3D Point Cloud",
        "Kronecker",
        [0.370, 2.0, 26.8, 0.240, 13.8],
    ),
    ("3D Point Cloud", "MMSB", [0.339, 2.0, 25.9, 0.234, 13.7]),
    ("3D Point Cloud", "VGAE", [0.731, 1.96, 30.0, 0.864, 13.8]),
    (
        "3D Point Cloud",
        "CondGen-R",
        [0.604, 1.73, 30.4, 0.658, 14.1],
    ),
    ("3D Point Cloud", "NetGAN", [0.415, 1.72, 26.3, 0.542, 14.6]),
    ("3D Point Cloud", "CPGAN", [0.410, 1.49, 18.1, 0.355, 10.8]),
    ("Google", "E-R", [6.24e-2, 1.36, 13.17, 3.99e-2, 0.221]),
    ("Google", "B-A", [1.94e-2, 1.36, 11.1, 6.16e-2, 0.54]),
    ("Google", "Chung-Lu", [6.48e-2, 1.29, 13.32, 7.31e-2, 0.624]),
    ("Google", "SBM", [0.111, 0.886, 6.93, 0.113, 0.892]),
    ("Google", "DCSBM", [8.48e-2, 0.865, 11.8, 9.17e-2, 0.595]),
    ("Google", "BTER", [1.85e-2, 0.834, 6.67, 3.93e-2, 0.210]),
    ("Google", "Kronecker", [0.102, 1.28, 15.1, 5.19e-2, 1.2]),
    ("Google", "CPGAN", [1.47e-2, 0.672, 6.45, 3.43e-2, 0.118]),
];

/// Table IV lookup.
pub fn table4_ref(dataset: &str, model: &str) -> Option<[f64; 5]> {
    TABLE4
        .iter()
        .find(|(d, m, _)| *d == dataset && *m == model)
        .map(|&(_, _, vals)| vals)
}

/// Table V reference: `(dataset, model,
/// [Deg, Clus, CPL, GINI, PWE, TrainNLL, TestNLL])`.
pub const TABLE5: &[(&str, &str, [f64; 7])] = &[
    ("PPI", "VGAE", [0.257, 1.69, 6.11, 0.342, 0.633, 1.96, 3.61]),
    (
        "PPI",
        "Graphite",
        [0.315, 0.815, 10.9, 0.362, 0.760, 2.09, 4.38],
    ),
    (
        "PPI",
        "SBMGNN",
        [0.356, 1.61, 10.9, 0.397, 0.777, 2.20, 4.00],
    ),
    (
        "PPI",
        "CondGen-R",
        [0.139, 1.16, 12.8, 0.231, 1.09, 2.07, 3.82],
    ),
    (
        "PPI",
        "CPGAN",
        [6.21e-2, 0.243, 11.31, 7.43e-2, 0.437, 1.84, 3.52],
    ),
    (
        "Citeseer",
        "VGAE",
        [9.01e-2, 1.6, 1.45, 0.263, 0.149, 2.26, 3.78],
    ),
    (
        "Citeseer",
        "Graphite",
        [0.306, 1.53, 2.14, 0.311, 1.17, 2.41, 4.15],
    ),
    (
        "Citeseer",
        "SBMGNN",
        [0.217, 1.32, 2.14, 0.358, 0.517, 2.31, 4.26],
    ),
    (
        "Citeseer",
        "CondGen-R",
        [0.166, 1.13, 3.57, 0.196, 1.54, 2.47, 3.97],
    ),
    (
        "Citeseer",
        "CPGAN",
        [8.49e-2, 0.498, 1.35, 1.38e-2, 3.16e-2, 1.78, 3.68],
    ),
];

/// Table V lookup.
pub fn table5_ref(dataset: &str, model: &str) -> Option<[f64; 7]> {
    TABLE5
        .iter()
        .find(|(d, m, _)| *d == dataset && *m == model)
        .map(|&(_, _, v)| v)
}

/// Table VI reference: `(dataset, variant, [NMI*100, ARI*100, Deg, Clus])`.
pub const TABLE6: &[(&str, &str, [f64; 4])] = &[
    ("PubMed", "CPGAN-C", [32.1, 14.5, 2.38e-3, 2.23e-3]),
    ("PubMed", "CPGAN-noV", [31.3, 14.3, 3.03e-3, 5.14e-3]),
    ("PubMed", "CPGAN-noH", [28.8, 13.2, 3.96e-3, 6.52e-3]),
    ("PubMed", "CPGAN", [45.8, 34.1, 2.08e-3, 1.81e-3]),
    ("PPI", "CPGAN-C", [51.2, 39.3, 2.47e-3, 1.35e-2]),
    ("PPI", "CPGAN-noV", [50.5, 39.0, 2.77e-3, 1.76e-2]),
    ("PPI", "CPGAN-noH", [49.7, 38.4, 3.49e-3, 2.30e-2]),
    ("PPI", "CPGAN", [57.0, 44.2, 2.35e-3, 1.12e-2]),
    ("Facebook", "CPGAN-C", [53.3, 26.1, 1.20e-3, 1.43e-2]),
    ("Facebook", "CPGAN-noV", [52.9, 25.3, 1.24e-3, 1.56e-2]),
    ("Facebook", "CPGAN-noH", [50.1, 23.2, 1.96e-3, 1.79e-2]),
    ("Facebook", "CPGAN", [54.7, 28.4, 1.18e-3, 1.35e-2]),
];

/// Table VI lookup.
pub fn table6_ref(dataset: &str, variant: &str) -> Option<[f64; 4]> {
    TABLE6
        .iter()
        .find(|(d, v, _)| *d == dataset && *v == variant)
        .map(|&(_, _, vals)| vals)
}

/// Tables VII/VIII/IX share the sweep sizes `[100, 1k, 10k, 100k]`; `None`
/// marks "-"/OOM entries.
pub type SweepRow = (&'static str, [Option<f64>; 4]);

/// Table VII: seconds per graph generation.
pub const TABLE7: &[SweepRow] = &[
    ("E-R", [Some(4.6e-4), Some(9.0e-3), Some(0.46), Some(10.1)]),
    ("B-A", [Some(1.0e-3), Some(1.2e-2), Some(0.11), Some(1.17)]),
    (
        "Chung-Lu",
        [Some(7.2e-4), Some(2.5e-3), Some(0.18), Some(2.38)],
    ),
    ("SBM", [Some(6.1e-3), Some(0.09), Some(2.58), Some(37.1)]),
    ("DCSBM", [Some(6.2e-3), Some(0.09), Some(2.69), Some(39.3)]),
    (
        "BTER",
        [Some(1.28e-3), Some(1.9e-3), Some(0.16), Some(0.25)],
    ),
    ("MMSB", [Some(6.1e-3), Some(0.09), Some(2.56), None]),
    (
        "Kronecker",
        [Some(8.5e-3), Some(0.08), Some(1.00), Some(9.69)],
    ),
    ("GraphRNN-S", [Some(0.27), Some(4.74), Some(63.6), None]),
    ("VGAE", [Some(4.2e-3), Some(0.04), Some(0.38), None]),
    ("Graphite", [Some(6.1e-3), Some(0.06), Some(0.64), None]),
    ("SBMGNN", [Some(0.01), Some(0.11), Some(1.18), None]),
    ("NetGAN", [Some(8.7e-3), Some(0.09), Some(1.12), None]),
    ("CondGen-R", [Some(8.3e-3), Some(0.15), None, None]),
    ("CPGAN", [Some(9.1e-3), Some(0.08), Some(0.95), Some(86.1)]),
];

/// Table VIII: minutes for the entire training process.
pub const TABLE8: &[SweepRow] = &[
    ("MMSB", [Some(0.11), Some(0.91), Some(40.3), None]),
    (
        "Kronecker",
        [Some(1.39), Some(1.55), Some(3.25), Some(4.73)],
    ),
    ("GraphRNN-S", [Some(1.63), Some(15.4), Some(161.0), None]),
    ("VGAE", [Some(0.06), Some(0.42), Some(9.75), None]),
    ("Graphite", [Some(0.07), Some(0.47), Some(10.6), None]),
    ("SBMGNN", [Some(0.08), Some(0.63), Some(12.4), None]),
    ("NetGAN", [Some(0.27), Some(2.80), Some(31.1), None]),
    ("CondGen-R", [Some(0.18), Some(25.3), None, None]),
    ("CPGAN", [Some(0.35), Some(0.70), Some(6.39), Some(32.9)]),
];

/// Table IX: peak GPU memory (MiB) during training.
pub const TABLE9: &[SweepRow] = &[
    ("MMSB", [Some(1575.0), Some(1709.0), Some(18529.0), None]),
    (
        "GraphRNN-S",
        [Some(1913.0), Some(1959.0), Some(5501.0), None],
    ),
    ("VGAE", [Some(1719.0), Some(1759.0), Some(4799.0), None]),
    ("Graphite", [Some(1719.0), Some(1761.0), Some(4819.0), None]),
    ("SBMGNN", [Some(1719.0), Some(1767.0), Some(5243.0), None]),
    ("NetGAN", [Some(2237.0), Some(2552.0), Some(5008.0), None]),
    ("CondGen-R", [Some(1722.0), Some(1789.0), None, None]),
    (
        "CPGAN",
        [Some(1728.0), Some(1760.0), Some(2467.0), Some(7930.0)],
    ),
];

/// Sweep-table lookup (`table` is one of [`TABLE7`]/[`TABLE8`]/[`TABLE9`]).
pub fn sweep_ref(table: &[SweepRow], model: &str, size_idx: usize) -> Option<f64> {
    table
        .iter()
        .find(|(m, _)| *m == model)
        .and_then(|(_, v)| v.get(size_idx).copied().flatten())
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn lookups_work() {
        assert_eq!(table3_ref("Citeseer", "CPGAN"), Some((72.5, 44.3)));
        assert_eq!(table3_ref("PubMed", "NetGAN"), None); // OOM row
        assert_eq!(table4_ref("Google", "CPGAN").unwrap()[2], 6.45);
        assert_eq!(table5_ref("Citeseer", "CPGAN").unwrap()[6], 3.68);
        assert_eq!(table6_ref("PPI", "CPGAN-noH").unwrap()[0], 49.7);
        assert_eq!(sweep_ref(TABLE7, "CPGAN", 3), Some(86.1));
        assert_eq!(sweep_ref(TABLE9, "VGAE", 3), None);
    }

    #[test]
    fn cpgan_wins_table3_everywhere_in_paper() {
        for ds in [
            "Citeseer",
            "PubMed",
            "PPI",
            "3D Point Cloud",
            "Facebook",
            "Google",
        ] {
            let (cp_nmi, cp_ari) = table3_ref(ds, "CPGAN").unwrap();
            for (d, m, nmi, ari) in TABLE3 {
                if *d == ds && *m != "CPGAN" {
                    assert!(cp_nmi >= *nmi, "{ds}/{m} NMI");
                    assert!(cp_ari >= *ari, "{ds}/{m} ARI");
                }
            }
        }
    }
}
