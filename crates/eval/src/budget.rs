//! The simulated 24 GB GPU memory budget (paper §IV hardware: RTX 3090).
//!
//! The paper's "OOM" rows arise from each model's training working set on a
//! 24 GB device. We reproduce them with per-model working-set estimates
//! calibrated against the paper's own measurements (Table IX, 10k-node
//! column), evaluated at the **paper-scale** node count: a model is labelled
//! OOM exactly when the paper's experiment would not fit, regardless of how
//! far the local stand-in was scaled down. Local runs additionally track
//! *actual* tensor bytes via `cpgan_nn::memory`.

use crate::registry::ModelKind;

/// The paper's device budget in bytes (RTX 3090, 24 GB).
pub const GPU_BUDGET_BYTES: u64 = 24 * 1024 * 1024 * 1024;

/// Estimated training working set (bytes) of `kind` on an `n`-node graph at
/// paper scale. Quadratic coefficients are calibrated to Table IX's 10k
/// column; CPGAN is linear thanks to subgraph sampling (§III-E).
pub fn estimated_training_bytes(kind: ModelKind, n: usize) -> u64 {
    let n = n as u64;
    let sq = 4 * n * n; // one dense f32 n x n matrix
    match kind {
        // Traditional CPU models: linear streaming state.
        ModelKind::Er | ModelKind::Ba | ModelKind::ChungLu | ModelKind::Bter => 100 * n,
        ModelKind::Sbm | ModelKind::Dcsbm | ModelKind::Kronecker => 200 * n,
        // MMSB's variational fit keeps pairwise membership responsibilities:
        // Table IX 10k = 18.5 GiB -> c ~= 48.
        ModelKind::Mmsb => 48 * sq,
        // Dense one-shot VAEs: Table IX 10k ~= 4.8 GiB -> c ~= 12.6.
        ModelKind::Vgae | ModelKind::Graphite | ModelKind::Sbmgnn => 13 * sq,
        // NetGAN: walk batches + n x n assembly; OOM on PubMed (Table III).
        ModelKind::NetGan => 17 * sq,
        // GraphRNN-S: sequence minibatches; Table IX 10k ~= 5.4 GiB.
        ModelKind::GraphRnnS => 14 * sq,
        // CondGen-R cannot reach 10k in Tables VII-IX -> larger constant.
        ModelKind::CondGenR => 80 * sq,
        // CPGAN: sampled subgraphs during training; whole-graph embeddings
        // only at simulation time -> linear, ~8 KB/node (Table IX slope).
        ModelKind::CpGan(_) => 2_000_000_000 + 8_000 * n,
    }
}

/// Whether the paper-scale run of `kind` on `n_paper` nodes exceeds the
/// 24 GB device.
pub fn would_oom(kind: ModelKind, n_paper: usize) -> bool {
    estimated_training_bytes(kind, n_paper) > GPU_BUDGET_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelKind as K;
    use cpgan::Variant;

    #[test]
    fn traditional_models_never_oom_on_paper_datasets() {
        for kind in [
            K::Er,
            K::Ba,
            K::ChungLu,
            K::Sbm,
            K::Dcsbm,
            K::Bter,
            K::Kronecker,
        ] {
            assert!(!would_oom(kind, 875_713), "{kind:?} should survive Google");
        }
    }

    #[test]
    fn table3_oom_pattern_reproduced() {
        // Paper Table III: on PubMed (19717) MMSB and NetGAN are OOM while
        // VGAE/Graphite/SBMGNN still run; on Facebook (50515) and Google
        // (875713) every learning-based baseline is OOM but CPGAN runs.
        assert!(would_oom(K::Mmsb, 19_717));
        assert!(would_oom(K::NetGan, 19_717));
        assert!(!would_oom(K::Vgae, 19_717));
        assert!(!would_oom(K::Graphite, 19_717));
        assert!(!would_oom(K::Sbmgnn, 19_717));
        for kind in [K::Vgae, K::Graphite, K::Sbmgnn, K::NetGan, K::Mmsb] {
            assert!(would_oom(kind, 50_515), "{kind:?} must OOM on Facebook");
            assert!(would_oom(kind, 875_713), "{kind:?} must OOM on Google");
        }
        assert!(!would_oom(K::CpGan(Variant::Full), 875_713));
    }

    #[test]
    fn sweep_oom_pattern_reproduced() {
        // Tables VII-IX: at 100k only CPGAN (among learnable models) and the
        // traditional generators survive; CondGen-R already fails at 10k.
        assert!(would_oom(K::CondGenR, 10_000));
        assert!(!would_oom(K::GraphRnnS, 10_000));
        assert!(!would_oom(K::Vgae, 10_000));
        for kind in [
            K::Vgae,
            K::Graphite,
            K::Sbmgnn,
            K::NetGan,
            K::GraphRnnS,
            K::Mmsb,
        ] {
            assert!(would_oom(kind, 100_000), "{kind:?} must OOM at 100k");
        }
        assert!(!would_oom(K::CpGan(Variant::Full), 100_000));
    }

    #[test]
    fn cpgan_fails_at_millions_scale() {
        // Paper §IV-F: no learning-based method, CPGAN included, handles
        // millions of nodes under 24 GB.
        assert!(would_oom(K::CpGan(Variant::Full), 3_000_000));
    }
}
