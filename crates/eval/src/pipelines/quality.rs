//! Table IV: generative distribution distance (Deg/Clus/CPL/GINI/PWE).

use crate::pipelines::{quality_diff, QualityDiff};
use crate::registry::{fit_model, ModelKind};
use crate::report::{mean, Table};
use crate::{budget, paper, EvalConfig};
use cpgan_data::datasets;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// BFS-source cap for CPL estimates (deterministic evenly spaced sample).
const CPL_SOURCES: usize = 64;

/// Table IV's dataset columns.
pub const TABLE4_DATASETS: [&str; 3] = ["Citeseer", "3D Point Cloud", "Google"];

/// One measured cell.
#[derive(Debug, Clone)]
pub enum Cell {
    /// Mean quality differences over seeds.
    Measured(QualityDiff),
    /// Exceeds the paper-scale budget.
    Oom,
    /// Locally skipped for CPU time.
    SkippedCpu,
}

/// Evaluates one (model, dataset) cell.
pub fn evaluate_cell(kind: ModelKind, spec: &datasets::DatasetSpec, cfg: &EvalConfig) -> Cell {
    let _span = cpgan_obs::span("eval.quality.cell");
    cpgan_obs::counter_add("eval.quality.cells", 1);
    if budget::would_oom(kind, spec.n) {
        return Cell::Oom;
    }
    let ds = datasets::synthesize(spec, cfg.scale, cfg.seed);
    if kind.is_dense() && ds.graph.n() > cfg.dense_node_cap {
        return Cell::SkippedCpu;
    }
    // GraphRNN-S is sequential: cap it at 4x the dense cap locally.
    if kind == ModelKind::GraphRnnS && ds.graph.n() > 4 * cfg.dense_node_cap {
        return Cell::SkippedCpu;
    }
    // Each seed's fit+generate+measure run is independent and owns its RNG,
    // so the repetitions fan out across the persistent pool; results come
    // back in seed order, so the mean below is thread-count independent.
    let seeds: Vec<u64> = (0..cfg.seeds)
        .map(|s| cfg.seed.wrapping_add(s as u64 * 104_729))
        .collect();
    let graph = std::sync::Arc::new(ds.graph);
    let cfg_owned = cfg.clone();
    let acc: Vec<QualityDiff> =
        cpgan_parallel::Pool::global().par_map_owned(seeds, move |_, seed| {
            // Pool jobs run under a root span scope (see cpgan-parallel), so
            // this path is `eval.quality.seed/...` at every thread count.
            let _span = cpgan_obs::span("eval.quality.seed");
            let model = fit_model(kind, &graph, &cfg_owned, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x4444);
            let generated = model.generate(&mut rng);
            quality_diff(&graph, &generated, CPL_SOURCES)
        });
    let collect = |f: fn(&QualityDiff) -> f64| mean(&acc.iter().map(f).collect::<Vec<_>>());
    Cell::Measured(QualityDiff {
        deg: collect(|q| q.deg),
        clus: collect(|q| q.clus),
        cpl: collect(|q| q.cpl),
        gini: collect(|q| q.gini),
        pwe: collect(|q| q.pwe),
    })
}

/// Runs the full Table IV experiment.
pub fn run(cfg: &EvalConfig, dataset_filter: &[&str]) -> Table {
    let datasets_used: Vec<&str> = TABLE4_DATASETS
        .iter()
        .copied()
        .filter(|d| dataset_filter.is_empty() || dataset_filter.contains(d))
        .collect();
    let mut table = Table::new(
        format!(
            "Table IV: generation quality, |difference| vs observed (scale 1/{}, lower better)",
            cfg.scale
        ),
        &["Model"],
    );
    for d in &datasets_used {
        for metric in ["Deg.", "Clus.", "CPL", "GINI", "PWE"] {
            table.headers.push(format!("{d} {metric}"));
        }
    }
    for kind in ModelKind::table4() {
        let mut row = vec![kind.name().to_string()];
        for d in &datasets_used {
            let Some(spec) = datasets::spec_by_name(d) else {
                continue;
            };
            let cell = evaluate_cell(kind, spec, cfg);
            let paper_row = paper::table4_ref(d, kind.name());
            match cell {
                Cell::Oom | Cell::SkippedCpu => {
                    let label = if matches!(cell, Cell::Oom) {
                        "OOM"
                    } else {
                        "skip"
                    };
                    for _ in 0..5 {
                        row.push(label.to_string());
                    }
                }
                Cell::Measured(q) => {
                    let vals = [q.deg, q.clus, q.cpl, q.gini, q.pwe];
                    for (i, v) in vals.iter().enumerate() {
                        match paper_row {
                            Some(p) => row.push(format!("{v:.3} ({:.3})", p[i])),
                            None => row.push(format!("{v:.3}")),
                        }
                    }
                }
            }
        }
        table.push_row(row);
    }
    table.push_note("parenthesized values are the paper's Table IV entries");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traditional_model_measured_on_citeseer() {
        let cfg = EvalConfig {
            scale: 64,
            seeds: 1,
            ..EvalConfig::fast()
        };
        let spec = datasets::spec_by_name("Citeseer").unwrap();
        match evaluate_cell(ModelKind::Bter, spec, &cfg) {
            Cell::Measured(q) => {
                assert!(q.deg.is_finite() && q.deg >= 0.0);
                assert!(q.cpl.is_finite());
            }
            other => panic!("expected measurement, got {other:?}"),
        }
    }

    #[test]
    fn google_dense_models_oom() {
        let cfg = EvalConfig::fast();
        let spec = datasets::spec_by_name("Google").unwrap();
        assert!(matches!(
            evaluate_cell(ModelKind::Vgae, spec, &cfg),
            Cell::Oom
        ));
        assert!(matches!(
            evaluate_cell(ModelKind::GraphRnnS, spec, &cfg),
            Cell::Oom
        ));
    }
}
