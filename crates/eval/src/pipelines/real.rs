//! Ingested-graph evaluation: the Table III community-preservation
//! scores and the Table IV–VI quality differences measured on an
//! *ingested* registry dataset instead of a load-time stand-in.
//!
//! The ingested graph is real only when the entry's provenance is —
//! the vendored `citeseer-fixture`/`cora-fixture` entries are synthetic
//! surrogates generated in-repo, and the rendered table carries the
//! entry title (which names the surrogate status) so results cannot be
//! read as real-graph numbers. Ingested graphs are evaluated at full
//! scale (there is no synthesizer to shrink them), so the per-model
//! guards mirror the synthetic pipelines: the paper-scale memory budget
//! decides OOM rows, and the local dense node cap skips models that
//! materialize `n x n` state on CPU.

use crate::pipelines::{community_scores, quality_diff, QualityDiff};
use crate::registry::{fit_model, ModelKind};
use crate::report::{mean, mean_std, Table};
use crate::{budget, paper, EvalConfig};
use cpgan_datasets::{DatasetError, LoadOptions, VerifyReport, DEFAULT_CPL_SOURCES};
use cpgan_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// BFS-source cap for CPL estimates (deterministic evenly spaced sample).
const CPL_SOURCES: usize = 64;

/// One measured (model, real graph) cell.
#[derive(Debug, Clone)]
pub enum Cell {
    /// Per-seed NMI/ARI (x100) and quality differences.
    Measured {
        /// NMI per seed, in percent.
        nmis: Vec<f64>,
        /// ARI per seed, in percent.
        aris: Vec<f64>,
        /// Quality differences per seed.
        diffs: Vec<QualityDiff>,
    },
    /// Exceeds the paper-scale 24 GB budget at this graph's size.
    Oom,
    /// Within budget but too large for the local CPU dense-node cap.
    SkippedCpu,
}

/// Evaluates one model on the observed real graph.
pub fn evaluate_cell(kind: ModelKind, observed: &Graph, cfg: &EvalConfig) -> Cell {
    let _span = cpgan_obs::span("eval.real.cell");
    cpgan_obs::counter_add("eval.real.cells", 1);
    if budget::would_oom(kind, observed.n()) {
        return Cell::Oom;
    }
    if kind.is_dense() && observed.n() > cfg.dense_node_cap {
        return Cell::SkippedCpu;
    }
    // GraphRNN-S is sequential: cap it at 4x the dense cap locally (same
    // guard as the Table IV pipeline).
    if kind == ModelKind::GraphRnnS && observed.n() > 4 * cfg.dense_node_cap {
        return Cell::SkippedCpu;
    }
    let mut nmis = Vec::with_capacity(cfg.seeds);
    let mut aris = Vec::with_capacity(cfg.seeds);
    let mut diffs = Vec::with_capacity(cfg.seeds);
    for s in 0..cfg.seeds {
        let seed = cfg.seed.wrapping_add(s as u64 * 7919);
        let model = fit_model(kind, observed, cfg, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9999);
        let generated = model.generate(&mut rng);
        let (nmi, ari) = community_scores(observed, &generated, cfg.seed);
        nmis.push(100.0 * nmi);
        aris.push(100.0 * ari);
        diffs.push(quality_diff(observed, &generated, CPL_SOURCES));
    }
    Cell::Measured { nmis, aris, diffs }
}

/// Runs every generator over an already-loaded graph. `title` is the
/// registry display name; paper Table III/IV reference columns appear
/// only when it matches a paper dataset name exactly (surrogate titles
/// deliberately do not, so surrogate rows carry no paper comparisons).
pub fn run_on_graph(cfg: &EvalConfig, title: &str, observed: &Graph) -> Table {
    let mut table = Table::new(
        format!(
            "Ingested-graph evaluation: {title} (n={}, m={}, full scale, {} seed(s))",
            observed.n(),
            observed.m(),
            cfg.seeds
        ),
        &["Model", "NMI", "ARI", "Deg.", "Clus.", "CPL", "GINI", "PWE"],
    );
    for kind in ModelKind::sweep() {
        let mut row = vec![kind.name().to_string()];
        match evaluate_cell(kind, observed, cfg) {
            cell @ (Cell::Oom | Cell::SkippedCpu) => {
                let label = if matches!(cell, Cell::Oom) {
                    "OOM"
                } else {
                    "skip"
                };
                for _ in 0..7 {
                    row.push(label.to_string());
                }
            }
            Cell::Measured { nmis, aris, diffs } => {
                let t3 = paper::table3_ref(title, kind.name());
                let fmt = |vals: &[f64], p: Option<f64>| match p {
                    Some(p) => format!("{} (paper {p:.1})", mean_std(vals)),
                    None => mean_std(vals),
                };
                row.push(fmt(&nmis, t3.map(|r| r.0)));
                row.push(fmt(&aris, t3.map(|r| r.1)));
                let t4 = paper::table4_ref(title, kind.name());
                let cols: [fn(&QualityDiff) -> f64; 5] =
                    [|q| q.deg, |q| q.clus, |q| q.cpl, |q| q.gini, |q| q.pwe];
                for (i, f) in cols.iter().enumerate() {
                    let v = mean(&diffs.iter().map(f).collect::<Vec<_>>());
                    match t4 {
                        Some(p) => row.push(format!("{v:.3} (paper {:.3})", p[i])),
                        None => row.push(format!("{v:.3}")),
                    }
                }
            }
        }
        table.push_row(row);
    }
    table.push_note(
        "NMI/ARI x100 vs Louvain on the observed graph; Deg./Clus. are MMDs, \
         CPL/GINI/PWE absolute differences (lower better).",
    );
    table.push_note(
        "OOM = paper-scale 24 GB budget exceeded; skip = local CPU dense-node \
         cap (the graph is evaluated at full scale).",
    );
    table
}

/// Resolves `name` in the dataset registry, loads (fetch + checksum +
/// ingest, or synthesize), verifies published stats, and evaluates every
/// generator on the loaded graph.
pub fn run(
    cfg: &EvalConfig,
    name: &str,
    opts: &LoadOptions,
) -> Result<(VerifyReport, Table), DatasetError> {
    let _span = cpgan_obs::span("eval.real.run");
    let entry = cpgan_datasets::resolve(name)?;
    let ds = cpgan_datasets::load(entry, opts)?;
    let report = cpgan_datasets::verify(entry, &ds.graph, DEFAULT_CPL_SOURCES);
    let table = run_on_graph(cfg, &ds.title, &ds.graph);
    Ok((report, table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan_graph::Graph;

    fn small_graph() -> Graph {
        let mut edges = Vec::new();
        for c in 0..3u32 {
            let base = c * 10;
            for a in 0..10u32 {
                for b in (a + 1)..10 {
                    if (a + b) % 2 == 0 {
                        edges.push((base + a, base + b));
                    }
                }
            }
            edges.push((base, (base + 10) % 30));
        }
        Graph::from_edges(30, edges).unwrap()
    }

    #[test]
    fn measures_every_model_on_a_tiny_graph() {
        let g = small_graph();
        let cfg = EvalConfig {
            seeds: 1,
            deep_epochs: 5,
            cpgan_epochs: 3,
            ..EvalConfig::fast()
        };
        let table = run_on_graph(&cfg, "Tiny", &g);
        assert_eq!(table.rows.len(), ModelKind::sweep().len());
        for row in &table.rows {
            assert_eq!(row.len(), 8, "{row:?}");
            assert_ne!(row[1], "OOM", "nothing OOMs at n=30: {row:?}");
        }
    }

    #[test]
    fn dense_models_skip_above_the_cap() {
        let g = small_graph();
        let cfg = EvalConfig {
            dense_node_cap: 8,
            ..EvalConfig::fast()
        };
        assert!(matches!(
            evaluate_cell(ModelKind::Vgae, &g, &cfg),
            Cell::SkippedCpu
        ));
    }

    #[test]
    fn synthetic_registry_entries_evaluate_through_run() {
        let cfg = EvalConfig {
            scale: 256,
            seeds: 1,
            deep_epochs: 3,
            cpgan_epochs: 3,
            ..EvalConfig::fast()
        };
        let opts = LoadOptions {
            offline: true,
            scale: 256,
            ..LoadOptions::default()
        };
        let (report, table) = run(&cfg, "ppi-synthetic", &opts).unwrap();
        // Scaled-down stand-ins do not match full-scale published stats;
        // the report still carries every check.
        assert!(!report.checks.is_empty());
        assert_eq!(table.rows.len(), ModelKind::sweep().len());
    }
}
