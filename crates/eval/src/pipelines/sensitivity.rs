//! Figure 5: parameter sensitivity of CPGAN.
//!
//! Panels (a)/(c) sweep the spectral-embedding input dimension; panels
//! (b)/(d) sweep the number of hierarchy levels. Each point is a generated
//! graph's statistic; "closer to the real statistic is better". The paper's
//! conclusion: two hierarchy levels is best, input dimension barely matters
//! (it fixes dimension 4, levels 2 for all other experiments).

use crate::registry::cpgan_config;
use crate::report::Table;
use crate::EvalConfig;
use cpgan::{CpGan, Variant};
use cpgan_data::datasets;
use cpgan_graph::{stats, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Swept spectral dimensions (panel a/c).
pub const DIMS: [usize; 4] = [2, 4, 8, 16];
/// Swept hierarchy levels (panel b/d).
pub const LEVELS: [usize; 3] = [1, 2, 3];

/// One sweep point: generated statistics plus the observed references.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// The swept value (dimension or level count).
    pub x: usize,
    /// Generated graph's Gini.
    pub gini: f64,
    /// Generated graph's CPL.
    pub cpl: f64,
    /// Louvain NMI vs observed.
    pub nmi: f64,
}

fn eval_point(g: &Graph, cfg: &EvalConfig, dim: usize, levels: usize, x: usize) -> SweepPoint {
    let mut mc = cpgan_config(Variant::Full, g, cfg, cfg.seed);
    mc.spectral_dim = dim;
    mc.levels = levels;
    let mut model = CpGan::new(mc);
    model.fit(g);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5e5);
    let out = model.generate(g.n(), g.m(), &mut rng);
    let (nmi, _) = crate::pipelines::community_scores(g, &out, cfg.seed);
    SweepPoint {
        x,
        gini: stats::gini::gini_coefficient(&out.degrees()),
        cpl: stats::path::characteristic_path_length(&out, 64),
        nmi,
    }
}

/// Runs the Figure 5 sweeps on one dataset stand-in (default: Citeseer).
/// Unknown dataset names yield an empty table rather than a panic.
pub fn run(cfg: &EvalConfig, dataset: &str) -> Table {
    let Some(spec) = datasets::spec_by_name(dataset) else {
        return Table::new(
            format!("Figure 5: unknown dataset `{dataset}`"),
            &["Sweep", "x", "GINI (real)", "CPL (real)", "NMI"],
        );
    };
    let ds = datasets::synthesize(spec, cfg.scale, cfg.seed);
    let real_gini = stats::gini::gini_coefficient(&ds.graph.degrees());
    let real_cpl = stats::path::characteristic_path_length(&ds.graph, 64);

    let mut table = Table::new(
        format!(
            "Figure 5: parameter sensitivity on {dataset} (scale 1/{})",
            cfg.scale
        ),
        &["Sweep", "x", "GINI (real)", "CPL (real)", "NMI"],
    );
    for &dim in &DIMS {
        let p = eval_point(&ds.graph, cfg, dim, 2, dim);
        table.push_row(vec![
            "spectral dim".into(),
            p.x.to_string(),
            format!("{:.3} ({real_gini:.3})", p.gini),
            format!("{:.2} ({real_cpl:.2})", p.cpl),
            format!("{:.3}", p.nmi),
        ]);
    }
    for &lv in &LEVELS {
        let p = eval_point(&ds.graph, cfg, 4, lv, lv);
        table.push_row(vec![
            "levels".into(),
            p.x.to_string(),
            format!("{:.3} ({real_gini:.3})", p.gini),
            format!("{:.2} ({real_cpl:.2})", p.cpl),
            format!("{:.3}", p.nmi),
        ]);
    }
    table.push_note("paper conclusion: levels = 2 is best; input dimension has little effect");
    table
}

/// Returns the level sweep as data points (used by tests and the PairNorm
/// ablation).
pub fn level_sweep(cfg: &EvalConfig, dataset: &str) -> Vec<SweepPoint> {
    let Some(spec) = datasets::spec_by_name(dataset) else {
        return Vec::new();
    };
    let ds = datasets::synthesize(spec, cfg.scale, cfg.seed);
    LEVELS
        .iter()
        .map(|&lv| eval_point(&ds.graph, cfg, 4, lv, lv))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_sweep_produces_finite_points() {
        let cfg = EvalConfig {
            scale: 64,
            cpgan_epochs: 6,
            ..EvalConfig::fast()
        };
        let points = level_sweep(&cfg, "PPI");
        assert_eq!(points.len(), LEVELS.len());
        for p in points {
            assert!(p.gini.is_finite());
            assert!(p.cpl.is_finite());
            assert!((0.0..=1.0).contains(&p.nmi));
        }
    }
}
