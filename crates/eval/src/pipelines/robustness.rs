//! Figure 6: model robustness across hyper-parameters.
//!
//! Left panel: spread of generation quality (degree MMD) across a
//! hidden-dimension x learning-rate grid for CPGAN vs the architecturally
//! comparable baselines — the paper's claim is that CPGAN's spread is the
//! smallest. Right panel: CPGAN across learning-rate / decay settings.

use crate::registry::{cpgan_config, deep_config, ModelKind};
use crate::report::Table;
use crate::EvalConfig;
use cpgan::{CpGan, Variant};
use cpgan_data::datasets;
use cpgan_deep::{condgen::CondGenR, graphite::Graphite, vgae::Vgae};
use cpgan_generators::GraphGenerator;
use cpgan_graph::{mmd, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hidden sizes of the left-panel grid.
pub const HIDDEN_GRID: [usize; 3] = [8, 16, 32];
/// Learning rates of the left-panel grid.
pub const LR_GRID: [f32; 2] = [1e-3, 5e-3];

/// Robustness summary of one model: degree-MMD values over the grid.
#[derive(Debug, Clone)]
pub struct Spread {
    /// Model label.
    pub model: &'static str,
    /// One value per grid point.
    pub values: Vec<f64>,
}

impl Spread {
    /// Max - min over the grid (the paper's robustness criterion).
    pub fn range(&self) -> f64 {
        let max = self.values.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.values.iter().cloned().fold(f64::MAX, f64::min);
        (max - min).max(0.0)
    }

    /// Mean over the grid.
    pub fn mean(&self) -> f64 {
        crate::report::mean(&self.values)
    }
}

fn degree_mmd_of(g: &Graph, generated: &Graph) -> f64 {
    mmd::degree_mmd(g, generated)
}

/// Evaluates one model over the hidden x lr grid.
/// # Panics
///
/// Panics when called with a model outside the robustness panel — a
/// driver-contract violation, not a data error. Tolerated in
/// `lint-baseline.toml`.
#[allow(clippy::panic)]
pub fn grid_spread(kind: ModelKind, g: &Graph, cfg: &EvalConfig) -> Spread {
    let mut values = Vec::new();
    for &hidden in &HIDDEN_GRID {
        for &lr in &LR_GRID {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (hidden as u64) ^ lr.to_bits() as u64);
            let generated: Graph = match kind {
                ModelKind::CpGan(v) => {
                    let mut mc = cpgan_config(v, g, cfg, cfg.seed);
                    mc.hidden_dim = hidden;
                    mc.latent_dim = (hidden / 2).max(4);
                    mc.learning_rate = lr;
                    let mut model = CpGan::new(mc);
                    model.fit(g);
                    model.generate(g.n(), g.m(), &mut rng)
                }
                ModelKind::Vgae => {
                    let mut dc = deep_config(cfg, cfg.seed);
                    dc.hidden_dim = hidden;
                    dc.latent_dim = (hidden / 2).max(4);
                    dc.learning_rate = lr;
                    Vgae::fit(g, &dc).generate(&mut rng)
                }
                ModelKind::Graphite => {
                    let mut dc = deep_config(cfg, cfg.seed);
                    dc.hidden_dim = hidden;
                    dc.latent_dim = (hidden / 2).max(4);
                    dc.learning_rate = lr;
                    Graphite::fit(g, &dc).generate(&mut rng)
                }
                ModelKind::CondGenR => {
                    let mut dc = deep_config(cfg, cfg.seed);
                    dc.hidden_dim = hidden;
                    dc.latent_dim = (hidden / 2).max(4);
                    dc.learning_rate = lr;
                    CondGenR::fit(g, &dc).generate(&mut rng)
                }
                other => panic!("{other:?} not part of the robustness panel"),
            };
            values.push(degree_mmd_of(g, &generated));
        }
    }
    Spread {
        model: kind.name(),
        values,
    }
}

/// CPGAN's right-panel sweep: learning rate x decay.
pub fn cpgan_training_grid(g: &Graph, cfg: &EvalConfig) -> Vec<(f32, f32, f64)> {
    let mut out = Vec::new();
    for &lr in &[1e-4f32, 1e-3, 5e-3] {
        for &decay in &[0.1f32, 0.3, 1.0] {
            let mut mc = cpgan_config(Variant::Full, g, cfg, cfg.seed);
            mc.learning_rate = lr;
            mc.lr_decay = decay;
            // Make the decay schedule actually engage within the configured
            // epoch budget (the paper decays every 400 of its epochs).
            mc.lr_decay_every = (cfg.cpgan_epochs / 2).max(1);
            let mut model = CpGan::new(mc);
            model.fit(g);
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ lr.to_bits() as u64);
            let generated = model.generate(g.n(), g.m(), &mut rng);
            out.push((lr, decay, degree_mmd_of(g, &generated)));
        }
    }
    out
}

/// Runs the full Figure 6 experiment. Unknown dataset names yield an
/// empty table rather than a panic.
pub fn run(cfg: &EvalConfig, dataset: &str) -> Table {
    let Some(spec) = datasets::spec_by_name(dataset) else {
        return Table::new(
            format!("Figure 6: unknown dataset `{dataset}`"),
            &["Model", "mean", "min", "max", "range"],
        );
    };
    let ds = datasets::synthesize(spec, cfg.scale, cfg.seed);
    let mut table = Table::new(
        format!(
            "Figure 6: hyper-parameter robustness on {dataset} (degree MMD; lower/tighter better)"
        ),
        &["Model", "mean", "min", "max", "range"],
    );
    for kind in [
        ModelKind::Vgae,
        ModelKind::Graphite,
        ModelKind::CondGenR,
        ModelKind::CpGan(Variant::Full),
    ] {
        let s = grid_spread(kind, &ds.graph, cfg);
        let min = s.values.iter().cloned().fold(f64::MAX, f64::min);
        let max = s.values.iter().cloned().fold(f64::MIN, f64::max);
        table.push_row(vec![
            s.model.to_string(),
            format!("{:.4}", s.mean()),
            format!("{min:.4}"),
            format!("{max:.4}"),
            format!("{:.4}", s.range()),
        ]);
    }
    table.push_row(vec!["--- right panel: CPGAN lr x decay ---".into()]);
    for (lr, decay, v) in cpgan_training_grid(&ds.graph, cfg) {
        table.push_row(vec![
            format!("CPGAN lr={lr} decay={decay}"),
            format!("{v:.4}"),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    table.push_note(
        "paper conclusion: CPGAN's spread (range) is the smallest among compared models",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_statistics() {
        let s = Spread {
            model: "X",
            values: vec![0.1, 0.4, 0.2],
        };
        assert!((s.range() - 0.3).abs() < 1e-12);
        assert!((s.mean() - 0.2333).abs() < 1e-3);
    }
}
