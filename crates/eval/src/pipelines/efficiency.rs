//! Tables VII–IX: generation time, training time, and peak memory across
//! graph sizes 0.1k/1k/10k/100k.
//!
//! Local measurements are CPU wall-clock; OOM rows come from the paper-scale
//! 24 GB budget ([`crate::budget`]). Deep-model training time is measured
//! over a few epochs and extrapolated linearly to the configured epoch
//! budget (epoch cost is constant per model/size), which the tables mark
//! explicitly.

use crate::registry::{fit_model, ModelKind};
use crate::report::Table;
use crate::{budget, paper, EvalConfig};
use cpgan_data::sweep;
use cpgan_nn::memory;
use cpgan_obs::Stopwatch;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One model's measurements at one size.
#[derive(Debug, Clone, Copy)]
pub struct SweepMeasurement {
    /// Seconds per generated graph (Table VII).
    pub generation_secs: f64,
    /// Minutes for the full training process (Table VIII; extrapolated for
    /// deep models).
    pub training_mins: f64,
    /// Peak tensor memory during training, MiB (Table IX).
    pub peak_mib: f64,
}

/// Result of one sweep cell.
#[derive(Debug, Clone, Copy)]
pub enum Cell {
    /// Measured locally.
    Measured(SweepMeasurement),
    /// Paper-scale OOM.
    Oom,
    /// Skipped for local CPU time.
    SkippedCpu,
}

/// Epochs actually run when measuring deep-model training throughput.
const MEASURE_EPOCHS: usize = 2;

/// Whether a model is too slow to run locally at `n` (CPU guard distinct
/// from the memory budget).
fn locally_infeasible(kind: ModelKind, n: usize, cfg: &EvalConfig) -> bool {
    match kind {
        // Dense-matrix models: n^2 tensors; cap at ~10k locally.
        k if k.is_dense() => n > 10_000.max(cfg.dense_node_cap),
        // GraphRNN-S: sequential tape; 10k steps is fine, beyond is not.
        ModelKind::GraphRnnS => n > 10_000,
        _ => false,
    }
}

/// Measures one (model, size) sweep cell.
pub fn evaluate_cell(kind: ModelKind, n: usize, cfg: &EvalConfig) -> Cell {
    let _span = cpgan_obs::span("eval.efficiency.cell");
    cpgan_obs::counter_add("eval.efficiency.cells", 1);
    if budget::would_oom(kind, n) {
        return Cell::Oom;
    }
    if locally_infeasible(kind, n, cfg) {
        return Cell::SkippedCpu;
    }
    let pg = sweep::sweep_graph(n, cfg.seed);
    // Training: run a reduced-epoch fit for deep models and extrapolate.
    let (measure_cfg, extrapolation) = if kind.is_learning_based() {
        let reduced = EvalConfig {
            deep_epochs: MEASURE_EPOCHS,
            cpgan_epochs: MEASURE_EPOCHS.max(cfg.cpgan_epochs.min(5)),
            ..cfg.clone()
        };
        let target = match kind {
            ModelKind::CpGan(_) => cfg.cpgan_epochs as f64 / reduced.cpgan_epochs as f64,
            _ => cfg.deep_epochs as f64 / reduced.deep_epochs as f64,
        };
        (reduced, target)
    } else {
        (cfg.clone(), 1.0)
    };
    memory::reset_peak();
    let live_before = memory::live_bytes();
    let t0 = Stopwatch::start();
    let model = fit_model(kind, &pg.graph, &measure_cfg, cfg.seed);
    let train_secs = t0.elapsed_secs() * extrapolation;
    let peak = memory::peak_bytes().saturating_sub(live_before);

    // Generation: one timed sample.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1234);
    let t1 = Stopwatch::start();
    let out = model.generate(&mut rng);
    let generation_secs = t1.elapsed_secs();
    debug_assert_eq!(out.n(), n);

    Cell::Measured(SweepMeasurement {
        generation_secs,
        training_mins: train_secs / 60.0,
        peak_mib: peak as f64 / (1024.0 * 1024.0),
    })
}

/// Runs the sweep once and renders all three tables.
pub struct SweepTables {
    /// Table VII.
    pub generation: Table,
    /// Table VIII.
    pub training: Table,
    /// Table IX.
    pub memory: Table,
}

/// Runs Tables VII–IX over `sizes` (defaults to the paper's four sizes).
pub fn run(cfg: &EvalConfig, sizes: &[usize]) -> SweepTables {
    let headers: Vec<String> = std::iter::once("Model".to_string())
        .chain(sizes.iter().map(|n| format!("{}k", *n as f64 / 1000.0)))
        .collect();
    let mk_table = |title: &str| {
        let mut t = Table::new(title, &[]);
        t.headers = headers.clone();
        t
    };
    let mut generation = mk_table("Table VII: seconds per graph generation");
    let mut training = mk_table("Table VIII: training time (minutes; deep models extrapolated)");
    let mut mem_table = mk_table("Table IX: peak tensor memory during training (MiB)");

    // Map sweep sizes onto paper column indices for the references.
    let size_idx = |n: usize| -> Option<usize> { sweep::SWEEP_SIZES.iter().position(|&s| s == n) };

    for kind in ModelKind::sweep() {
        let mut g_row = vec![kind.name().to_string()];
        let mut t_row = vec![kind.name().to_string()];
        let mut m_row = vec![kind.name().to_string()];
        for &n in sizes {
            let cell = evaluate_cell(kind, n, cfg);
            let idx = size_idx(n);
            let fmt = |measured: f64, table: &[paper::SweepRow]| -> String {
                let p = idx.and_then(|i| paper::sweep_ref(table, kind.name(), i));
                match p {
                    Some(p) => format!("{measured:.3} ({p})"),
                    None => format!("{measured:.3}"),
                }
            };
            match cell {
                Cell::Oom => {
                    for row in [&mut g_row, &mut t_row, &mut m_row] {
                        row.push("OOM".into());
                    }
                }
                Cell::SkippedCpu => {
                    for row in [&mut g_row, &mut t_row, &mut m_row] {
                        row.push("skip".into());
                    }
                }
                Cell::Measured(m) => {
                    g_row.push(fmt(m.generation_secs, paper::TABLE7));
                    t_row.push(fmt(m.training_mins, paper::TABLE8));
                    m_row.push(fmt(m.peak_mib, paper::TABLE9));
                }
            }
        }
        generation.push_row(g_row);
        training.push_row(t_row);
        mem_table.push_row(m_row);
    }
    for t in [&mut generation, &mut training, &mut mem_table] {
        t.push_note("parenthesized values are the paper's GPU measurements; OOM = paper-scale 24 GB budget exceeded");
    }
    SweepTables {
        generation,
        training,
        memory: mem_table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan::Variant;

    #[test]
    fn traditional_cell_measured_quickly() {
        let cfg = EvalConfig::fast();
        match evaluate_cell(ModelKind::Er, 100, &cfg) {
            Cell::Measured(m) => {
                assert!(m.generation_secs >= 0.0);
                assert!(m.training_mins >= 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oom_pattern_at_100k() {
        let cfg = EvalConfig::fast();
        assert!(matches!(
            evaluate_cell(ModelKind::Vgae, 100_000, &cfg),
            Cell::Oom
        ));
        assert!(matches!(
            evaluate_cell(ModelKind::CondGenR, 10_000, &cfg),
            Cell::Oom
        ));
    }

    #[test]
    fn cpgan_cell_records_memory() {
        let cfg = EvalConfig {
            cpgan_epochs: 3,
            ..EvalConfig::fast()
        };
        match evaluate_cell(ModelKind::CpGan(Variant::Full), 100, &cfg) {
            Cell::Measured(m) => assert!(m.peak_mib > 0.0),
            other => panic!("unexpected {other:?}"),
        }
    }
}
