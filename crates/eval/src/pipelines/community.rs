//! Table III: community-structure preservation (NMI / ARI).

use crate::pipelines::community_scores;
use crate::registry::{fit_model, ModelKind};
use crate::report::{mean_std, Table};
use crate::{budget, paper, EvalConfig};
use cpgan_data::datasets;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One measured cell of Table III.
#[derive(Debug, Clone)]
pub enum Cell {
    /// Mean ± std over seeds, `(nmi_values, ari_values)` in percent.
    Measured(Vec<f64>, Vec<f64>),
    /// Exceeds the paper-scale 24 GB budget.
    Oom,
    /// Within budget at paper scale but too large for the local CPU cap.
    SkippedCpu,
}

/// Runs the Table III experiment for the given dataset names (empty = all
/// six).
pub fn run(cfg: &EvalConfig, dataset_filter: &[&str]) -> Table {
    let mut table = Table::new(
        format!(
            "Table III: community preservation, NMI/ARI x100 (scale 1/{}, {} seed(s))",
            cfg.scale, cfg.seeds
        ),
        &["Model"],
    );
    let specs: Vec<_> = datasets::PAPER_DATASETS
        .iter()
        .filter(|s| dataset_filter.is_empty() || dataset_filter.contains(&s.name))
        .collect();
    for spec in &specs {
        table.headers.push(format!("{} NMI", spec.name));
        table.headers.push(format!("{} ARI", spec.name));
    }

    let models = ModelKind::table3();
    for kind in &models {
        let mut row = vec![kind.name().to_string()];
        for spec in &specs {
            let cell = evaluate_cell(*kind, spec, cfg);
            let paper_ref = paper::table3_ref(spec.name, kind.name());
            match cell {
                Cell::Oom | Cell::SkippedCpu => {
                    let label = if matches!(cell, Cell::Oom) {
                        "OOM"
                    } else {
                        "skip"
                    };
                    let agree = if paper_ref.is_none() {
                        " (paper OOM)"
                    } else {
                        ""
                    };
                    row.push(format!("{label}{agree}"));
                    row.push(format!("{label}{agree}"));
                }
                Cell::Measured(nmis, aris) => {
                    let fmt = |vals: &[f64], p: Option<f64>| match p {
                        Some(p) => format!("{} (paper {p:.1})", mean_std(vals)),
                        None => mean_std(vals),
                    };
                    row.push(fmt(&nmis, paper_ref.map(|r| r.0)));
                    row.push(fmt(&aris, paper_ref.map(|r| r.1)));
                }
            }
        }
        table.push_row(row);
    }
    table.push_note(
        "OOM = the paper-scale run exceeds the simulated 24 GB GPU budget \
         (see cpgan_eval::budget); measured values are on the scaled stand-ins.",
    );
    table
}

/// Evaluates one (model, dataset) cell.
pub fn evaluate_cell(kind: ModelKind, spec: &datasets::DatasetSpec, cfg: &EvalConfig) -> Cell {
    let _span = cpgan_obs::span("eval.community.cell");
    cpgan_obs::counter_add("eval.community.cells", 1);
    if budget::would_oom(kind, spec.n) {
        return Cell::Oom;
    }
    let ds = datasets::synthesize(spec, cfg.scale, cfg.seed);
    if kind.is_dense() && ds.graph.n() > cfg.dense_node_cap {
        return Cell::SkippedCpu;
    }
    let mut nmis = Vec::with_capacity(cfg.seeds);
    let mut aris = Vec::with_capacity(cfg.seeds);
    for s in 0..cfg.seeds {
        let seed = cfg.seed.wrapping_add(s as u64 * 7919);
        let model = fit_model(kind, &ds.graph, cfg, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9999);
        let generated = model.generate(&mut rng);
        let (nmi, ari) = community_scores(&ds.graph, &generated, cfg.seed);
        nmis.push(100.0 * nmi);
        aris.push(100.0 * ari);
    }
    Cell::Measured(nmis, aris)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_cells_match_paper() {
        let cfg = EvalConfig::fast();
        let pubmed = datasets::spec_by_name("PubMed").unwrap();
        assert!(matches!(
            evaluate_cell(ModelKind::Mmsb, pubmed, &cfg),
            Cell::Oom
        ));
        assert!(matches!(
            evaluate_cell(ModelKind::NetGan, pubmed, &cfg),
            Cell::Oom
        ));
        let google = datasets::spec_by_name("Google").unwrap();
        assert!(matches!(
            evaluate_cell(ModelKind::Vgae, google, &cfg),
            Cell::Oom
        ));
    }

    #[test]
    fn small_dataset_produces_measurement() {
        let cfg = EvalConfig {
            scale: 64,
            seeds: 1,
            deep_epochs: 5,
            cpgan_epochs: 3,
            ..EvalConfig::fast()
        };
        let ppi = datasets::spec_by_name("PPI").unwrap();
        match evaluate_cell(ModelKind::Sbm, ppi, &cfg) {
            Cell::Measured(nmis, aris) => {
                assert_eq!(nmis.len(), 1);
                assert!((0.0..=100.0).contains(&nmis[0]));
                assert!((-100.0..=100.0).contains(&aris[0]));
            }
            other => panic!("expected measurement, got {other:?}"),
        }
    }
}
