//! Table V: graph reconstruction with an 80/20 edge split.

use crate::pipelines::quality_diff;
use crate::registry::{cpgan_config, deep_config, ModelKind};
use crate::report::Table;
use crate::{paper, EvalConfig};
use cpgan::{CpGan, Variant};
use cpgan_data::datasets;
use cpgan_deep::{condgen::CondGenR, graphite::Graphite, sbmgnn::SbmGnn, vgae::Vgae};
use cpgan_graph::{Graph, GraphBuilder, NodeId};
use cpgan_nn::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Table V's model list.
pub fn models() -> Vec<ModelKind> {
    vec![
        ModelKind::Vgae,
        ModelKind::Graphite,
        ModelKind::Sbmgnn,
        ModelKind::CondGenR,
        ModelKind::CpGan(Variant::Full),
    ]
}

/// Table V's datasets.
pub const TABLE5_DATASETS: [&str; 2] = ["PPI", "Citeseer"];

/// One reconstruction measurement.
#[derive(Debug, Clone, Copy)]
pub struct ReconResult {
    /// Statistic differences of the reconstructed graph vs the full graph.
    pub deg: f64,
    /// Clustering MMD.
    pub clus: f64,
    /// |CPL difference|.
    pub cpl: f64,
    /// |Gini difference|.
    pub gini: f64,
    /// |PWE difference|.
    pub pwe: f64,
    /// Mean NLL of the training edges.
    pub train_nll: f64,
    /// Mean NLL of the held-out edges.
    pub test_nll: f64,
}

/// Result of [`edge_split`]: `(train_graph, train_edges, test_edges)`.
pub type EdgeSplit = (Graph, Vec<(NodeId, NodeId)>, Vec<(NodeId, NodeId)>);

/// Splits edges 80/20 and returns `(train_graph, train_edges, test_edges)`.
pub fn edge_split(g: &Graph, seed: u64) -> EdgeSplit {
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    edges.shuffle(&mut rng);
    let split = (edges.len() * 4) / 5;
    let (train, test) = edges.split_at(split);
    // The edges come from an existing graph, so rebuild infallibly.
    let mut b = GraphBuilder::with_capacity(g.n(), train.len());
    for &(u, v) in train {
        b.push_edge(u, v);
    }
    let train_graph = b.build();
    (train_graph, train.to_vec(), test.to_vec())
}

/// Fits `kind` on the train graph and returns the full link-probability
/// matrix.
///
/// # Panics
///
/// Panics when called with a model kind that has no reconstruction path —
/// a driver-contract violation, not a data error (the callers in this
/// module only pass `models()`). Tolerated in `lint-baseline.toml`.
#[allow(clippy::panic)]
pub fn reconstruct_probs(kind: ModelKind, train: &Graph, cfg: &EvalConfig, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
    match kind {
        ModelKind::Vgae => Vgae::fit(train, &deep_config(cfg, seed)).decode_probabilities(&mut rng),
        ModelKind::Graphite => {
            Graphite::fit(train, &deep_config(cfg, seed)).decode_probabilities(&mut rng)
        }
        ModelKind::Sbmgnn => SbmGnn::fit(train, &deep_config(cfg, seed), 0).probabilities(),
        ModelKind::CondGenR => {
            CondGenR::fit(train, &deep_config(cfg, seed)).decode_probabilities(&mut rng)
        }
        ModelKind::CpGan(variant) => {
            let mut model = CpGan::new(cpgan_config(variant, train, cfg, seed));
            model.fit(train);
            model.reconstruct_probabilities(train)
        }
        other => panic!("{other:?} is not a reconstruction model"),
    }
}

/// Evaluates one (model, dataset) reconstruction.
pub fn evaluate(kind: ModelKind, spec: &datasets::DatasetSpec, cfg: &EvalConfig) -> ReconResult {
    let ds = datasets::synthesize(spec, cfg.scale, cfg.seed);
    let (train, train_edges, test_edges) = edge_split(&ds.graph, cfg.seed);
    let probs = reconstruct_probs(kind, &train, cfg, cfg.seed);
    // Reconstruct a graph with the *full* edge count, as the paper does
    // ("employ the model to reconstruct the whole graph"). Degree budgets
    // from the training graph (scaled to the full edge count) apply to all
    // models uniformly.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x55);
    let scale = ds.graph.m() as f64 / train.m().max(1) as f64;
    let budgets: Vec<usize> = train
        .degrees()
        .iter()
        .map(|&d| ((d as f64) * scale).round() as usize)
        .collect();
    let nodes: Vec<cpgan_graph::NodeId> = (0..ds.graph.n() as cpgan_graph::NodeId).collect();
    let mut asm = cpgan::assembly::GraphAssembler::new(ds.graph.n(), ds.graph.m())
        .with_degree_budgets(budgets);
    asm.add_subgraph(&nodes, &probs, ds.graph.m(), &mut rng);
    asm.fill_residual(&mut rng);
    let recon = asm.build();
    let q = quality_diff(&ds.graph, &recon, 64);
    ReconResult {
        deg: q.deg,
        clus: q.clus,
        cpl: q.cpl,
        gini: q.gini,
        pwe: q.pwe,
        train_nll: CpGan::edge_nll(&probs, &train_edges),
        test_nll: CpGan::edge_nll(&probs, &test_edges),
    }
}

/// Runs the full Table V experiment.
pub fn run(cfg: &EvalConfig) -> Table {
    let mut table = Table::new(
        format!(
            "Table V: graph reconstruction, 80/20 split (scale 1/{})",
            cfg.scale
        ),
        &["Model"],
    );
    for d in TABLE5_DATASETS {
        for metric in ["Deg.", "Clus.", "CPL", "GINI", "PWE", "TrainNLL", "TestNLL"] {
            table.headers.push(format!("{d} {metric}"));
        }
    }
    for kind in models() {
        let mut row = vec![kind.name().to_string()];
        for d in TABLE5_DATASETS {
            let Some(spec) = datasets::spec_by_name(d) else {
                continue;
            };
            let r = evaluate(kind, spec, cfg);
            let vals = [r.deg, r.clus, r.cpl, r.gini, r.pwe, r.train_nll, r.test_nll];
            // The paper prints "CondGen" in Table V for CondGen-R.
            let paper_row = paper::table5_ref(d, kind.name());
            for (i, v) in vals.iter().enumerate() {
                match paper_row {
                    Some(p) => row.push(format!("{v:.3} ({:.3})", p[i])),
                    None => row.push(format!("{v:.3}")),
                }
            }
        }
        table.push_row(row);
    }
    table.push_note("NLL is the mean negative log-likelihood of train/test edges");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_preserves_counts() {
        let edges: Vec<(u32, u32)> = (0..50u32).map(|i| (i, (i + 1) % 50)).collect();
        let g = Graph::from_edges(50, edges).unwrap();
        let (train, tr, te) = edge_split(&g, 1);
        assert_eq!(tr.len(), 40);
        assert_eq!(te.len(), 10);
        assert_eq!(train.m(), 40);
        assert_eq!(train.n(), 50);
    }

    #[test]
    fn cpgan_reconstruction_test_nll_reasonable() {
        let cfg = EvalConfig {
            scale: 64,
            deep_epochs: 30,
            cpgan_epochs: 20,
            ..EvalConfig::fast()
        };
        let spec = datasets::spec_by_name("PPI").unwrap();
        let r = evaluate(ModelKind::CpGan(Variant::Full), spec, &cfg);
        assert!(r.train_nll.is_finite() && r.train_nll > 0.0);
        assert!(r.test_nll.is_finite() && r.test_nll > 0.0);
        // Train edges should be at least as likely as held-out edges.
        assert!(
            r.train_nll <= r.test_nll + 0.5,
            "{} vs {}",
            r.train_nll,
            r.test_nll
        );
    }
}
