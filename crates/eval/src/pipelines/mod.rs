//! One module per paper experiment.

pub mod ablation;
pub mod community;
pub mod efficiency;
pub mod quality;
pub mod real;
pub mod reconstruction;
pub mod robustness;
pub mod sensitivity;

use cpgan_community::{louvain, metrics};
use cpgan_graph::{mmd, stats, Graph};

/// Community-preservation scores of a generated graph against the observed
/// graph, following §IV-A: Louvain partitions of both graphs compared under
/// the node identity mapping. Returns `(NMI, ARI)`.
pub fn community_scores(observed: &Graph, generated: &Graph, seed: u64) -> (f64, f64) {
    let y = louvain::louvain(observed, seed);
    let x = louvain::louvain(generated, seed);
    (
        metrics::nmi(x.labels(), y.labels()),
        metrics::adjusted_rand_index(x.labels(), y.labels()),
    )
}

/// The Table IV/V/VI statistic differences between observed and generated
/// graphs.
#[derive(Debug, Clone, Copy)]
pub struct QualityDiff {
    /// MMD of degree distributions ("Deg.").
    pub deg: f64,
    /// MMD of clustering-coefficient distributions ("Clus.").
    pub clus: f64,
    /// |CPL difference|.
    pub cpl: f64,
    /// |Gini difference|.
    pub gini: f64,
    /// |power-law-exponent difference|.
    pub pwe: f64,
}

/// Computes all five quality differences; `cpl_sources` caps the BFS seeds
/// for the path-length estimate on large graphs.
pub fn quality_diff(observed: &Graph, generated: &Graph, cpl_sources: usize) -> QualityDiff {
    let so = stats::GraphStats::compute(observed, cpl_sources);
    let sg = stats::GraphStats::compute(generated, cpl_sources);
    QualityDiff {
        deg: mmd::degree_mmd(observed, generated),
        clus: mmd::clustering_mmd(observed, generated),
        cpl: (so.cpl - sg.cpl).abs(),
        gini: (so.gini - sg.gini).abs(),
        pwe: (so.pwe - sg.pwe).abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_graphs_score_perfectly() {
        let g =
            Graph::from_edges(8, [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4), (0, 4)]).unwrap();
        let (nmi, ari) = community_scores(&g, &g, 0);
        assert!((nmi - 1.0).abs() < 1e-9);
        assert!((ari - 1.0).abs() < 1e-9);
        let q = quality_diff(&g, &g, usize::MAX);
        assert!(q.deg < 1e-9 && q.clus < 1e-9 && q.cpl < 1e-9);
    }

    #[test]
    fn different_graphs_score_worse() {
        let g =
            Graph::from_edges(8, [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4), (0, 4)]).unwrap();
        let star = Graph::from_edges(8, (1..8u32).map(|v| (0, v))).unwrap();
        let (nmi, _) = community_scores(&g, &star, 0);
        assert!(nmi < 0.99);
        let q = quality_diff(&g, &star, usize::MAX);
        assert!(q.deg > 0.0);
    }
}
