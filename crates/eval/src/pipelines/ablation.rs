//! Table VI: ablation of CPGAN's sub-modules.

use crate::pipelines::{community_scores, quality_diff};
use crate::registry::{fit_model, ModelKind};
use crate::report::Table;
use crate::{paper, EvalConfig};
use cpgan::Variant;
use cpgan_data::datasets;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Table VI's datasets.
pub const TABLE6_DATASETS: [&str; 3] = ["PubMed", "PPI", "Facebook"];

/// The ablation variants in paper row order.
pub fn variants() -> Vec<Variant> {
    vec![
        Variant::ConcatDecoder,
        Variant::NoVariational,
        Variant::NoHierarchy,
        Variant::Full,
    ]
}

/// One ablation measurement: `(NMI*100, ARI*100, Deg, Clus)`.
#[derive(Debug, Clone, Copy)]
pub struct AblationResult {
    /// NMI x100.
    pub nmi: f64,
    /// ARI x100.
    pub ari: f64,
    /// Degree MMD.
    pub deg: f64,
    /// Clustering MMD.
    pub clus: f64,
}

/// Evaluates one variant on one dataset, averaged over `cfg.seeds` runs.
pub fn evaluate(
    variant: Variant,
    spec: &datasets::DatasetSpec,
    cfg: &EvalConfig,
) -> AblationResult {
    let ds = datasets::synthesize(spec, cfg.scale, cfg.seed);
    let mut acc = AblationResult {
        nmi: 0.0,
        ari: 0.0,
        deg: 0.0,
        clus: 0.0,
    };
    let runs = cfg.seeds.max(1);
    for s in 0..runs {
        let seed = cfg.seed.wrapping_add(s as u64 * 7919);
        let model = fit_model(ModelKind::CpGan(variant), &ds.graph, cfg, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6666);
        let generated = model.generate(&mut rng);
        let (nmi, ari) = community_scores(&ds.graph, &generated, cfg.seed);
        let q = quality_diff(&ds.graph, &generated, 64);
        acc.nmi += 100.0 * nmi;
        acc.ari += 100.0 * ari;
        acc.deg += q.deg;
        acc.clus += q.clus;
    }
    let r = runs as f64;
    AblationResult {
        nmi: acc.nmi / r,
        ari: acc.ari / r,
        deg: acc.deg / r,
        clus: acc.clus / r,
    }
}

/// Runs the full Table VI experiment.
pub fn run(cfg: &EvalConfig, dataset_filter: &[&str]) -> Table {
    let datasets_used: Vec<&str> = TABLE6_DATASETS
        .iter()
        .copied()
        .filter(|d| dataset_filter.is_empty() || dataset_filter.contains(d))
        .collect();
    let mut table = Table::new(
        format!("Table VI: CPGAN ablation (scale 1/{})", cfg.scale),
        &["Variant"],
    );
    for d in &datasets_used {
        for metric in ["NMI", "ARI", "Deg.", "Clus."] {
            table.headers.push(format!("{d} {metric}"));
        }
    }
    for variant in variants() {
        let mut row = vec![variant.label().to_string()];
        for d in &datasets_used {
            let Some(spec) = datasets::spec_by_name(d) else {
                continue;
            };
            let r = evaluate(variant, spec, cfg);
            let paper_row = paper::table6_ref(d, variant.label());
            let vals = [r.nmi, r.ari, r.deg, r.clus];
            for (i, v) in vals.iter().enumerate() {
                match paper_row {
                    Some(p) => row.push(format!("{v:.3} ({:.3})", p[i])),
                    None => row.push(format!("{v:.3}")),
                }
            }
        }
        table.push_row(row);
    }
    table.push_note("expected ordering: CPGAN > CPGAN-C > CPGAN-noV > CPGAN-noH on NMI/ARI");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_run_on_small_ppi() {
        let cfg = EvalConfig {
            scale: 64,
            cpgan_epochs: 8,
            ..EvalConfig::fast()
        };
        let spec = datasets::spec_by_name("PPI").unwrap();
        for v in variants() {
            let r = evaluate(v, spec, &cfg);
            assert!(r.nmi.is_finite());
            assert!(r.deg.is_finite() && r.deg >= 0.0);
        }
    }
}
