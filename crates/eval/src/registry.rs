//! A uniform registry over every generator in the paper's experiments.

use crate::EvalConfig;
use cpgan::{CpGan, CpGanConfig, Variant};
use cpgan_deep::{
    condgen::CondGenR, graphite::Graphite, graphrnn::GraphRnnS, netgan::NetGan, sbmgnn::SbmGnn,
    vgae::Vgae, DeepConfig,
};
use cpgan_generators::{
    ba::BarabasiAlbert, bter::Bter, chung_lu::ChungLu, dcsbm::Dcsbm, er::ErdosRenyi,
    kronecker::Kronecker, mmsb::Mmsb, sbm::Sbm, GraphGenerator,
};
use cpgan_graph::Graph;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Every model evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Erdős–Rényi.
    Er,
    /// Barabási–Albert.
    Ba,
    /// Chung–Lu.
    ChungLu,
    /// Stochastic block model.
    Sbm,
    /// Degree-corrected SBM.
    Dcsbm,
    /// Block two-level E-R.
    Bter,
    /// Stochastic Kronecker / R-MAT.
    Kronecker,
    /// Mixed-membership SBM.
    Mmsb,
    /// Variational graph autoencoder.
    Vgae,
    /// Graphite.
    Graphite,
    /// SBMGNN.
    Sbmgnn,
    /// GraphRNN-S.
    GraphRnnS,
    /// NetGAN.
    NetGan,
    /// CondGen-R.
    CondGenR,
    /// CPGAN or one of its ablation variants.
    CpGan(Variant),
}

impl ModelKind {
    /// Row label matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Er => "E-R",
            ModelKind::Ba => "B-A",
            ModelKind::ChungLu => "Chung-Lu",
            ModelKind::Sbm => "SBM",
            ModelKind::Dcsbm => "DCSBM",
            ModelKind::Bter => "BTER",
            ModelKind::Kronecker => "Kronecker",
            ModelKind::Mmsb => "MMSB",
            ModelKind::Vgae => "VGAE",
            ModelKind::Graphite => "Graphite",
            ModelKind::Sbmgnn => "SBMGNN",
            ModelKind::GraphRnnS => "GraphRNN-S",
            ModelKind::NetGan => "NetGAN",
            ModelKind::CondGenR => "CondGen-R",
            ModelKind::CpGan(v) => v.label(),
        }
    }

    /// Whether the model needs gradient-based training.
    pub fn is_learning_based(&self) -> bool {
        matches!(
            self,
            ModelKind::Vgae
                | ModelKind::Graphite
                | ModelKind::Sbmgnn
                | ModelKind::GraphRnnS
                | ModelKind::NetGan
                | ModelKind::CondGenR
                | ModelKind::CpGan(_)
        )
    }

    /// Whether the model materializes dense `n x n` state locally (used for
    /// the CPU-time node cap, distinct from the paper-scale memory budget).
    pub fn is_dense(&self) -> bool {
        matches!(
            self,
            ModelKind::Mmsb
                | ModelKind::Vgae
                | ModelKind::Graphite
                | ModelKind::Sbmgnn
                | ModelKind::NetGan
                | ModelKind::CondGenR
        )
    }

    /// The Table III model list (community preservation).
    pub fn table3() -> Vec<ModelKind> {
        vec![
            ModelKind::Sbm,
            ModelKind::Dcsbm,
            ModelKind::Bter,
            ModelKind::Mmsb,
            ModelKind::Vgae,
            ModelKind::Graphite,
            ModelKind::Sbmgnn,
            ModelKind::NetGan,
            ModelKind::CpGan(Variant::Full),
        ]
    }

    /// The Table IV model list (generation quality).
    pub fn table4() -> Vec<ModelKind> {
        vec![
            ModelKind::Er,
            ModelKind::Ba,
            ModelKind::ChungLu,
            ModelKind::Sbm,
            ModelKind::Dcsbm,
            ModelKind::Bter,
            ModelKind::Kronecker,
            ModelKind::Mmsb,
            ModelKind::Vgae,
            ModelKind::GraphRnnS,
            ModelKind::CondGenR,
            ModelKind::NetGan,
            ModelKind::CpGan(Variant::Full),
        ]
    }

    /// The efficiency-sweep model list (Tables VII–IX).
    pub fn sweep() -> Vec<ModelKind> {
        vec![
            ModelKind::Er,
            ModelKind::Ba,
            ModelKind::ChungLu,
            ModelKind::Sbm,
            ModelKind::Dcsbm,
            ModelKind::Bter,
            ModelKind::Mmsb,
            ModelKind::Kronecker,
            ModelKind::GraphRnnS,
            ModelKind::Vgae,
            ModelKind::Graphite,
            ModelKind::Sbmgnn,
            ModelKind::NetGan,
            ModelKind::CondGenR,
            ModelKind::CpGan(Variant::Full),
        ]
    }
}

/// Block count available to the SBM-family baselines — the default capacity
/// of the reference implementations the paper evaluates (its premise is
/// precisely that these models have "only a few parameters", §I).
pub const BLOCK_MODEL_CAPACITY: usize = 10;

/// A fitted model ready to sample graphs.
pub enum FittedModel {
    /// Any model implementing the shared generator trait.
    Generator(Box<dyn GraphGenerator>),
    /// CPGAN keeps its own generation signature (target n and m).
    CpGan(Box<CpGan>, usize, usize),
}

impl FittedModel {
    /// Samples one graph.
    pub fn generate(&self, rng: &mut StdRng) -> Graph {
        match self {
            FittedModel::Generator(g) => g.generate(rng as &mut dyn RngCore),
            FittedModel::CpGan(model, n, m) => model.generate(*n, *m, rng),
        }
    }

    /// Model display name.
    pub fn name(&self) -> &'static str {
        match self {
            FittedModel::Generator(g) => g.name(),
            FittedModel::CpGan(..) => "CPGAN",
        }
    }
}

/// CPGAN configuration derived from the harness settings.
pub fn cpgan_config(variant: Variant, g: &Graph, cfg: &EvalConfig, seed: u64) -> CpGanConfig {
    CpGanConfig {
        variant,
        epochs: cfg.cpgan_epochs,
        sample_size: 200.min(g.n().max(8)),
        seed,
        ..CpGanConfig::default()
    }
}

/// Deep-baseline configuration derived from the harness settings.
pub fn deep_config(cfg: &EvalConfig, seed: u64) -> DeepConfig {
    DeepConfig {
        epochs: cfg.deep_epochs,
        seed,
        ..DeepConfig::default()
    }
}

/// Fits `kind` on the observed graph. This is the timed "training" step of
/// Table VIII.
pub fn fit_model(kind: ModelKind, g: &Graph, cfg: &EvalConfig, seed: u64) -> FittedModel {
    match kind {
        ModelKind::Er => FittedModel::Generator(Box::new(ErdosRenyi::fit(g))),
        ModelKind::Ba => FittedModel::Generator(Box::new(BarabasiAlbert::fit(g))),
        ModelKind::ChungLu => FittedModel::Generator(Box::new(ChungLu::fit(g))),
        // Block models use the limited block budget of the reference
        // implementations the paper compares against (its §I premise:
        // "there are only a few parameters in their models").
        ModelKind::Sbm => {
            FittedModel::Generator(Box::new(Sbm::fit_capped(g, seed, BLOCK_MODEL_CAPACITY)))
        }
        ModelKind::Dcsbm => {
            FittedModel::Generator(Box::new(Dcsbm::fit_capped(g, seed, BLOCK_MODEL_CAPACITY)))
        }
        ModelKind::Bter => FittedModel::Generator(Box::new(Bter::fit(g))),
        ModelKind::Kronecker => FittedModel::Generator(Box::new(Kronecker::fit(g))),
        ModelKind::Mmsb => FittedModel::Generator(Box::new(Mmsb::fit_capped(
            g,
            seed,
            0.1,
            BLOCK_MODEL_CAPACITY,
        ))),
        ModelKind::Vgae => FittedModel::Generator(Box::new(Vgae::fit(g, &deep_config(cfg, seed)))),
        ModelKind::Graphite => {
            FittedModel::Generator(Box::new(Graphite::fit(g, &deep_config(cfg, seed))))
        }
        ModelKind::Sbmgnn => {
            FittedModel::Generator(Box::new(SbmGnn::fit(g, &deep_config(cfg, seed), 0)))
        }
        ModelKind::GraphRnnS => {
            FittedModel::Generator(Box::new(GraphRnnS::fit(g, &deep_config(cfg, seed))))
        }
        ModelKind::NetGan => {
            FittedModel::Generator(Box::new(NetGan::fit(g, &deep_config(cfg, seed))))
        }
        ModelKind::CondGenR => {
            FittedModel::Generator(Box::new(CondGenR::fit(g, &deep_config(cfg, seed))))
        }
        ModelKind::CpGan(variant) => {
            let mut model = CpGan::new(cpgan_config(variant, g, cfg, seed));
            model.fit(g);
            FittedModel::CpGan(Box::new(model), g.n(), g.m())
        }
    }
}

/// Convenience: fit and sample one graph with a derived RNG.
pub fn fit_and_generate(kind: ModelKind, g: &Graph, cfg: &EvalConfig, seed: u64) -> Graph {
    let model = fit_model(kind, g, cfg, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    model.generate(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> Graph {
        let mut edges = Vec::new();
        for c in 0..3u32 {
            let base = c * 10;
            for a in 0..10u32 {
                for b in (a + 1)..10 {
                    if (a + b) % 2 == 0 {
                        edges.push((base + a, base + b));
                    }
                }
            }
            edges.push((base, (base + 10) % 30));
        }
        Graph::from_edges(30, edges).unwrap()
    }

    #[test]
    fn every_kind_fits_and_generates() {
        let g = small_graph();
        let cfg = EvalConfig {
            deep_epochs: 10,
            cpgan_epochs: 5,
            ..EvalConfig::fast()
        };
        for kind in ModelKind::sweep() {
            let out = fit_and_generate(kind, &g, &cfg, 3);
            assert_eq!(out.n(), g.n(), "{} changed node count", kind.name());
        }
    }

    #[test]
    fn names_unique() {
        let names: Vec<&str> = ModelKind::sweep().iter().map(|k| k.name()).collect();
        let set: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
