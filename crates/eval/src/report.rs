//! Plain-text table rendering with paper-vs-measured columns.

use std::fmt::Write as _;

/// A rendered experiment table.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (first cell is usually the model name).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cells.len());
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!(
                    "{:w$}",
                    c,
                    w = widths.get(i).copied().unwrap_or(c.len())
                ));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }
}

/// Writes the table as JSON to `path` (machine-readable companion to the
/// plain-text rendering).
pub fn write_json(table: &Table, path: &std::path::Path) -> std::io::Result<()> {
    let file = std::io::BufWriter::new(std::fs::File::create(path)?);
    serde_json::to_writer_pretty(file, table).map_err(std::io::Error::other)
}

/// Handles the shared `--json FILE` CLI flag: writes `table` to the given
/// file if the flag is present. Errors are reported to stderr, not fatal.
pub fn maybe_write_json(args: &[String], table: &Table) {
    if let Some(path) = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
    {
        match write_json(table, std::path::Path::new(path)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Formats a measured value with its paper reference, e.g. `0.71 (paper 0.725)`.
pub fn vs_paper(measured: f64, paper: Option<f64>) -> String {
    match paper {
        Some(p) => format!("{measured:.3} (paper {p:.3})"),
        None => format!("{measured:.3}"),
    }
}

/// Formats mean ± std over repeated runs.
pub fn mean_std(values: &[f64]) -> String {
    if values.is_empty() {
        return "-".into();
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() == 1 {
        return format!("{mean:.3}");
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    format!("{:.3}±{:.3}", mean, var.sqrt())
}

/// Mean of a sample (0 for empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["Model", "NMI"]);
        t.push_row(vec!["CPGAN".into(), "0.72".into()]);
        t.push_row(vec!["B".into(), "0.1".into()]);
        t.push_note("scaled run");
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| CPGAN | 0.72 |"));
        assert!(s.contains("note: scaled run"));
    }

    #[test]
    fn json_round_trip() {
        let mut t = Table::new("J", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("cpgan_eval_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        write_json(&t, &path).unwrap();
        let loaded: Table = serde_json::from_reader(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(loaded.rows, t.rows);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(vs_paper(0.5, Some(0.725)), "0.500 (paper 0.725)");
        assert_eq!(vs_paper(0.5, None), "0.500");
        assert_eq!(mean_std(&[]), "-");
        assert_eq!(mean_std(&[2.0]), "2.000");
        assert!(mean_std(&[1.0, 3.0]).starts_with("2.000±1.000"));
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}
