//! Doc-sync: DESIGN.md §15 documents the dataset registry. If the file
//! formats, the checksum/offline model, or the tolerance table change,
//! the section must move with them — these tests fail on drift,
//! mirroring the §11/§12/§13/§14 suites.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

/// DESIGN.md §15 body (from the section header to the next `## `).
fn section_15() -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
    let text = std::fs::read_to_string(path).expect("DESIGN.md must be readable");
    let start = text
        .find("## 15.")
        .expect("DESIGN.md must have a §15 (dataset registry)");
    let body = &text[start..];
    let end = body[6..].find("\n## ").map(|i| i + 6).unwrap_or(body.len());
    body[..end].to_string()
}

#[test]
fn design_section_documents_the_formats() {
    let s = section_15();
    for item in [
        "snap-edges",
        "linqs-cites",
        "linqs-content",
        "first-appearance order",
        "DuplicatePolicy::Merge",
        "SelfLoopPolicy::Drop",
        "Graph::from_edge_stream",
        "data.ingest.parse_ns",
    ] {
        assert!(s.contains(item), "DESIGN.md §15 must mention `{item}`");
    }
}

#[test]
fn design_section_documents_the_checksum_and_offline_model() {
    let s = section_15();
    for item in [
        "CPGAN_DATA_DIR",
        "SHA-256",
        "OfflineRemote",
        "ManualDownload",
        "crates/datasets/fixtures/",
        "gen_fixtures",
        "data-verify",
        "DataProvenance",
        "FixtureSurrogate",
    ] {
        assert!(s.contains(item), "DESIGN.md §15 must mention `{item}`");
    }
}

#[test]
fn design_section_carries_the_tolerance_table() {
    let s = section_15();
    for item in [
        "powerlaw_exponent_ks",
        "| `citeseer` (upstream, manual) | published Table II | exact | exact |",
        "| `citeseer-fixture` / `cora-fixture` (vendored surrogates) | recorded fixture stats |",
        "| `<name>-synthetic` stand-ins | spec targets |",
        "Havel–Hakimi",
    ] {
        assert!(s.contains(item), "DESIGN.md §15 must keep `{item}`");
    }
    // The documented tolerances must match the registry: upstream
    // citeseer's published-row bounds, and the fixtures' tight
    // recorded-reference bounds.
    let upstream = cpgan_datasets::resolve("citeseer").unwrap();
    for tol in [
        upstream.tol.mean_degree,
        upstream.tol.gini,
        upstream.tol.pwe,
        upstream.tol.cpl,
    ] {
        assert!(
            s.contains(&format!("{tol}")),
            "§15 tolerance table must list {tol} for citeseer"
        );
    }
    let fixture = cpgan_datasets::resolve("citeseer-fixture").unwrap();
    for tol in [
        fixture.tol.mean_degree,
        fixture.tol.gini,
        fixture.tol.pwe,
        fixture.tol.cpl,
    ] {
        assert!(
            s.contains(&format!("{tol}")),
            "§15 tolerance table must list {tol} for citeseer-fixture"
        );
    }
}

#[test]
fn cli_usage_points_at_the_section() {
    let s = section_15();
    for cmd in ["cpgan data list", "table_real"] {
        assert!(s.contains(cmd), "§15 must name the `{cmd}` entry point");
    }
}
