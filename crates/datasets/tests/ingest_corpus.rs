//! Malformed-input corpus for the streaming parsers: every broken shape a
//! real download can exhibit must surface as a typed [`DatasetError`] —
//! never a panic — and every tolerated shape (blank lines, CRLF,
//! comments) must ingest cleanly.

// Integration-test helpers sit outside `#[test]` fns, so the
// allow-panic-in-tests carve-out does not reach them.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_datasets::{ingest_files, DatasetError, Format};
use cpgan_graph::{DuplicatePolicy, GraphError, SelfLoopPolicy};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cpgan-datasets-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn file(&self, name: &str, content: &str) -> PathBuf {
        let path = self.0.join(name);
        fs::write(&path, content).unwrap();
        path
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn ingest_one(
    path: PathBuf,
    format: Format,
    loops: SelfLoopPolicy,
    dups: DuplicatePolicy,
) -> Result<cpgan_datasets::Ingested, DatasetError> {
    ingest_files(&[(path, format)], loops, dups)
}

fn default_ingest(path: PathBuf, format: Format) -> Result<cpgan_datasets::Ingested, DatasetError> {
    ingest_one(path, format, SelfLoopPolicy::Drop, DuplicatePolicy::Merge)
}

#[test]
fn tolerates_blank_lines_crlf_and_comments() {
    let tmp = Scratch::new("tolerant");
    let path = tmp.file(
        "edges.txt",
        "# SNAP header\r\n\r\n0 1\r\n\n% matrix-market comment\n1\t2\n   \n2 0\r\n",
    );
    let ing = default_ingest(path, Format::SnapEdges).unwrap();
    assert_eq!(ing.graph.n(), 3);
    assert_eq!(ing.graph.m(), 3);
    assert_eq!(ing.stats.raw_edges, 3);
    assert_eq!(ing.stats.self_loops_dropped, 0);
    assert_eq!(ing.stats.duplicates_merged, 0);
}

#[test]
fn merges_duplicates_and_reverse_duplicates() {
    let tmp = Scratch::new("dups");
    // (0,1) three times: forward, repeated, and reversed — one edge.
    let path = tmp.file("edges.txt", "0 1\n0 1\n1 0\n1 2\n");
    let ing = default_ingest(path, Format::SnapEdges).unwrap();
    assert_eq!(ing.graph.m(), 2);
    assert_eq!(ing.stats.raw_edges, 4);
    assert_eq!(ing.stats.duplicates_merged, 2);
}

#[test]
fn drops_and_counts_self_loops() {
    let tmp = Scratch::new("loops");
    let path = tmp.file("edges.txt", "0 0\n0 1\n1 1\n");
    let ing = default_ingest(path, Format::SnapEdges).unwrap();
    assert_eq!(ing.graph.m(), 1);
    assert_eq!(ing.stats.self_loops_seen, 2);
    assert_eq!(ing.stats.self_loops_dropped, 2);
    // Dropped loops must not be double-counted as merges.
    assert_eq!(ing.stats.duplicates_merged, 0);
    // Self-loop-only ids still intern as (isolated) nodes.
    assert_eq!(ing.graph.n(), 2);
}

#[test]
fn counters_separate_dropped_loops_from_merged_duplicates() {
    let tmp = Scratch::new("loops-and-dups");
    // 5 records: one loop (dropped), (0,1) twice + reversed once (two
    // merges), one distinct edge.
    let path = tmp.file("edges.txt", "0 0\n0 1\n0 1\n1 0\n1 2\n");
    let ing = default_ingest(path, Format::SnapEdges).unwrap();
    assert_eq!(ing.graph.m(), 2);
    assert_eq!(ing.stats.raw_edges, 5);
    assert_eq!(ing.stats.self_loops_seen, 1);
    assert_eq!(ing.stats.self_loops_dropped, 1);
    assert_eq!(ing.stats.duplicates_merged, 2);
}

#[test]
fn duplicate_policy_error_is_typed_not_a_panic() {
    let tmp = Scratch::new("dup-err");
    let path = tmp.file("edges.txt", "0 1\n1 0\n");
    let err = ingest_one(
        path,
        Format::SnapEdges,
        SelfLoopPolicy::Drop,
        DuplicatePolicy::Error,
    )
    .unwrap_err();
    assert!(
        matches!(err, DatasetError::Graph(GraphError::Stream(_))),
        "{err:?}"
    );
}

#[test]
fn self_loop_policy_error_is_typed_not_a_panic() {
    let tmp = Scratch::new("loop-err");
    let path = tmp.file("edges.txt", "0 1\n2 2\n");
    let err = ingest_one(
        path,
        Format::SnapEdges,
        SelfLoopPolicy::Error,
        DuplicatePolicy::Merge,
    )
    .unwrap_err();
    assert!(
        matches!(err, DatasetError::Graph(GraphError::Stream(_))),
        "{err:?}"
    );
}

#[test]
fn non_numeric_snap_id_reports_file_and_line() {
    let tmp = Scratch::new("non-numeric");
    let path = tmp.file("edges.txt", "0 1\npaper7 3\n");
    let err = default_ingest(path, Format::SnapEdges).unwrap_err();
    match err {
        DatasetError::Parse {
            file,
            line,
            message,
        } => {
            assert!(file.ends_with("edges.txt"), "{file}");
            assert_eq!(line, 2);
            assert!(message.contains("paper7"), "{message}");
        }
        other => panic!("expected a parse error, got {other:?}"),
    }
}

#[test]
fn truncated_record_is_a_parse_error() {
    let tmp = Scratch::new("truncated");
    for (format, content) in [
        (Format::SnapEdges, "0 1\n2\n"),
        (Format::LinqsCites, "a b\nlonely\n"),
    ] {
        let path = tmp.file("in.txt", content);
        let err = default_ingest(path, format).unwrap_err();
        assert!(
            matches!(err, DatasetError::Parse { line: 2, .. }),
            "{format:?}: {err:?}"
        );
    }
}

#[test]
fn extra_columns_are_a_parse_error() {
    let tmp = Scratch::new("extra-cols");
    let path = tmp.file("edges.txt", "0 1 7\n");
    let err = default_ingest(path, Format::SnapEdges).unwrap_err();
    assert!(
        matches!(err, DatasetError::Parse { line: 1, .. }),
        "{err:?}"
    );
}

#[test]
fn missing_file_is_a_typed_io_error() {
    let tmp = Scratch::new("missing");
    let path = tmp.0.join("does-not-exist.txt");
    let err = default_ingest(path, Format::SnapEdges).unwrap_err();
    assert!(matches!(err, DatasetError::Io { .. }), "{err:?}");
}

#[test]
fn cites_plus_content_interns_labels_onto_dense_ids() {
    let tmp = Scratch::new("linqs");
    let cites = tmp.file("toy.cites", "paperA paperB\npaperB paperC\n");
    let content = tmp.file(
        "toy.content",
        "paperA 0 1 0 Agents\npaperC 1 0 1 ML\npaperD 0 0 0 DB\n",
    );
    let ing = ingest_files(
        &[(cites, Format::LinqsCites), (content, Format::LinqsContent)],
        SelfLoopPolicy::Drop,
        DuplicatePolicy::Merge,
    )
    .unwrap();
    // First-appearance interning: A=0, B=1, C=2, then D from .content.
    assert_eq!(ing.graph.n(), 4);
    assert_eq!(ing.graph.m(), 2);
    let labels = ing.labels.as_ref().expect("content file present");
    assert_eq!(labels.len(), 4);
    assert_eq!(labels[0], "Agents");
    assert_eq!(labels[1], ""); // cited but never described
    assert_eq!(labels[2], "ML");
    assert_eq!(labels[3], "DB");
    assert_eq!(ing.interner.get("paperD"), Some(3));
}

#[test]
fn ingestion_is_bit_identical_across_thread_counts() {
    let tmp = Scratch::new("threads");
    let mut content = String::new();
    for i in 0u32..200 {
        content.push_str(&format!("{} {}\n", i, (i * 7 + 1) % 200));
    }
    let path = tmp.file("edges.txt", &content);
    let run = |threads: usize| {
        cpgan_parallel::with_thread_count(threads, || {
            let ing = default_ingest(path.clone(), Format::SnapEdges).unwrap();
            let degs = ing.graph.degrees();
            (
                ing.graph.n(),
                ing.graph.m(),
                degs,
                cpgan_graph::stats::gini::gini_coefficient(&ing.graph.degrees()).to_bits(),
                cpgan_graph::stats::path::characteristic_path_length(&ing.graph, 64).to_bits(),
            )
        })
    };
    let base = run(1);
    for threads in [2, 4] {
        assert_eq!(run(threads), base, "diverged at {threads} threads");
    }
}
