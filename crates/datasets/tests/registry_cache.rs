//! Registry + cache integration: fetch/checksum/offline behaviour on
//! temp-dir caches, the uniform load path across provenance classes, and
//! the headline acceptance check — `verify` passes on the vendored
//! surrogate fixtures within the recorded-reference tolerances,
//! bit-identically at any thread count.

// Integration-test helpers sit outside `#[test]` fns, so the
// allow-panic-in-tests carve-out does not reach them.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_datasets::{fetch, load, resolve, verify, Cache, DatasetError, FetchAction, LoadOptions};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique scratch cache root, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cpgan-cache-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn cache(&self) -> Cache {
        Cache::resolve(Some(&self.0))
    }

    fn opts(&self) -> LoadOptions {
        LoadOptions {
            data_dir: Some(self.0.clone()),
            offline: true,
            ..LoadOptions::default()
        }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn fetch_copies_fixture_then_reports_cached() {
    let tmp = Scratch::new("fetch");
    let entry = resolve("citeseer-fixture").unwrap();
    let cache = tmp.cache();

    let first = fetch(entry, &cache, true).unwrap();
    assert_eq!(first.len(), 1);
    assert_eq!(first[0].action, FetchAction::CopiedFixture);
    assert!(cache
        .file_path("citeseer-fixture", "citeseer.cites")
        .is_file());
    assert_eq!(cache.scan().unwrap(), vec!["citeseer-fixture".to_string()]);

    let second = fetch(entry, &cache, true).unwrap();
    assert_eq!(second[0].action, FetchAction::AlreadyCached);
}

#[test]
fn corrupted_cache_file_fails_checksum() {
    let tmp = Scratch::new("corrupt");
    let entry = resolve("citeseer-fixture").unwrap();
    let cache = tmp.cache();
    let dest = cache.file_path("citeseer-fixture", "citeseer.cites");
    fs::create_dir_all(dest.parent().unwrap()).unwrap();
    fs::write(&dest, "0 1\n").unwrap();

    let err = fetch(entry, &cache, true).unwrap_err();
    match err {
        DatasetError::ChecksumMismatch {
            expected, actual, ..
        } => {
            assert_eq!(expected, cpgan_datasets::registry::CITESEER_FIXTURE_SHA256);
            assert_ne!(expected, actual);
        }
        other => panic!("expected a checksum mismatch, got {other:?}"),
    }
}

#[test]
fn remote_entries_are_typed_offline_and_online() {
    let tmp = Scratch::new("remote");
    let cache = tmp.cache();

    // Every upstream entry is remote in this build — including citeseer,
    // whose vendored surrogate lives under `citeseer-fixture` instead.
    for name in ["google", "citeseer"] {
        let entry = resolve(name).unwrap();
        let offline = fetch(entry, &cache, true).unwrap_err();
        assert!(
            matches!(&offline, DatasetError::OfflineRemote { dataset, .. } if dataset == name),
            "{offline:?}"
        );
        let online = fetch(entry, &cache, false).unwrap_err();
        assert!(
            matches!(online, DatasetError::ManualDownload { .. }),
            "{online:?}"
        );
    }
}

#[test]
fn unknown_dataset_is_typed() {
    let err = resolve("not-a-dataset").unwrap_err();
    assert!(
        matches!(err, DatasetError::UnknownDataset { .. }),
        "{err:?}"
    );
}

#[test]
fn load_resolves_file_backed_and_synthetic_uniformly() {
    let tmp = Scratch::new("uniform");
    let opts = tmp.opts();

    let fixture = load(resolve("citeseer-fixture").unwrap(), &opts).unwrap();
    assert_eq!(fixture.graph.n(), 3327);
    assert_eq!(fixture.graph.m(), 4732);
    assert!(fixture.ingest.is_some());
    assert!(fixture.communities.is_none());

    let synth = load(resolve("citeseer-synthetic").unwrap(), &opts).unwrap();
    assert_eq!(synth.graph.n(), 3327);
    assert!(synth.ingest.is_none());
    let labels = synth.communities.expect("stand-ins carry ground truth");
    assert_eq!(labels.len(), synth.graph.n());
}

#[test]
fn vendored_fixtures_verify_within_recorded_tolerances() {
    let tmp = Scratch::new("verify");
    let opts = tmp.opts();
    for name in ["citeseer-fixture", "cora-fixture"] {
        let entry = resolve(name).unwrap();
        let ds = load(entry, &opts).unwrap();
        let report = verify(entry, &ds.graph, cpgan_datasets::DEFAULT_CPL_SOURCES);
        assert!(report.passed(), "{name} failed:\n{}", report.render());
    }
}

#[test]
fn verify_report_is_bit_identical_across_thread_counts() {
    let tmp = Scratch::new("verify-threads");
    let opts = tmp.opts();
    let entry = resolve("citeseer-fixture").unwrap();
    let run = |threads: usize| {
        cpgan_parallel::with_thread_count(threads, || {
            let ds = load(entry, &opts).unwrap();
            verify(entry, &ds.graph, cpgan_datasets::DEFAULT_CPL_SOURCES)
        })
    };
    let base = run(1);
    for threads in [2, 4] {
        assert_eq!(run(threads), base, "diverged at {threads} threads");
    }
}
