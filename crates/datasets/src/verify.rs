//! Reference-stat verification (`cpgan data verify`).
//!
//! Recomputes the registry's reference scalars — n, m, mean degree,
//! degree Gini, power-law exponent, characteristic path length — on a
//! loaded graph and diffs each against the entry's reference value under
//! that entry's per-stat tolerance. What the reference *is* depends on
//! the entry's [`crate::registry::DataProvenance`]:
//!
//! * **upstream** entries diff against the published Table II (or
//!   exemplar-table) values — a real-graph fidelity check, runnable once
//!   the real files are placed in the cache;
//! * **fixture surrogates** diff against measurements recorded when the
//!   fixture was generated — an ingestion-fidelity gate (parsers,
//!   interning, symmetrization, CSR build must reproduce the recorded
//!   numbers), deliberately *not* a claim about the real dataset;
//! * **synthetic stand-ins** diff against their spec's published targets
//!   under wide synthesizer-fidelity bounds.
//!
//! The PWE check uses the KS-fitted-cutoff estimator
//! ([`powerlaw::powerlaw_exponent_ks`]): published tables fit the cutoff
//! too, and the fixed `d_min = 1` estimator is mathematically capped at
//! `1 + 1/ln 2 ≈ 2.44`, below e.g. Citeseer's published 2.8757.
//!
//! All measurements are deterministic: CPL uses evenly-spaced BFS
//! sources, everything else is a pure fold over the degree sequence, so
//! reports are bit-identical across thread counts.

use crate::registry::DatasetEntry;
use cpgan_graph::stats::{gini, path, powerlaw};
use cpgan_graph::Graph;

/// Default BFS-source cap for the CPL measurement. 512 evenly-spaced
/// sources keep verification fast on large graphs while staying exact on
/// graphs smaller than the cap.
pub const DEFAULT_CPL_SOURCES: usize = 512;

/// One reference-vs-measured comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct StatCheck {
    /// Stat name (`n`, `m`, `mean_degree`, `gini`, `pwe`, `cpl`).
    pub stat: &'static str,
    /// Reference value (published, recorded-fixture, or stand-in target —
    /// see the module docs).
    pub reference: f64,
    /// Value measured on the loaded graph.
    pub measured: f64,
    /// Absolute tolerance applied (0 = must match exactly).
    pub tolerance: f64,
    /// Whether `|measured - reference| <= tolerance`.
    pub pass: bool,
}

/// The full verification report for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Registry name of the dataset.
    pub dataset: String,
    /// Every comparison performed, registry order.
    pub checks: Vec<StatCheck>,
}

impl VerifyReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Human-readable fixed-width table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "verify {}\n  {:<12} {:>14} {:>14} {:>12}  status\n",
            self.dataset, "stat", "reference", "measured", "tolerance"
        );
        for c in &self.checks {
            out.push_str(&format!(
                "  {:<12} {:>14.4} {:>14.4} {:>12.4}  {}\n",
                c.stat,
                c.reference,
                c.measured,
                c.tolerance,
                if c.pass { "ok" } else { "FAIL" }
            ));
        }
        out.push_str(&format!(
            "  result: {}\n",
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// Machine-readable JSON (one object, checks as an array).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"dataset\":\"{}\",\"passed\":{},\"checks\":[",
            self.dataset,
            self.passed()
        );
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stat\":\"{}\",\"reference\":{},\"measured\":{},\"tolerance\":{},\"pass\":{}}}",
                c.stat, c.reference, c.measured, c.tolerance, c.pass
            ));
        }
        out.push_str("]}");
        out
    }
}

fn check(stat: &'static str, reference: f64, measured: f64, tolerance: f64) -> StatCheck {
    StatCheck {
        stat,
        reference,
        measured,
        tolerance,
        pass: (measured - reference).abs() <= tolerance,
    }
}

/// Verifies `g` against `entry`'s reference statistics.
///
/// `cpl_sources` bounds the BFS sources for the CPL measurement (use
/// [`DEFAULT_CPL_SOURCES`] unless exactness matters more than time). The
/// CPL check only runs when the registry records a CPL for the entry.
pub fn verify(entry: &DatasetEntry, g: &Graph, cpl_sources: usize) -> VerifyReport {
    let _span = cpgan_obs::span("data.verify");
    let p = &entry.reference;
    let t = &entry.tol;
    let degs = g.degrees();

    let mut checks = vec![
        check("n", p.n as f64, g.n() as f64, 0.0),
        check("m", p.m as f64, g.m() as f64, t.m_rel * p.m as f64),
        check("mean_degree", p.mean_degree, g.mean_degree(), t.mean_degree),
        check("gini", p.gini, gini::gini_coefficient(&degs), t.gini),
        check("pwe", p.pwe, powerlaw::powerlaw_exponent_ks(&degs), t.pwe),
    ];
    if let Some(cpl) = p.cpl {
        checks.push(check(
            "cpl",
            cpl,
            path::characteristic_path_length(g, cpl_sources),
            t.cpl,
        ));
    }
    VerifyReport {
        dataset: entry.name.clone(),
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_serializes() {
        let report = VerifyReport {
            dataset: "toy".to_string(),
            checks: vec![check("n", 4.0, 4.0, 0.0), check("gini", 0.5, 0.9, 0.1)],
        };
        assert!(!report.passed());
        let text = report.render();
        assert!(text.contains("FAIL"));
        assert!(text.contains("verify toy"));
        assert!(text.contains("reference"));
        let json = report.to_json();
        assert!(json.contains("\"passed\":false"));
        assert!(json.contains("\"stat\":\"gini\""));
        assert!(json.contains("\"reference\":0.5"));
    }

    #[test]
    fn exact_checks_use_zero_tolerance() {
        let c = check("n", 10.0, 11.0, 0.0);
        assert!(!c.pass);
        let c = check("n", 10.0, 10.0, 0.0);
        assert!(c.pass);
    }
}
