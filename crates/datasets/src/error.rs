//! Typed errors for the dataset registry and the ingestion pipeline.

use cpgan_graph::GraphError;
use std::fmt;

/// Everything that can go wrong between a dataset name and a verified graph.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// Filesystem failure, annotated with the path involved.
    Io {
        /// The path the operation touched.
        path: String,
        /// The underlying `io::Error` rendered to text (keeps `Clone`/`PartialEq`).
        message: String,
    },
    /// A line of an input file does not follow its declared format.
    Parse {
        /// Workspace- or cache-relative file label.
        file: String,
        /// 1-based line number.
        line: usize,
        /// What was expected.
        message: String,
    },
    /// The graph builder rejected the edge stream (endpoint out of range,
    /// policy violation, non-replayable stream).
    Graph(GraphError),
    /// The name matches no registry entry.
    UnknownDataset {
        /// The name as given.
        name: String,
    },
    /// A cached or fetched file does not hash to the manifest's SHA-256.
    ChecksumMismatch {
        /// Path of the offending file.
        file: String,
        /// Manifest checksum (lowercase hex).
        expected: String,
        /// Computed checksum (lowercase hex).
        actual: String,
    },
    /// Offline mode forbids satisfying a remote-only file.
    OfflineRemote {
        /// Dataset the file belongs to.
        dataset: String,
        /// The missing file.
        file: String,
        /// Where it would have to come from.
        url: String,
    },
    /// This build has no network stack; the file must be placed in the
    /// cache by hand.
    ManualDownload {
        /// Canonical source URL.
        url: String,
        /// Destination path inside the cache dir.
        dest: String,
    },
    /// A vendored fixture named by the manifest is missing from the
    /// repository checkout.
    MissingFixture {
        /// The fixture path that was probed.
        path: String,
    },
    /// More than `u32::MAX` distinct node ids in one input set — the
    /// dense id space is exhausted.
    IdSpaceExhausted,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io { path, message } => write!(f, "{path}: {message}"),
            DatasetError::Parse {
                file,
                line,
                message,
            } => write!(f, "{file}:{line}: {message}"),
            DatasetError::Graph(e) => write!(f, "graph construction failed: {e}"),
            DatasetError::UnknownDataset { name } => {
                write!(f, "unknown dataset '{name}' (see `cpgan data list`)")
            }
            DatasetError::ChecksumMismatch {
                file,
                expected,
                actual,
            } => write!(
                f,
                "{file}: SHA-256 mismatch (expected {expected}, got {actual}); \
                 delete the file and re-fetch"
            ),
            DatasetError::OfflineRemote { dataset, file, url } => write!(
                f,
                "offline mode: '{dataset}' needs remote file {file} from {url}"
            ),
            DatasetError::ManualDownload { url, dest } => write!(
                f,
                "no network stack in this build: download {url} and place the \
                 extracted file at {dest}, then re-run fetch to verify its checksum"
            ),
            DatasetError::MissingFixture { path } => {
                write!(f, "vendored fixture missing from checkout: {path}")
            }
            DatasetError::IdSpaceExhausted => write!(
                f,
                "dense node-id space exhausted (more than {} distinct ids)",
                u32::MAX
            ),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<GraphError> for DatasetError {
    fn from(e: GraphError) -> Self {
        DatasetError::Graph(e)
    }
}

impl DatasetError {
    /// Wraps an `io::Error` with the path it occurred on.
    pub fn io(path: impl AsRef<std::path::Path>, e: std::io::Error) -> Self {
        DatasetError::Io {
            path: path.as_ref().display().to_string(),
            message: e.to_string(),
        }
    }
}
