//! String-id interning: raw dataset tokens to dense `u32` node ids.
//!
//! Ids are assigned in first-appearance order over the (stable) file
//! list, so the dense numbering is deterministic for a given input set.
//! The `HashMap` is used for lookup only — it is never iterated, which
//! keeps the determinism contract (DESIGN.md §8) intact.

use std::collections::HashMap;

use crate::error::DatasetError;

/// Bidirectional token <-> dense-id table.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Returns the dense id for `token`, allocating the next id on first
    /// sight.
    ///
    /// # Errors
    ///
    /// [`DatasetError::IdSpaceExhausted`] once `u32::MAX` distinct tokens
    /// have been interned — the dense id space cannot represent more.
    pub fn intern(&mut self, token: &str) -> Result<u32, DatasetError> {
        if let Some(&id) = self.ids.get(token) {
            return Ok(id);
        }
        let id = u32::try_from(self.names.len()).map_err(|_| DatasetError::IdSpaceExhausted)?;
        self.ids.insert(token.to_string(), id);
        self.names.push(token.to_string());
        Ok(id)
    }

    /// Looks up an already-interned token.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// The original token of dense id `id`.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct tokens interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no token has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_appearance_order() {
        let mut i = Interner::new();
        assert_eq!(i.intern("b").unwrap(), 0);
        assert_eq!(i.intern("a").unwrap(), 1);
        assert_eq!(i.intern("b").unwrap(), 0);
        assert_eq!(i.len(), 2);
        assert_eq!(i.name(1), Some("a"));
        assert_eq!(i.get("a"), Some(1));
        assert_eq!(i.get("c"), None);
    }
}
