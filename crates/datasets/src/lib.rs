//! Dataset subsystem: registry, streaming ingestion, and reference-stat
//! verification.
//!
//! One manifest interface covers three provenance classes — real
//! upstream datasets (files supplied by hand in this network-less
//! build), vendored *synthetic surrogate* fixtures generated in-repo,
//! and the six synthetic Table II stand-ins — with the class recorded on
//! every entry so nothing downstream can present generated data as real:
//!
//! * [`registry`] — one manifest entry per dataset name with an explicit
//!   [`registry::DataProvenance`], SHA-256 checksums for vendored files,
//!   and reference stats (published values for upstream entries,
//!   recorded fixture measurements for surrogates), so `citeseer`,
//!   `citeseer-fixture` and `citeseer-synthetic` resolve uniformly;
//! * [`formats`] — streaming parsers for SNAP edge lists and linqs
//!   `.cites`/`.content` files, layered on the two-pass
//!   `Graph::from_edge_stream` builder so ingestion never materializes an
//!   in-memory edge `Vec`;
//! * [`store`] — the local cache (`$CPGAN_DATA_DIR`), checksum-verified
//!   fetching with a strictly offline mode backed by the vendored
//!   surrogate fixtures, and the uniform [`store::load`] entry point;
//! * [`verify`] — recomputes n/m/mean-degree/Gini/PWE/CPL and diffs them
//!   against the entry's reference values under per-stat tolerances
//!   (`cpgan data verify`): a real-graph fidelity check for upstream
//!   entries, an ingestion-fidelity gate for the surrogates.
//!
//! See DESIGN.md §15 for formats, the checksum/offline model, and the
//! tolerance table.

pub mod error;
pub mod formats;
pub mod interner;
pub mod registry;
pub mod sha256;
pub mod store;
pub mod verify;

pub use error::DatasetError;
pub use formats::{ingest_files, Format, IngestStats, Ingested};
pub use interner::Interner;
pub use registry::{
    registry, resolve, DataProvenance, DatasetEntry, ReferenceStats, Source, Tolerances,
};
pub use store::{fetch, load, Cache, FetchAction, FetchOutcome, LoadOptions, LoadedDataset};
pub use verify::{verify, StatCheck, VerifyReport, DEFAULT_CPL_SOURCES};
