//! Real-dataset subsystem: registry, streaming ingestion, and verified
//! real-graph evaluation.
//!
//! This crate turns the paper's Table II datasets from synthetic
//! stand-ins into real graphs the pipeline can ingest and verify:
//!
//! * [`registry`] — one manifest entry per dataset name, covering both
//!   real file-backed datasets (with SHA-256 checksums and published
//!   stats) and the six synthetic stand-ins from `cpgan_data`, so
//!   `citeseer` and `citeseer-synthetic` resolve uniformly;
//! * [`formats`] — streaming parsers for SNAP edge lists and linqs
//!   `.cites`/`.content` files, layered on the two-pass
//!   `Graph::from_edge_stream` builder so ingestion never materializes an
//!   in-memory edge `Vec`;
//! * [`store`] — the local cache (`$CPGAN_DATA_DIR`), checksum-verified
//!   fetching with a strictly offline mode backed by vendored fixtures,
//!   and the uniform [`store::load`] entry point;
//! * [`verify`] — recomputes n/m/mean-degree/Gini/PWE/CPL and diffs them
//!   against the published values under per-stat tolerances
//!   (`cpgan data verify`).
//!
//! See DESIGN.md §15 for formats, the checksum/offline model, and the
//! tolerance table.

pub mod error;
pub mod formats;
pub mod interner;
pub mod registry;
pub mod sha256;
pub mod store;
pub mod verify;

pub use error::DatasetError;
pub use formats::{ingest_files, Format, IngestStats, Ingested};
pub use interner::Interner;
pub use registry::{registry, resolve, DatasetEntry, PublishedStats, Source, Tolerances};
pub use store::{fetch, load, Cache, FetchAction, FetchOutcome, LoadOptions, LoadedDataset};
pub use verify::{verify, StatCheck, VerifyReport, DEFAULT_CPL_SOURCES};
