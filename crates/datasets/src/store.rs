//! Local dataset cache, fetching, and the uniform load path.
//!
//! The cache directory is `$CPGAN_DATA_DIR` (falling back to
//! `./data-cache`), one subdirectory per dataset. `fetch` places files
//! there and verifies checksums; `load` is the single entry point that
//! turns any registry entry — real or synthetic — into a graph.
//!
//! This build has no network stack, so remote files are never downloaded:
//! in offline mode they are a typed [`DatasetError::OfflineRemote`], and
//! online they produce [`DatasetError::ManualDownload`] instructions.
//! The vendored `citeseer-fixture`/`cora-fixture` surrogates (synthetic
//! graphs generated in-repo — not linqs data) make the offline path
//! fully self-contained for tests and CI; the real upstream entries
//! require manually downloaded files.

use crate::registry::{DatasetEntry, Provenance, Source};
use crate::{formats, sha256, DatasetError, IngestStats};
use cpgan_data::datasets;
use cpgan_graph::{DuplicatePolicy, Graph, SelfLoopPolicy};
use std::path::{Path, PathBuf};

/// The on-disk dataset cache.
#[derive(Debug, Clone)]
pub struct Cache {
    root: PathBuf,
}

impl Cache {
    /// Resolves the cache root: `explicit` > `$CPGAN_DATA_DIR` >
    /// `./data-cache`.
    pub fn resolve(explicit: Option<&Path>) -> Cache {
        let root = explicit.map(Path::to_path_buf).unwrap_or_else(|| {
            std::env::var_os("CPGAN_DATA_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("data-cache"))
        });
        Cache { root }
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where `file` of `dataset` lives inside the cache.
    pub fn file_path(&self, dataset: &str, file: &str) -> PathBuf {
        self.root.join(dataset).join(file)
    }

    /// Dataset subdirectories currently present, sorted (scanning a
    /// directory without sorting is exactly what the `unsorted-dir-walk`
    /// lint forbids).
    pub fn scan(&self) -> Result<Vec<String>, DatasetError> {
        if !self.root.is_dir() {
            return Ok(Vec::new());
        }
        let rd = std::fs::read_dir(&self.root).map_err(|e| DatasetError::io(&self.root, e))?;
        let mut names = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| DatasetError::io(&self.root, e))?;
            let path = entry.path();
            if path.is_dir() {
                if let Some(name) = path.file_name().and_then(|s| s.to_str()) {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

/// What `fetch` did for one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchAction {
    /// Present in the cache with a matching checksum.
    AlreadyCached,
    /// Copied from the vendored fixture set and checksum-verified.
    CopiedFixture,
}

/// Per-file fetch report.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// File name inside the dataset cache dir.
    pub file: String,
    /// What happened.
    pub action: FetchAction,
}

/// Directory holding the vendored fixtures. Overridable via
/// `$CPGAN_FIXTURES` for relocated checkouts; defaults to this crate's
/// `fixtures/` directory.
fn fixtures_dir() -> PathBuf {
    std::env::var_os("CPGAN_FIXTURES")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures"))
}

/// Ensures every file of `entry` is present in `cache` with a verified
/// checksum. Synthetic entries need no files and return an empty list.
pub fn fetch(
    entry: &DatasetEntry,
    cache: &Cache,
    offline: bool,
) -> Result<Vec<FetchOutcome>, DatasetError> {
    let Source::Files { files } = &entry.source else {
        return Ok(Vec::new());
    };
    let mut outcomes = Vec::with_capacity(files.len());
    for file in files {
        let dest = cache.file_path(&entry.name, file.name);
        let action = if dest.is_file() {
            verify_checksum(&dest, file.sha256)?;
            FetchAction::AlreadyCached
        } else {
            match file.provenance {
                Provenance::Vendored(fixture) => {
                    let src = fixtures_dir().join(fixture);
                    if !src.is_file() {
                        return Err(DatasetError::MissingFixture {
                            path: src.display().to_string(),
                        });
                    }
                    if let Some(parent) = dest.parent() {
                        std::fs::create_dir_all(parent).map_err(|e| DatasetError::io(parent, e))?;
                    }
                    std::fs::copy(&src, &dest).map_err(|e| DatasetError::io(&dest, e))?;
                    verify_checksum(&dest, file.sha256)?;
                    FetchAction::CopiedFixture
                }
                Provenance::Remote(url) => {
                    if offline {
                        return Err(DatasetError::OfflineRemote {
                            dataset: entry.name.clone(),
                            file: file.name.to_string(),
                            url: url.to_string(),
                        });
                    }
                    return Err(DatasetError::ManualDownload {
                        url: url.to_string(),
                        dest: dest.display().to_string(),
                    });
                }
            }
        };
        outcomes.push(FetchOutcome {
            file: file.name.to_string(),
            action,
        });
    }
    Ok(outcomes)
}

fn verify_checksum(path: &Path, expected: Option<&str>) -> Result<(), DatasetError> {
    let Some(expected) = expected else {
        return Ok(()); // remote file with unknown digest: stats still gate it
    };
    let actual = sha256::hex_digest_file(path)?;
    if actual != expected {
        return Err(DatasetError::ChecksumMismatch {
            file: path.display().to_string(),
            expected: expected.to_string(),
            actual,
        });
    }
    Ok(())
}

/// Options for [`load`].
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Cache root override (else `$CPGAN_DATA_DIR` / `./data-cache`).
    pub data_dir: Option<PathBuf>,
    /// Refuse any source that would need the network.
    pub offline: bool,
    /// Synthetic entries only: size divisor (1 = full scale).
    pub scale: usize,
    /// Synthetic entries only: synthesizer seed.
    pub seed: u64,
    /// Self-loop policy for ingestion.
    pub loops: SelfLoopPolicy,
    /// Duplicate-edge policy for ingestion.
    pub dups: DuplicatePolicy,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            data_dir: None,
            offline: false,
            scale: 1,
            seed: 1,
            loops: SelfLoopPolicy::Drop,
            dups: DuplicatePolicy::Merge,
        }
    }
}

/// A loaded dataset, whatever its source.
#[derive(Debug, Clone)]
pub struct LoadedDataset {
    /// Registry name.
    pub name: String,
    /// Paper display name.
    pub title: String,
    /// The graph.
    pub graph: Graph,
    /// Ground-truth community labels (stand-in entries only).
    pub communities: Option<Vec<usize>>,
    /// Class label per node from a `.content` file (file-backed entries only).
    pub node_labels: Option<Vec<String>>,
    /// Ingestion counters (file-backed entries only).
    pub ingest: Option<IngestStats>,
}

/// Loads `entry` into a graph: fetch + checksum + streaming ingest for
/// file-backed datasets (upstream or surrogate), deterministic synthesis
/// for stand-ins.
pub fn load(entry: &DatasetEntry, opts: &LoadOptions) -> Result<LoadedDataset, DatasetError> {
    match &entry.source {
        Source::Files { files } => {
            let cache = Cache::resolve(opts.data_dir.as_deref());
            fetch(entry, &cache, opts.offline)?;
            let paths: Vec<(PathBuf, crate::Format)> = files
                .iter()
                .map(|f| (cache.file_path(&entry.name, f.name), f.format))
                .collect();
            let ingested = formats::ingest_files(&paths, opts.loops, opts.dups)?;
            Ok(LoadedDataset {
                name: entry.name.clone(),
                title: entry.title.clone(),
                graph: ingested.graph,
                communities: None,
                node_labels: ingested.labels,
                ingest: Some(ingested.stats),
            })
        }
        Source::Synthetic { spec } => {
            let ds = datasets::synthesize(spec, opts.scale.max(1), opts.seed);
            Ok(LoadedDataset {
                name: entry.name.clone(),
                title: entry.title.clone(),
                graph: ds.graph,
                communities: Some(ds.labels),
                node_labels: None,
                ingest: None,
            })
        }
    }
}
