//! Regenerates the vendored *synthetic surrogate* fixtures
//! (`citeseer-fixture`, `cora-fixture`) deterministically.
//!
//! Usage: `cargo run --release -p cpgan-datasets --bin gen_fixtures`
//!
//! The fixtures are generated graphs, not the real linqs datasets: for
//! each one this designs a degree sequence aimed at the upstream entry's
//! published n/m/Gini/PWE (head of low-degree nodes plus a power-law
//! tail sampled by the CSN quantile recipe), realizes it as a simple
//! graph via Havel–Hakimi, randomizes the wiring with degree-preserving
//! double-edge swaps, and writes the file in its native on-disk format
//! (linqs `.cites` with string ids for citeseer, SNAP numeric edge list
//! for cora). It then re-ingests each file and prints its measured
//! reference stats and SHA-256 digest — after regenerating, pin both
//! into the `-fixture` entries of `registry.rs` (the registry records
//! the fixture's *own* measurements, so `cpgan data verify` gates
//! ingestion fidelity rather than pretending the surrogate is real
//! data).
//!
//! Everything is seeded; re-running reproduces the files byte-for-byte.

use cpgan_datasets::{formats, registry, sha256, verify, DatasetError, Format};
use cpgan_graph::stats::{gini, powerlaw};
use cpgan_graph::{DuplicatePolicy, SelfLoopPolicy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::io::Write as _;
use std::path::{Path, PathBuf};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gen_fixtures: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

struct Target {
    n: usize,
    m: usize,
    gini: f64,
    pwe: f64,
    /// Isolated-node counts to sweep (emitted as self-loop-only lines:
    /// interned as nodes, dropped as edges — like real citation files).
    zeros: (usize, usize),
    /// Tail-size candidates to sweep.
    tail_range: (usize, usize),
    /// Head base-degree candidates to sweep.
    bases: (usize, usize),
    /// Degree clip for the tail (keeps alpha < 2 tails finite).
    d_max: usize,
}

fn run() -> Result<(), String> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;

    // Design targets come from the upstream entries' published rows; the
    // written files are verified against the `-fixture` entries.
    let citeseer = registry::resolve("citeseer").map_err(|e| e.to_string())?;
    let cora = registry::resolve("cora").map_err(|e| e.to_string())?;

    let cs_target = Target {
        n: citeseer.reference.n,
        m: citeseer.reference.m,
        gini: citeseer.reference.gini,
        pwe: citeseer.reference.pwe,
        zeros: (0, 900),
        tail_range: (100, 1200),
        bases: (1, 2),
        d_max: 150,
    };
    let cs_edges = build_graph(&cs_target, 0xC17E_5EE8)?;
    let cs_path = dir.join("citeseer.cites");
    write_cites(&cs_path, cs_target.n, &cs_edges, 0xC17E_5EE9)
        .map_err(|e| format!("write {}: {e}", cs_path.display()))?;
    report("citeseer-fixture", &cs_path, Format::LinqsCites).map_err(|e| e.to_string())?;

    let cora_target = Target {
        n: cora.reference.n,
        m: cora.reference.m,
        gini: cora.reference.gini,
        pwe: cora.reference.pwe,
        zeros: (0, 300),
        tail_range: (100, 1200),
        bases: (1, 3),
        d_max: 150,
    };
    let cora_edges = build_graph(&cora_target, 0x0C0A_0001)?;
    let cora_path = dir.join("cora-edges.txt");
    write_snap(&cora_path, cora_target.n, &cora_edges, 0x0C0A_0002)
        .map_err(|e| format!("write {}: {e}", cora_path.display()))?;
    report("cora-fixture", &cora_path, Format::SnapEdges).map_err(|e| e.to_string())?;

    Ok(())
}

/// Designs a degree sequence for `t` and realizes it as a simple graph.
fn build_graph(t: &Target, seed: u64) -> Result<Vec<(u32, u32)>, String> {
    let seq = design_sequence(t)?;
    let sum: usize = seq.iter().sum();
    if sum != 2 * t.m {
        return Err(format!("degree sum {sum} != 2m = {}", 2 * t.m));
    }
    let mut edges = havel_hakimi(&seq)?;
    rewire(&mut edges, 20 * t.m, &mut StdRng::seed_from_u64(seed));
    Ok(edges)
}

/// Sweeps isolated-node counts, tail sizes, tail cutoffs, and head base
/// degrees for the sequence whose Gini and KS-PWE land closest to the
/// published targets. All four knobs trade off against each other under
/// the fixed stub budget `2m`, so a plain grid is the honest search.
fn design_sequence(t: &Target) -> Result<Vec<usize>, String> {
    let total = 2 * t.m;
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut zeros = t.zeros.0;
    while zeros <= t.zeros.1 {
        let mut n_tail = t.tail_range.0;
        while n_tail <= t.tail_range.1 {
            for base in t.bases.0..=t.bases.1 {
                let mut x_min = 1.5f64;
                while x_min <= 9.5 {
                    if let Some(seq) = assemble(t, zeros, n_tail, x_min, base, total) {
                        let g = gini::gini_coefficient(&seq);
                        let p = powerlaw::powerlaw_exponent_ks(&seq);
                        let score = (g - t.gini).abs() / 0.05 + (p - t.pwe).abs() / 0.45;
                        if best.as_ref().is_none_or(|(s, _)| score < *s) {
                            best = Some((score, seq));
                        }
                    }
                    x_min += 0.5;
                }
            }
            n_tail += 50;
        }
        zeros += 50;
    }
    let (score, seq) = best.ok_or("no feasible degree sequence in the sweep range")?;
    if score > 1.6 {
        return Err(format!("best sequence misses targets (score {score:.2})"));
    }
    Ok(seq)
}

/// One candidate sequence: `zeros` isolated nodes, a CSN power-law tail
/// of `n_tail` nodes above the continuous cutoff `x_min` with the
/// target exponent, and a head of base-degree nodes absorbing whatever
/// stub budget remains (bumped to `base + 1` where needed to hit the sum
/// exactly; the largest hub absorbs any residual shortfall).
fn assemble(
    t: &Target,
    zeros: usize,
    n_tail: usize,
    x_min: f64,
    base: usize,
    total: usize,
) -> Option<Vec<usize>> {
    if zeros + n_tail + 1 >= t.n {
        return None;
    }
    let mut tail = Vec::with_capacity(n_tail);
    let mut tail_sum = 0usize;
    for i in 0..n_tail {
        // CSN discrete quantile: d = floor(x_min (1-u)^(-1/(a-1)) + 1/2).
        let u = (i as f64 + 0.5) / n_tail as f64;
        let d = (x_min * (1.0 - u).powf(-1.0 / (t.pwe - 1.0)) + 0.5).floor();
        let d = (d as usize).clamp(1, t.d_max);
        tail_sum += d;
        tail.push(d);
    }
    let head_n = t.n - zeros - n_tail;
    let head_sum = total.checked_sub(tail_sum)?;
    if head_sum < head_n * base || head_sum > head_n * (base + 1) {
        return None;
    }
    // Degrees base / base+1 hit any integer head sum in range exactly.
    let bumped = head_sum - head_n * base;
    let mut seq = vec![0usize; zeros];
    seq.extend(tail);
    seq.extend(std::iter::repeat_n(base + 1, bumped));
    seq.extend(std::iter::repeat_n(base, head_n - bumped));
    Some(seq)
}

/// Havel–Hakimi: realizes a graphical degree sequence as a simple graph.
fn havel_hakimi(seq: &[usize]) -> Result<Vec<(u32, u32)>, String> {
    let mut residual: Vec<(usize, u32)> = seq
        .iter()
        .enumerate()
        .map(|(v, &d)| (d, v as u32))
        .collect();
    let m: usize = seq.iter().sum::<usize>() / 2;
    let mut edges = Vec::with_capacity(m);
    loop {
        // Highest residual degree first; id tiebreak keeps this deterministic.
        residual.sort_unstable_by(|a, b| b.cmp(a));
        let (d, v) = residual[0];
        if d == 0 {
            break;
        }
        if d >= residual.len() {
            return Err("sequence is not graphical (degree exceeds peers)".to_string());
        }
        residual[0].0 = 0;
        for peer in residual.iter_mut().skip(1).take(d) {
            if peer.0 == 0 {
                return Err("sequence is not graphical (ran out of stubs)".to_string());
            }
            peer.0 -= 1;
            edges.push((v.min(peer.1), v.max(peer.1)));
        }
    }
    Ok(edges)
}

/// Degree-preserving double-edge swaps (uniformizes the HH wiring).
fn rewire(edges: &mut [(u32, u32)], attempts: usize, rng: &mut StdRng) {
    let mut present: HashSet<(u32, u32)> = edges.iter().copied().collect();
    for _ in 0..attempts {
        let i = rng.gen_range(0..edges.len());
        let j = rng.gen_range(0..edges.len());
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        // Propose (a,d) + (c,b), flipping one pair half the time so both
        // swap orientations are reachable.
        let (c, d) = if rng.gen_bool(0.5) { (d, c) } else { (c, d) };
        let e1 = (a.min(d), a.max(d));
        let e2 = (c.min(b), c.max(b));
        if a == d || c == b || present.contains(&e1) || present.contains(&e2) || e1 == e2 {
            continue;
        }
        present.remove(&edges[i]);
        present.remove(&edges[j]);
        present.insert(e1);
        present.insert(e2);
        edges[i] = e1;
        edges[j] = e2;
    }
}

/// Nodes with no incident edge. They still must appear in the file for
/// the interner to count them, so the writers emit them as self-loop
/// lines (dropped at ingest under `SelfLoopPolicy::Drop`, exactly like
/// self-citations in the real files).
fn isolated(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut seen = vec![false; n];
    for &(u, v) in edges {
        seen[u as usize] = true;
        seen[v as usize] = true;
    }
    (0..n as u32).filter(|&v| !seen[v as usize]).collect()
}

/// Writes a linqs `.cites` file: string paper ids, one directed citation
/// per line, shuffled order; isolated papers appear as self-citations.
fn write_cites(
    path: &Path,
    n: usize,
    edges: &[(u32, u32)],
    seed: u64,
) -> Result<(), std::io::Error> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = paper_ids(n, &mut rng);
    let mut lines: Vec<String> = edges
        .iter()
        .map(|&(u, v)| {
            let (u, v) = if rng.gen_bool(0.5) { (v, u) } else { (u, v) };
            format!("{}\t{}\n", ids[u as usize], ids[v as usize])
        })
        .collect();
    for v in isolated(n, edges) {
        lines.push(format!("{}\t{}\n", ids[v as usize], ids[v as usize]));
    }
    lines.shuffle(&mut rng);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for line in lines {
        f.write_all(line.as_bytes())?;
    }
    f.flush()
}

/// Writes a SNAP-style numeric edge list with a comment header; isolated
/// nodes appear as self-loop lines.
fn write_snap(
    path: &Path,
    n: usize,
    edges: &[(u32, u32)],
    seed: u64,
) -> Result<(), std::io::Error> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut rng);
    let mut lines: Vec<String> = edges
        .iter()
        .map(|&(u, v)| {
            let (u, v) = if rng.gen_bool(0.5) { (v, u) } else { (u, v) };
            format!("{}\t{}\n", perm[u as usize], perm[v as usize])
        })
        .collect();
    for v in isolated(n, edges) {
        lines.push(format!("{}\t{}\n", perm[v as usize], perm[v as usize]));
    }
    lines.shuffle(&mut rng);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(
        b"# Synthetic surrogate graph (generated in-repo by gen_fixtures; not real data)\n",
    )?;
    f.write_all(format!("# Nodes: {} Edges: {}\n", n, edges.len()).as_bytes())?;
    for line in lines {
        f.write_all(line.as_bytes())?;
    }
    f.flush()
}

/// Deterministic pseudo paper-id tokens (string ids exercise interning).
fn paper_ids(n: usize, rng: &mut StdRng) -> Vec<String> {
    let mut nums: Vec<u32> = (0..n as u32).collect();
    nums.shuffle(rng);
    nums.iter()
        .map(|x| format!("cs{:06}", 100_000 + x))
        .collect()
}

/// Re-ingests the written file, diffs it against the `-fixture` registry
/// entry, and prints the measured stats + digest to pin in `registry.rs`.
fn report(name: &str, path: &Path, format: Format) -> Result<(), DatasetError> {
    let entry = registry::resolve(name)?;
    let files: Vec<(PathBuf, Format)> = vec![(path.to_path_buf(), format)];
    let ingested = formats::ingest_files(&files, SelfLoopPolicy::Drop, DuplicatePolicy::Merge)?;
    let report = verify::verify(entry, &ingested.graph, verify::DEFAULT_CPL_SOURCES);
    println!("{}", report.render());
    println!("  pin the measured column above as `{name}`'s recorded reference stats");
    let digest = sha256::hex_digest_file(path)?;
    println!("  sha256(\"{}\") = {digest}\n", path.display());
    Ok(())
}
