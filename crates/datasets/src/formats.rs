//! Streaming parsers for the public dataset formats.
//!
//! Two families cover every file the registry names:
//!
//! * **SNAP edge lists** (`web-Google.txt`, `soc-Epinions1.txt`, and this
//!   repo's own interchange format): one `u v` pair of integer ids per
//!   line, `#`/`%` comment lines, tab or space separated.
//! * **linqs citation files**: `.cites` files are `citing cited` pairs of
//!   *string* paper ids; `.content` files are `id <features...> label`
//!   rows that contribute node ids and class labels but no edges.
//!
//! All node ids — numeric or not — are interned to dense `u32` ids in
//! first-appearance order (deterministic for a given file set). Directed
//! inputs are symmetrized by construction: `(u, v)` and `(v, u)` collapse
//! onto the same undirected edge under [`DuplicatePolicy::Merge`].
//!
//! Ingestion is two-phase and never materializes an edge `Vec`:
//!
//! 1. a validation scan parses every line (typed [`DatasetError::Parse`]
//!    on malformed input — blank lines and CRLF are tolerated, truncated
//!    records and non-numeric SNAP ids are not) and builds the interner;
//! 2. [`Graph::from_edge_stream`] re-reads the files twice (degree count,
//!    then CSR scatter), so peak memory is the CSR arrays plus the
//!    interner, independent of how the edges arrive on disk.

use crate::{DatasetError, Interner};
use cpgan_graph::{DuplicatePolicy, Graph, NodeId, SelfLoopPolicy};
use std::fs::File;
use std::io::{BufRead, BufReader, Lines};
use std::path::{Path, PathBuf};

/// On-disk format of one registry file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// SNAP-style integer edge list (`#`/`%` comments).
    SnapEdges,
    /// linqs `.cites`: `citing cited` string-id pairs.
    LinqsCites,
    /// linqs `.content`: `id <features...> label` node rows (no edges).
    LinqsContent,
}

impl Format {
    /// Stable lowercase name (manifest/report rendering).
    pub fn name(self) -> &'static str {
        match self {
            Format::SnapEdges => "snap-edges",
            Format::LinqsCites => "linqs-cites",
            Format::LinqsContent => "linqs-content",
        }
    }

    /// Whether files of this format contribute edges (vs. nodes/labels only).
    pub fn carries_edges(self) -> bool {
        !matches!(self, Format::LinqsContent)
    }
}

/// One parsed line: skipped, an edge, or a labeled node.
enum Record<'a> {
    Skip,
    Edge(&'a str, &'a str),
    Node(&'a str, &'a str),
}

/// Parses one line of `format`. `Err` carries the human-readable reason;
/// the caller attaches file and line number.
fn parse_line(format: Format, raw: &str) -> Result<Record<'_>, String> {
    // Tolerate CRLF endings and stray surrounding whitespace.
    let line = raw.trim();
    if line.is_empty() {
        return Ok(Record::Skip);
    }
    match format {
        Format::SnapEdges => {
            if line.starts_with('#') || line.starts_with('%') {
                return Ok(Record::Skip);
            }
            let mut it = line.split_whitespace();
            let (Some(u), Some(v)) = (it.next(), it.next()) else {
                return Err("expected two node ids".to_string());
            };
            if it.next().is_some() {
                return Err("expected exactly two columns".to_string());
            }
            for tok in [u, v] {
                if tok.parse::<u64>().is_err() {
                    return Err(format!("non-numeric node id '{tok}'"));
                }
            }
            Ok(Record::Edge(u, v))
        }
        Format::LinqsCites => {
            let mut it = line.split_whitespace();
            let (Some(u), Some(v)) = (it.next(), it.next()) else {
                return Err("expected two paper ids".to_string());
            };
            if it.next().is_some() {
                return Err("expected exactly two columns".to_string());
            }
            Ok(Record::Edge(u, v))
        }
        Format::LinqsContent => {
            let mut it = line.split_whitespace();
            let Some(id) = it.next() else {
                return Ok(Record::Skip);
            };
            // `id <features...> label`: the class label is the last column.
            let Some(label) = it.last() else {
                return Err("expected at least an id and a class label".to_string());
            };
            Ok(Record::Node(id, label))
        }
    }
}

/// Counters describing one ingestion run (everything except the graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestStats {
    /// Distinct node ids interned across all files.
    pub nodes: usize,
    /// Edge records parsed (before any policy).
    pub raw_edges: usize,
    /// Self-loop records seen in the raw input, whatever the policy did
    /// with them.
    pub self_loops_seen: usize,
    /// Self-loop records the active [`SelfLoopPolicy`] actually removed
    /// (equal to `self_loops_seen` under `Drop`; a policy that keeps or
    /// rejects loops removes none).
    pub self_loops_dropped: usize,
    /// Records merged away as duplicates or reverse duplicates:
    /// `raw_edges - self_loops_dropped - m`.
    pub duplicates_merged: usize,
    /// Wall-clock nanoseconds spent in the validation scan plus both
    /// builder passes.
    pub parse_ns: u64,
}

/// A fully ingested dataset: the graph, its counters, and (when a
/// `.content` file was present) a class label per dense node id.
#[derive(Debug, Clone)]
pub struct Ingested {
    /// The undirected simple graph.
    pub graph: Graph,
    /// Ingestion counters.
    pub stats: IngestStats,
    /// Interner: dense id -> original token, first-appearance order.
    pub interner: Interner,
    /// Class label per node (empty string when unlabeled).
    pub labels: Option<Vec<String>>,
}

/// Ingests an ordered list of files into one graph.
///
/// The file order defines the interning order (and therefore the dense
/// node numbering); keep it stable. Emits `data.ingest.*` observability
/// counters and a parse-time histogram when collection is enabled.
pub fn ingest_files(
    files: &[(PathBuf, Format)],
    loops: SelfLoopPolicy,
    dups: DuplicatePolicy,
) -> Result<Ingested, DatasetError> {
    let _span = cpgan_obs::span("data.ingest");
    let watch = cpgan_obs::Stopwatch::start();

    // Phase 1: validate every line and intern every id.
    let mut interner = Interner::new();
    let mut raw_edges = 0usize;
    let mut self_loops = 0usize;
    let mut labeled: Vec<(u32, String)> = Vec::new();
    let mut any_content = false;
    for (path, format) in files {
        any_content |= *format == Format::LinqsContent;
        let reader = open(path)?;
        for (idx, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| DatasetError::io(path, e))?;
            let record = parse_line(*format, &line).map_err(|message| DatasetError::Parse {
                file: path.display().to_string(),
                line: idx + 1,
                message,
            })?;
            match record {
                Record::Skip => {}
                Record::Edge(u, v) => {
                    let ui = interner.intern(u)?;
                    let vi = interner.intern(v)?;
                    raw_edges += 1;
                    if ui == vi {
                        self_loops += 1;
                    }
                }
                Record::Node(id, label) => {
                    let i = interner.intern(id)?;
                    labeled.push((i, label.to_string()));
                }
            }
        }
    }

    // Phase 2: two-pass CSR build over a re-opened stream — edges are
    // never collected into a Vec.
    let n = interner.len();
    let graph = Graph::from_edge_stream(n, || EdgeStream::new(files, &interner), loops, dups)?;

    // Loops the policy removed: all of them under `Drop`; a policy that
    // errors on loops only reaches this point when none were seen.
    let self_loops_dropped = match loops {
        SelfLoopPolicy::Drop => self_loops,
        SelfLoopPolicy::Error => 0,
    };
    let stats = IngestStats {
        nodes: n,
        raw_edges,
        self_loops_seen: self_loops,
        self_loops_dropped,
        duplicates_merged: raw_edges
            .saturating_sub(self_loops_dropped)
            .saturating_sub(graph.m()),
        parse_ns: watch.elapsed_ns(),
    };
    cpgan_obs::counter_add("data.ingest.edges", graph.m() as u64);
    cpgan_obs::counter_add(
        "data.ingest.dropped_self_loop",
        stats.self_loops_dropped as u64,
    );
    cpgan_obs::counter_add("data.ingest.dropped_dup", stats.duplicates_merged as u64);
    cpgan_obs::hist_record("data.ingest.parse_ns", stats.parse_ns as f64);

    let labels = any_content.then(|| {
        let mut out = vec![String::new(); n];
        for (i, label) in labeled {
            out[i as usize] = label;
        }
        out
    });
    Ok(Ingested {
        graph,
        stats,
        interner,
        labels,
    })
}

fn open(path: &Path) -> Result<BufReader<File>, DatasetError> {
    Ok(BufReader::new(
        File::open(path).map_err(|e| DatasetError::io(path, e))?,
    ))
}

/// Replayable edge iterator over the edge-bearing files of a set. Both
/// builder passes construct a fresh instance via the
/// [`Graph::from_edge_stream`] closure. Lines were validated in phase 1;
/// anything that no longer parses (the file changed underneath us) is
/// skipped here and caught by the builder's replayability check.
struct EdgeStream<'a> {
    files: &'a [(PathBuf, Format)],
    interner: &'a Interner,
    next_file: usize,
    lines: Option<(Format, Lines<BufReader<File>>)>,
}

impl<'a> EdgeStream<'a> {
    fn new(files: &'a [(PathBuf, Format)], interner: &'a Interner) -> Self {
        EdgeStream {
            files,
            interner,
            next_file: 0,
            lines: None,
        }
    }
}

impl Iterator for EdgeStream<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        loop {
            let Some((format, lines)) = self.lines.as_mut() else {
                // Advance to the next edge-bearing file.
                let (path, format) = loop {
                    let entry = self.files.get(self.next_file)?;
                    self.next_file += 1;
                    if entry.1.carries_edges() {
                        break entry;
                    }
                };
                let Ok(reader) = open(path) else {
                    return None; // replayability check reports the short pass
                };
                self.lines = Some((*format, reader.lines()));
                continue;
            };
            let Some(line) = lines.next() else {
                self.lines = None;
                continue;
            };
            let Ok(line) = line else {
                return None;
            };
            if let Ok(Record::Edge(u, v)) = parse_line(*format, &line) {
                if let (Some(ui), Some(vi)) = (self.interner.get(u), self.interner.get(v)) {
                    return Some((ui, vi));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(format: Format, line: &str) -> Option<(String, String)> {
        match parse_line(format, line) {
            Ok(Record::Edge(u, v)) => Some((u.to_string(), v.to_string())),
            _ => None,
        }
    }

    #[test]
    fn snap_comments_blanks_and_crlf() {
        for skip in ["", "   ", "# comment", "% matrix-market style", "#\r"] {
            assert!(matches!(
                parse_line(Format::SnapEdges, skip),
                Ok(Record::Skip)
            ));
        }
        assert_eq!(
            edge(Format::SnapEdges, "12\t34\r"),
            Some(("12".into(), "34".into()))
        );
    }

    #[test]
    fn snap_rejects_non_numeric_and_truncated() {
        assert!(parse_line(Format::SnapEdges, "a b").is_err());
        assert!(parse_line(Format::SnapEdges, "12").is_err());
        assert!(parse_line(Format::SnapEdges, "1 2 3").is_err());
    }

    #[test]
    fn cites_accepts_string_ids() {
        assert_eq!(
            edge(Format::LinqsCites, "brettonwoods96 oai:CiteSeerPSU:114"),
            Some(("brettonwoods96".into(), "oai:CiteSeerPSU:114".into()))
        );
        assert!(parse_line(Format::LinqsCites, "lonely-id").is_err());
    }

    #[test]
    fn content_takes_first_and_last_columns() {
        match parse_line(Format::LinqsContent, "paper7 0 1 0 1 Agents") {
            Ok(Record::Node(id, label)) => {
                assert_eq!(id, "paper7");
                assert_eq!(label, "Agents");
            }
            _ => panic!("expected a node record"),
        }
        assert!(parse_line(Format::LinqsContent, "only-id").is_err());
    }
}
