//! The manifest-driven dataset registry.
//!
//! One [`DatasetEntry`] per dataset name, covering both kinds of source
//! uniformly:
//!
//! * **real** datasets backed by files (vendored fixtures or remote
//!   downloads) with SHA-256 checksums, a license note, and published
//!   statistics to verify the ingested graph against;
//! * the six **synthetic Table II stand-ins** from
//!   `cpgan_data::datasets`, registered under `<name>-synthetic` so CLI
//!   and eval resolve `citeseer` vs `citeseer-synthetic` through the same
//!   interface instead of special-casing `PAPER_DATASETS`.
//!
//! Published numbers come from two sources, recorded per entry: the
//! paper's Table II row where the dataset appears there (citeseer,
//! pubmed, google and every stand-in), and the exemplar repos' published
//! measurement table (SNIPPETS.md §Data Description) for cora and
//! epinions. Per-stat tolerances live next to the numbers — see
//! DESIGN.md §15 for how each bound was chosen.

use crate::{DatasetError, Format};
use cpgan_data::datasets::{DatasetSpec, PAPER_DATASETS};
use std::sync::OnceLock;

/// Published summary statistics for one dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedStats {
    /// Node count.
    pub n: usize,
    /// Undirected edge count.
    pub m: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Gini coefficient of the degree distribution.
    pub gini: f64,
    /// Power-law exponent of the degree distribution.
    pub pwe: f64,
    /// Characteristic path length, when the source reports one.
    pub cpl: Option<f64>,
}

/// Per-stat absolute tolerances for [`crate::verify`] (relative for `m`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Relative tolerance on the edge count (dedup/symmetrization drift).
    pub m_rel: f64,
    /// Absolute tolerance on mean degree.
    pub mean_degree: f64,
    /// Absolute tolerance on the Gini coefficient.
    pub gini: f64,
    /// Absolute tolerance on the power-law exponent.
    pub pwe: f64,
    /// Absolute tolerance on the characteristic path length.
    pub cpl: f64,
}

/// Where a registry file comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Shipped with the repository under `crates/datasets/fixtures/`.
    Vendored(&'static str),
    /// Must be downloaded from this URL (no network stack in this build —
    /// fetch prints manual instructions).
    Remote(&'static str),
}

/// One file of a real dataset.
#[derive(Debug, Clone, Copy)]
pub struct FileSpec {
    /// File name inside the dataset's cache directory.
    pub name: &'static str,
    /// Parser to apply.
    pub format: Format,
    /// Lowercase-hex SHA-256 of the file; `None` when unknown (remote
    /// files we cannot download to hash — verified stats still gate them).
    pub sha256: Option<&'static str>,
    /// Where the file comes from.
    pub provenance: Provenance,
}

/// How a dataset's graph is obtained.
#[derive(Debug, Clone)]
pub enum Source {
    /// Ingested from files.
    Real {
        /// Ordered file list (order fixes the dense node numbering).
        files: Vec<FileSpec>,
    },
    /// Synthesized by the Table II stand-in generator.
    Synthetic {
        /// The stand-in's spec (published stats + synthesizer knobs).
        spec: &'static DatasetSpec,
    },
}

/// One registry entry.
#[derive(Debug, Clone)]
pub struct DatasetEntry {
    /// Registry name (lowercase; what the CLI and eval resolve).
    pub name: String,
    /// Display name as printed in the paper's tables (for paper-reference
    /// lookups).
    pub title: String,
    /// License / terms-of-use note.
    pub license: &'static str,
    /// Canonical home page of the dataset.
    pub home: &'static str,
    /// Published statistics to verify against.
    pub published: PublishedStats,
    /// Per-stat verification tolerances.
    pub tol: Tolerances,
    /// Files or synthesizer.
    pub source: Source,
}

impl DatasetEntry {
    /// Whether this entry is a synthetic stand-in.
    pub fn is_synthetic(&self) -> bool {
        matches!(self.source, Source::Synthetic { .. })
    }
}

/// SHA-256 of the vendored `citeseer.cites` fixture.
pub const CITESEER_FIXTURE_SHA256: &str = FIXTURE_SHA256_CITESEER;
/// SHA-256 of the vendored `cora-edges.txt` fixture.
pub const CORA_FIXTURE_SHA256: &str = FIXTURE_SHA256_CORA;

// Filled in by `cargo run -p cpgan-datasets --bin gen_fixtures`, which
// regenerates the fixtures deterministically and prints their digests.
const FIXTURE_SHA256_CITESEER: &str =
    "05e171669320022a9fd6c59c692bdc0bba4bcd46a191add73b404f2d4852d6bb";
const FIXTURE_SHA256_CORA: &str =
    "af57d12ac00be977c36c47a517abe9878ae840f349ee7c5764b0e7496bb9397b";

static REGISTRY: OnceLock<Vec<DatasetEntry>> = OnceLock::new();

/// Every registered dataset, real entries first, then the six synthetic
/// stand-ins, each list alphabetical.
pub fn registry() -> &'static [DatasetEntry] {
    REGISTRY.get_or_init(build)
}

/// Resolves a dataset by (case-insensitive) name.
pub fn resolve(name: &str) -> Result<&'static DatasetEntry, DatasetError> {
    registry()
        .iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| DatasetError::UnknownDataset {
            name: name.to_string(),
        })
}

fn build() -> Vec<DatasetEntry> {
    let mut entries = vec![
        DatasetEntry {
            name: "citeseer".to_string(),
            title: "Citeseer".to_string(),
            license: "linqs.org CiteSeer collection — free for research use",
            home: "https://linqs.org/datasets/",
            // Paper Table II row.
            published: PublishedStats {
                n: 3327,
                m: 4732,
                mean_degree: 2.8446,
                gini: 0.6769,
                pwe: 2.8757,
                cpl: Some(5.9389),
            },
            tol: Tolerances {
                m_rel: 0.0,
                mean_degree: 0.01,
                gini: 0.05,
                pwe: 0.45,
                cpl: 2.5,
            },
            source: Source::Real {
                files: vec![FileSpec {
                    name: "citeseer.cites",
                    format: Format::LinqsCites,
                    sha256: Some(FIXTURE_SHA256_CITESEER),
                    provenance: Provenance::Vendored("citeseer.cites"),
                }],
            },
        },
        DatasetEntry {
            name: "cora".to_string(),
            title: "Cora".to_string(),
            license: "linqs.org Cora collection — free for research use",
            home: "https://linqs.org/datasets/",
            // Exemplar measurement table (SNIPPETS.md §Data Description);
            // cora is not in the paper's Table II.
            published: PublishedStats {
                n: 2708,
                m: 5429,
                mean_degree: 3.898,
                gini: 0.405,
                pwe: 1.932,
                cpl: None,
            },
            tol: Tolerances {
                m_rel: 0.0,
                mean_degree: 0.15,
                gini: 0.05,
                pwe: 0.45,
                cpl: 0.0,
            },
            source: Source::Real {
                files: vec![FileSpec {
                    name: "cora-edges.txt",
                    format: Format::SnapEdges,
                    sha256: Some(FIXTURE_SHA256_CORA),
                    provenance: Provenance::Vendored("cora-edges.txt"),
                }],
            },
        },
        DatasetEntry {
            name: "epinions".to_string(),
            title: "Epinions".to_string(),
            license: "SNAP soc-Epinions1 — open web data",
            home: "https://snap.stanford.edu/data/soc-Epinions1.html",
            published: PublishedStats {
                n: 75879,
                m: 508837,
                mean_degree: 10.694,
                gini: 0.805,
                pwe: 2.026,
                cpl: None,
            },
            tol: Tolerances {
                // The SNAP file is directed; symmetrization merges mutual
                // arcs, so the undirected edge count lands below 508837.
                m_rel: 0.25,
                mean_degree: 3.0,
                gini: 0.1,
                pwe: 0.6,
                cpl: 0.0,
            },
            source: Source::Real {
                files: vec![FileSpec {
                    name: "soc-Epinions1.txt",
                    format: Format::SnapEdges,
                    sha256: None,
                    provenance: Provenance::Remote(
                        "https://snap.stanford.edu/data/soc-Epinions1.txt.gz",
                    ),
                }],
            },
        },
        DatasetEntry {
            name: "google".to_string(),
            title: "Google".to_string(),
            license: "SNAP web-Google — released for the 2002 Google programming contest",
            home: "https://snap.stanford.edu/data/web-Google.html",
            // Paper Table II row.
            published: PublishedStats {
                n: 875713,
                m: 4322051,
                mean_degree: 9.871,
                gini: 0.6729,
                pwe: 1.8251,
                cpl: Some(6.3780),
            },
            tol: Tolerances {
                m_rel: 0.02,
                mean_degree: 0.2,
                gini: 0.1,
                pwe: 0.6,
                cpl: 1.5,
            },
            source: Source::Real {
                files: vec![FileSpec {
                    name: "web-Google.txt",
                    format: Format::SnapEdges,
                    sha256: None,
                    provenance: Provenance::Remote(
                        "https://snap.stanford.edu/data/web-Google.txt.gz",
                    ),
                }],
            },
        },
        DatasetEntry {
            name: "pubmed".to_string(),
            title: "PubMed".to_string(),
            license: "linqs.org Pubmed-Diabetes collection — free for research use",
            home: "https://linqs.org/datasets/",
            // Paper Table II row.
            published: PublishedStats {
                n: 19717,
                m: 44338,
                mean_degree: 4.4974,
                gini: 0.8844,
                pwe: 1.4743,
                cpl: Some(6.3369),
            },
            tol: Tolerances {
                m_rel: 0.02,
                mean_degree: 0.2,
                gini: 0.1,
                pwe: 0.6,
                cpl: 1.5,
            },
            source: Source::Real {
                files: vec![FileSpec {
                    name: "Pubmed-Diabetes.DIRECTED.cites.tab",
                    format: Format::LinqsCites,
                    sha256: None,
                    provenance: Provenance::Remote(
                        "https://linqs-data.soe.ucsc.edu/public/Pubmed-Diabetes.tgz",
                    ),
                }],
            },
        },
    ];

    // The six Table II stand-ins, registered under `<slug>-synthetic`.
    for spec in &PAPER_DATASETS {
        entries.push(DatasetEntry {
            name: format!("{}-synthetic", slug(spec.name)),
            title: spec.name.to_string(),
            license: "synthesized in-repo (no external data)",
            home: "crates/data/src/datasets.rs",
            published: PublishedStats {
                n: spec.n,
                m: spec.m,
                mean_degree: spec.mean_degree,
                gini: spec.gini,
                pwe: spec.pwe,
                cpl: Some(spec.cpl),
            },
            // Stand-in fidelity bounds: the synthesizer pins sizes and the
            // tail *ordering*, not each scalar — see DESIGN.md §15.
            tol: Tolerances {
                m_rel: 0.12,
                mean_degree: 1.0,
                gini: 0.35,
                pwe: 1.6,
                cpl: 30.0,
            },
            source: Source::Synthetic { spec },
        });
    }
    entries
}

/// Lowercase, dash-separated form of a display name.
fn slug(name: &str) -> String {
    name.to_ascii_lowercase().replace(' ', "-")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_real_and_synthetic_uniformly() {
        assert!(!resolve("citeseer").unwrap().is_synthetic());
        assert!(resolve("Citeseer").unwrap().name == "citeseer");
        assert!(resolve("citeseer-synthetic").unwrap().is_synthetic());
        assert!(resolve("3d-point-cloud-synthetic").unwrap().is_synthetic());
        assert!(resolve("nope").is_err());
    }

    #[test]
    fn every_paper_dataset_has_a_synthetic_entry() {
        for spec in &PAPER_DATASETS {
            let name = format!("{}-synthetic", slug(spec.name));
            let e = resolve(&name).unwrap();
            assert_eq!(e.published.n, spec.n);
            assert_eq!(e.title, spec.name);
        }
    }

    #[test]
    fn registry_names_are_unique_and_lowercase() {
        let names: Vec<&str> = registry().iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate names: {names:?}");
        assert!(names.iter().all(|n| *n == n.to_ascii_lowercase()));
    }
}
