//! The manifest-driven dataset registry.
//!
//! One [`DatasetEntry`] per dataset name. Three provenance classes cover
//! every entry, and the class is recorded explicitly so downstream
//! consumers (`cpgan data list`, eval, docs) can never mistake one for
//! another:
//!
//! * **upstream** datasets backed by the real distribution files
//!   (`citeseer`, `cora`, `epinions`, `google`, `pubmed`). This build has
//!   no network stack, so their files must be placed in the cache by
//!   hand; once present they are ingested and verified against the
//!   published statistics.
//! * **fixture surrogates** (`citeseer-fixture`, `cora-fixture`):
//!   synthetic graphs generated in-repo by the `gen_fixtures` bin
//!   (degree-sequence design + Havel–Hakimi + rewiring) and vendored
//!   under `crates/datasets/fixtures/`. They contain **no upstream
//!   data** — they exist so the ingestion/eval pipeline is exercisable
//!   offline. Their reference stats are *recorded measurements of the
//!   fixture itself* (pinned at generation time), so `verify` gates
//!   ingestion fidelity, not real-graph fidelity.
//! * the six **synthetic Table II stand-ins** from
//!   `cpgan_data::datasets`, registered under `<name>-synthetic`, so CLI
//!   and eval resolve every flavor through the same interface instead of
//!   special-casing `PAPER_DATASETS`.
//!
//! Reference numbers come from three sources, one per provenance class:
//! the paper's Table II row (or the exemplar repos' measurement table,
//! SNIPPETS.md §Data Description) for upstream entries; recorded
//! generation-time measurements for the fixtures; and the stand-in
//! specs' published targets for the synthetic entries. Per-stat
//! tolerances live next to the numbers — see DESIGN.md §15 for how each
//! bound was chosen.

use crate::{DatasetError, Format};
use cpgan_data::datasets::{DatasetSpec, PAPER_DATASETS};
use std::sync::OnceLock;

/// Reference summary statistics for one dataset: published values for
/// upstream entries, recorded fixture measurements for surrogates, the
/// stand-in spec's targets for synthetic entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceStats {
    /// Node count.
    pub n: usize,
    /// Undirected edge count.
    pub m: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Gini coefficient of the degree distribution.
    pub gini: f64,
    /// Power-law exponent of the degree distribution.
    pub pwe: f64,
    /// Characteristic path length, when the source reports one.
    pub cpl: Option<f64>,
}

/// Per-stat absolute tolerances for [`crate::verify`] (relative for `m`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Relative tolerance on the edge count (dedup/symmetrization drift).
    pub m_rel: f64,
    /// Absolute tolerance on mean degree.
    pub mean_degree: f64,
    /// Absolute tolerance on the Gini coefficient.
    pub gini: f64,
    /// Absolute tolerance on the power-law exponent.
    pub pwe: f64,
    /// Absolute tolerance on the characteristic path length.
    pub cpl: f64,
}

/// Where a registry file comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Shipped with the repository under `crates/datasets/fixtures/`.
    Vendored(&'static str),
    /// Must be downloaded from this URL (no network stack in this build —
    /// fetch prints manual instructions).
    Remote(&'static str),
}

/// Where an entry's *graph data* comes from — distinct from the per-file
/// [`Provenance`], this classifies whether the data is real at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataProvenance {
    /// The real upstream distribution files (manual download in this
    /// network-less build).
    Upstream,
    /// A synthetic surrogate generated in-repo by `gen_fixtures` and
    /// vendored as files; contains no upstream data.
    FixtureSurrogate,
    /// Synthesized at load time by the Table II stand-in generator.
    Synthesized,
}

impl DataProvenance {
    /// Stable lowercase label for CLI/report rendering.
    pub fn label(self) -> &'static str {
        match self {
            DataProvenance::Upstream => "real",
            DataProvenance::FixtureSurrogate => "surrogate",
            DataProvenance::Synthesized => "synthetic",
        }
    }

    /// Whether the entry's graph is real upstream data (as opposed to a
    /// generated surrogate or stand-in).
    pub fn is_real_data(self) -> bool {
        matches!(self, DataProvenance::Upstream)
    }
}

/// One file of a file-backed dataset.
#[derive(Debug, Clone, Copy)]
pub struct FileSpec {
    /// File name inside the dataset's cache directory.
    pub name: &'static str,
    /// Parser to apply.
    pub format: Format,
    /// Lowercase-hex SHA-256 of the file; `None` when unknown (remote
    /// files we cannot download to hash — verified stats still gate them).
    pub sha256: Option<&'static str>,
    /// Where the file comes from.
    pub provenance: Provenance,
}

/// How a dataset's graph is obtained.
#[derive(Debug, Clone)]
pub enum Source {
    /// Ingested from files.
    Files {
        /// Ordered file list (order fixes the dense node numbering).
        files: Vec<FileSpec>,
    },
    /// Synthesized by the Table II stand-in generator.
    Synthetic {
        /// The stand-in's spec (published stats + synthesizer knobs).
        spec: &'static DatasetSpec,
    },
}

/// One registry entry.
#[derive(Debug, Clone)]
pub struct DatasetEntry {
    /// Registry name (lowercase; what the CLI and eval resolve).
    pub name: String,
    /// Display name for rendered tables; surrogate/stand-in entries carry
    /// the suffix so no table can silently present them as real data.
    pub title: String,
    /// What the graph data is (real upstream / in-repo surrogate /
    /// synthesized stand-in).
    pub data: DataProvenance,
    /// License / terms-of-use note (for surrogates: where the generator
    /// lives — there is no upstream license because there is no upstream
    /// data).
    pub license: &'static str,
    /// Canonical home of the dataset (generator path for surrogates).
    pub home: &'static str,
    /// Reference statistics to verify against (see [`ReferenceStats`]).
    pub reference: ReferenceStats,
    /// Per-stat verification tolerances.
    pub tol: Tolerances,
    /// Files or synthesizer.
    pub source: Source,
}

impl DatasetEntry {
    /// Whether this entry's graph is generated rather than real upstream
    /// data (true for fixture surrogates and `-synthetic` stand-ins).
    pub fn is_synthetic(&self) -> bool {
        !self.data.is_real_data()
    }

    /// Whether this entry is ingested from files (vs synthesized at load
    /// time), independent of whether those files are real or surrogate.
    pub fn is_file_backed(&self) -> bool {
        matches!(self.source, Source::Files { .. })
    }
}

/// SHA-256 of the vendored `citeseer.cites` surrogate fixture.
pub const CITESEER_FIXTURE_SHA256: &str = FIXTURE_SHA256_CITESEER;
/// SHA-256 of the vendored `cora-edges.txt` surrogate fixture.
pub const CORA_FIXTURE_SHA256: &str = FIXTURE_SHA256_CORA;

// Pinned by `cargo run -p cpgan-datasets --bin gen_fixtures`, which
// regenerates the surrogate fixtures deterministically and prints their
// digests and measured reference stats.
const FIXTURE_SHA256_CITESEER: &str =
    "05e171669320022a9fd6c59c692bdc0bba4bcd46a191add73b404f2d4852d6bb";
const FIXTURE_SHA256_CORA: &str =
    "bf5c1614c82fa7f6dbcb575bee24217a36a2d9c25cb5ac60042ce9f2841b4981";

static REGISTRY: OnceLock<Vec<DatasetEntry>> = OnceLock::new();

/// Every registered dataset: upstream entries, then the vendored
/// surrogate fixtures, then the six synthetic stand-ins, each group
/// alphabetical.
pub fn registry() -> &'static [DatasetEntry] {
    REGISTRY.get_or_init(build)
}

/// Resolves a dataset by (case-insensitive) name.
pub fn resolve(name: &str) -> Result<&'static DatasetEntry, DatasetError> {
    registry()
        .iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| DatasetError::UnknownDataset {
            name: name.to_string(),
        })
}

fn build() -> Vec<DatasetEntry> {
    let mut entries = vec![
        DatasetEntry {
            name: "citeseer".to_string(),
            title: "Citeseer".to_string(),
            data: DataProvenance::Upstream,
            license: "linqs.org CiteSeer collection — free for research use",
            home: "https://linqs.org/datasets/",
            // Paper Table II row.
            reference: ReferenceStats {
                n: 3327,
                m: 4732,
                mean_degree: 2.8446,
                gini: 0.6769,
                pwe: 2.8757,
                cpl: Some(5.9389),
            },
            tol: Tolerances {
                m_rel: 0.0,
                mean_degree: 0.01,
                gini: 0.05,
                pwe: 0.45,
                // Estimator drift only: 512-source sampled BFS over
                // reachable pairs vs the published figure.
                cpl: 1.0,
            },
            source: Source::Files {
                files: vec![FileSpec {
                    name: "citeseer.cites",
                    format: Format::LinqsCites,
                    sha256: None,
                    provenance: Provenance::Remote(
                        "https://linqs-data.soe.ucsc.edu/public/lbc/citeseer.tgz",
                    ),
                }],
            },
        },
        DatasetEntry {
            name: "cora".to_string(),
            title: "Cora".to_string(),
            data: DataProvenance::Upstream,
            license: "linqs.org Cora collection — free for research use",
            home: "https://linqs.org/datasets/",
            // Exemplar measurement table (SNIPPETS.md §Data Description);
            // cora is not in the paper's Table II.
            reference: ReferenceStats {
                n: 2708,
                m: 5429,
                mean_degree: 3.898,
                gini: 0.405,
                pwe: 1.932,
                cpl: None,
            },
            tol: Tolerances {
                m_rel: 0.0,
                mean_degree: 0.15,
                gini: 0.05,
                pwe: 0.45,
                cpl: 0.0,
            },
            source: Source::Files {
                files: vec![FileSpec {
                    name: "cora.cites",
                    format: Format::LinqsCites,
                    sha256: None,
                    provenance: Provenance::Remote(
                        "https://linqs-data.soe.ucsc.edu/public/lbc/cora.tgz",
                    ),
                }],
            },
        },
        DatasetEntry {
            name: "epinions".to_string(),
            title: "Epinions".to_string(),
            data: DataProvenance::Upstream,
            license: "SNAP soc-Epinions1 — open web data",
            home: "https://snap.stanford.edu/data/soc-Epinions1.html",
            reference: ReferenceStats {
                n: 75879,
                m: 508837,
                mean_degree: 10.694,
                gini: 0.805,
                pwe: 2.026,
                cpl: None,
            },
            tol: Tolerances {
                // The SNAP file is directed; symmetrization merges mutual
                // arcs, so the undirected edge count lands below 508837.
                m_rel: 0.25,
                mean_degree: 3.0,
                gini: 0.1,
                pwe: 0.6,
                cpl: 0.0,
            },
            source: Source::Files {
                files: vec![FileSpec {
                    name: "soc-Epinions1.txt",
                    format: Format::SnapEdges,
                    sha256: None,
                    provenance: Provenance::Remote(
                        "https://snap.stanford.edu/data/soc-Epinions1.txt.gz",
                    ),
                }],
            },
        },
        DatasetEntry {
            name: "google".to_string(),
            title: "Google".to_string(),
            data: DataProvenance::Upstream,
            license: "SNAP web-Google — released for the 2002 Google programming contest",
            home: "https://snap.stanford.edu/data/web-Google.html",
            // Paper Table II row.
            reference: ReferenceStats {
                n: 875713,
                m: 4322051,
                mean_degree: 9.871,
                gini: 0.6729,
                pwe: 1.8251,
                cpl: Some(6.3780),
            },
            tol: Tolerances {
                m_rel: 0.02,
                mean_degree: 0.2,
                gini: 0.1,
                pwe: 0.6,
                cpl: 1.5,
            },
            source: Source::Files {
                files: vec![FileSpec {
                    name: "web-Google.txt",
                    format: Format::SnapEdges,
                    sha256: None,
                    provenance: Provenance::Remote(
                        "https://snap.stanford.edu/data/web-Google.txt.gz",
                    ),
                }],
            },
        },
        DatasetEntry {
            name: "pubmed".to_string(),
            title: "PubMed".to_string(),
            data: DataProvenance::Upstream,
            license: "linqs.org Pubmed-Diabetes collection — free for research use",
            home: "https://linqs.org/datasets/",
            // Paper Table II row.
            reference: ReferenceStats {
                n: 19717,
                m: 44338,
                mean_degree: 4.4974,
                gini: 0.8844,
                pwe: 1.4743,
                cpl: Some(6.3369),
            },
            tol: Tolerances {
                m_rel: 0.02,
                mean_degree: 0.2,
                gini: 0.1,
                pwe: 0.6,
                cpl: 1.5,
            },
            source: Source::Files {
                files: vec![FileSpec {
                    name: "Pubmed-Diabetes.DIRECTED.cites.tab",
                    format: Format::LinqsCites,
                    sha256: None,
                    provenance: Provenance::Remote(
                        "https://linqs-data.soe.ucsc.edu/public/Pubmed-Diabetes.tgz",
                    ),
                }],
            },
        },
        // Vendored surrogate fixtures. Reference stats are *measured on
        // the fixture at generation time* and pinned here, so `verify`
        // checks that ingestion reproduces them — an ingestion-fidelity
        // gate, deliberately not a claim about the real datasets the
        // surrogates imitate (the generator targeted the published
        // n/m/Gini/PWE, but e.g. its CPL lands at 4.13 vs Citeseer's
        // published 5.94).
        DatasetEntry {
            name: "citeseer-fixture".to_string(),
            title: "Citeseer-fixture (synthetic surrogate)".to_string(),
            data: DataProvenance::FixtureSurrogate,
            license: "generated in-repo by gen_fixtures — synthetic surrogate, no linqs data",
            home: "crates/datasets/src/bin/gen_fixtures.rs",
            reference: ReferenceStats {
                n: 3327,
                m: 4732,
                mean_degree: 2.8446,
                gini: 0.6773,
                pwe: 2.8770,
                cpl: Some(4.1331),
            },
            tol: FIXTURE_TOL,
            source: Source::Files {
                files: vec![FileSpec {
                    name: "citeseer.cites",
                    format: Format::LinqsCites,
                    sha256: Some(FIXTURE_SHA256_CITESEER),
                    provenance: Provenance::Vendored("citeseer.cites"),
                }],
            },
        },
        DatasetEntry {
            name: "cora-fixture".to_string(),
            title: "Cora-fixture (synthetic surrogate)".to_string(),
            data: DataProvenance::FixtureSurrogate,
            license: "generated in-repo by gen_fixtures — synthetic surrogate, no linqs data",
            home: "crates/datasets/src/bin/gen_fixtures.rs",
            reference: ReferenceStats {
                n: 2708,
                m: 5429,
                mean_degree: 4.0096,
                gini: 0.4047,
                pwe: 1.9548,
                cpl: Some(CORA_FIXTURE_CPL),
            },
            tol: FIXTURE_TOL,
            source: Source::Files {
                files: vec![FileSpec {
                    name: "cora-edges.txt",
                    format: Format::SnapEdges,
                    sha256: Some(FIXTURE_SHA256_CORA),
                    provenance: Provenance::Vendored("cora-edges.txt"),
                }],
            },
        },
    ];

    // The six Table II stand-ins, registered under `<slug>-synthetic`.
    for spec in &PAPER_DATASETS {
        entries.push(DatasetEntry {
            name: format!("{}-synthetic", slug(spec.name)),
            title: format!("{} (synthetic stand-in)", spec.name),
            data: DataProvenance::Synthesized,
            license: "synthesized in-repo (no external data)",
            home: "crates/data/src/datasets.rs",
            reference: ReferenceStats {
                n: spec.n,
                m: spec.m,
                mean_degree: spec.mean_degree,
                gini: spec.gini,
                pwe: spec.pwe,
                cpl: Some(spec.cpl),
            },
            // Stand-in fidelity bounds: the synthesizer pins sizes and the
            // tail *ordering*, not each scalar — see DESIGN.md §15.
            tol: Tolerances {
                m_rel: 0.12,
                mean_degree: 1.0,
                gini: 0.35,
                pwe: 1.6,
                cpl: 30.0,
            },
            source: Source::Synthetic { spec },
        });
    }
    entries
}

/// Recorded 512-source CPL of the cora surrogate fixture.
const CORA_FIXTURE_CPL: f64 = 3.7786;

/// Ingestion-fidelity tolerances for the vendored surrogate fixtures:
/// sizes exact, scalars within rounding of the recorded 4-decimal
/// measurements. Any looser and the gate would stop catching parser or
/// builder regressions.
const FIXTURE_TOL: Tolerances = Tolerances {
    m_rel: 0.0,
    mean_degree: 1e-3,
    gini: 1e-3,
    pwe: 1e-3,
    cpl: 1e-3,
};

/// Lowercase, dash-separated form of a display name.
fn slug(name: &str) -> String {
    name.to_ascii_lowercase().replace(' ', "-")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_every_provenance_uniformly() {
        assert!(!resolve("citeseer").unwrap().is_synthetic());
        assert!(resolve("Citeseer").unwrap().name == "citeseer");
        assert!(resolve("citeseer-fixture").unwrap().is_synthetic());
        assert!(resolve("citeseer-fixture").unwrap().is_file_backed());
        assert!(resolve("citeseer-synthetic").unwrap().is_synthetic());
        assert!(!resolve("citeseer-synthetic").unwrap().is_file_backed());
        assert!(resolve("3d-point-cloud-synthetic").unwrap().is_synthetic());
        assert!(resolve("nope").is_err());
    }

    #[test]
    fn every_paper_dataset_has_a_synthetic_entry() {
        for spec in &PAPER_DATASETS {
            let name = format!("{}-synthetic", slug(spec.name));
            let e = resolve(&name).unwrap();
            assert_eq!(e.reference.n, spec.n);
            assert!(e.title.starts_with(spec.name));
        }
    }

    #[test]
    fn registry_names_are_unique_and_lowercase() {
        let names: Vec<&str> = registry().iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate names: {names:?}");
        assert!(names.iter().all(|n| *n == n.to_ascii_lowercase()));
    }

    #[test]
    fn no_upstream_entry_is_backed_by_a_vendored_file() {
        // The provenance honesty invariant: vendored fixtures are
        // surrogates, never presented as upstream data.
        for e in registry() {
            if let Source::Files { files } = &e.source {
                for f in files {
                    if matches!(f.provenance, Provenance::Vendored(_)) {
                        assert_eq!(
                            e.data,
                            DataProvenance::FixtureSurrogate,
                            "{} vendored file presented as {:?}",
                            e.name,
                            e.data
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn surrogate_entries_are_labeled_in_every_display_field() {
        for e in registry() {
            if e.data == DataProvenance::FixtureSurrogate {
                assert!(e.title.contains("synthetic surrogate"), "{}", e.title);
                assert!(e.license.contains("synthetic surrogate"), "{}", e.license);
                assert!(e.name.ends_with("-fixture"), "{}", e.name);
            }
        }
    }
}
