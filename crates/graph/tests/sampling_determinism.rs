//! Determinism regression for the batched subgraph sampler (DESIGN §13).
//!
//! `SubgraphSampler` owns one seeded stream, and `next_batch` is defined as
//! successive `next_subgraph` draws — so the *batch size can never change
//! the draw sequence*: 12 subgraphs drawn as 1×12, 3×4, or 4×3 batches are
//! the same 12 subgraphs. The stream itself is pinned across processes
//! through an FNV-1a checksum so drift shows up as a constant mismatch,
//! not just a flaky rerun.
//!
//! After an *intended* sampler change, regenerate with:
//!
//! ```text
//! cargo test -p cpgan-graph --test sampling_determinism -- --ignored regenerate --nocapture
//! ```

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_graph::sampling::SubgraphSampler;
use cpgan_graph::{Graph, GraphBuilder, NodeId};

/// Deterministic host graph: a ring with long chords, degree-skewed by a
/// star on node 0 so degree-proportional sampling has real structure.
fn host_graph() -> Graph {
    let n: u32 = 120;
    let mut b = GraphBuilder::with_capacity(n as usize, 3 * n as usize);
    for i in 0..n {
        b.push_edge(i, (i + 1) % n);
        if i % 3 == 0 {
            b.push_edge(i, (i + n / 2) % n);
        }
        if i % 5 == 1 {
            b.push_edge(0, i);
        }
    }
    b.build()
}

/// FNV-1a over every draw: sampled original ids (order included) and the
/// induced subgraph's canonical edge list — pinning both the node stream
/// and the induced structure.
fn stream_checksum(draws: &[(Graph, Vec<NodeId>)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u32| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (sub, ids) in draws {
        mix(ids.len() as u32);
        for &id in ids {
            mix(id);
        }
        mix(sub.m() as u32);
        for &(u, v) in sub.edges() {
            mix(u);
            mix(v);
        }
    }
    h
}

fn draw(seed: u64, k: usize, total: usize, batch: usize) -> Vec<(Graph, Vec<NodeId>)> {
    let g = host_graph();
    let mut sampler = SubgraphSampler::new(seed);
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let take = batch.min(total - out.len());
        out.extend(sampler.next_batch(&g, k, take).unwrap());
    }
    out
}

/// Cross-process pin: produced by one run, must hold on every machine
/// (DESIGN.md §8).
const SAMPLER_CHECKSUM_SEED42: u64 = 0x3849_4b34_27bb_ec69;

#[test]
fn sampler_stream_is_pinned_across_processes() {
    let draws = draw(42, 20, 12, 4);
    assert_eq!(
        stream_checksum(&draws),
        SAMPLER_CHECKSUM_SEED42,
        "subgraph sampler stream drifted: got {:#018x}",
        stream_checksum(&draws)
    );
}

#[test]
fn batch_size_cannot_change_the_draw_sequence() {
    // The same 12 draws, grouped as 12×1, 4×3, 3×4, and 1×12 batches.
    let base = draw(9, 16, 12, 1);
    for batch in [3usize, 4, 12] {
        let other = draw(9, 16, 12, batch);
        assert_eq!(base.len(), other.len());
        for (i, ((g_a, ids_a), (g_b, ids_b))) in base.iter().zip(&other).enumerate() {
            assert_eq!(ids_a, ids_b, "draw {i}: node ids differ at batch {batch}");
            assert_eq!(
                g_a.edges(),
                g_b.edges(),
                "draw {i}: induced edges differ at batch {batch}"
            );
        }
    }
}

#[test]
fn different_seeds_differ() {
    // Guards against the checksum passing vacuously.
    let a = draw(1, 20, 4, 2);
    let b = draw(2, 20, 4, 2);
    assert!(a.iter().any(|(sub, _)| sub.m() > 0));
    assert_ne!(
        a.iter().map(|(_, ids)| ids.clone()).collect::<Vec<_>>(),
        b.iter().map(|(_, ids)| ids.clone()).collect::<Vec<_>>(),
    );
}

#[test]
#[ignore = "prints the current checksum; run after an intended sampler change"]
fn regenerate() {
    println!(
        "SAMPLER_CHECKSUM_SEED42: u64 = {:#018x};",
        stream_checksum(&draw(42, 20, 12, 4))
    );
}
