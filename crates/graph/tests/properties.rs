//! Property-based tests for the graph substrate.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach; panicking is the right
// failure mode in test code.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_graph::{mmd, stats, Graph, NodeId};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

/// Strategy: a random node count and edge list over it.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..120)
            .prop_map(move |edges| Graph::from_edges(n, edges).unwrap())
    })
}

fn arb_permutation(n: usize) -> impl Strategy<Value = Vec<NodeId>> {
    Just((0..n as NodeId).collect::<Vec<_>>()).prop_shuffle()
}

proptest! {
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let total: usize = g.degrees().iter().sum();
        prop_assert_eq!(total, 2 * g.m());
    }

    #[test]
    fn edges_are_canonical_and_sorted(g in arb_graph()) {
        let edges = g.edges();
        for w in edges.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &(u, v) in edges {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn neighbors_symmetric(g in arb_graph()) {
        for v in 0..g.n() as NodeId {
            for &w in g.neighbors(v) {
                prop_assert!(g.neighbors(w).binary_search(&v).is_ok());
            }
        }
    }

    #[test]
    fn permutation_preserves_all_stats(g in arb_graph()) {
        let n = g.n();
        let perm_strategy_result = arb_permutation(n);
        // Draw one permutation deterministically from the graph shape.
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let perm = perm_strategy_result.new_tree(&mut runner).unwrap().current();
        let pg = g.permute(&perm);
        prop_assert_eq!(pg.n(), g.n());
        prop_assert_eq!(pg.m(), g.m());
        // Degree multiset invariant.
        let mut d1 = g.degrees();
        let mut d2 = pg.degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
        // Scalar statistics are permutation-invariant.
        let s1 = stats::GraphStats::compute(&g, usize::MAX);
        let s2 = stats::GraphStats::compute(&pg, usize::MAX);
        prop_assert!((s1.cpl - s2.cpl).abs() < 1e-9);
        prop_assert!((s1.gini - s2.gini).abs() < 1e-9);
        prop_assert!((s1.pwe - s2.pwe).abs() < 1e-9);
        prop_assert!((s1.mean_clustering - s2.mean_clustering).abs() < 1e-9);
        // And the MMD metrics see permuted graphs as identical.
        prop_assert!(mmd::degree_mmd(&g, &pg) < 1e-9);
        prop_assert!(mmd::clustering_mmd(&g, &pg) < 1e-9);
    }

    #[test]
    fn clustering_in_unit_interval(g in arb_graph()) {
        for c in stats::clustering::local_clustering(&g) {
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn gini_in_unit_interval(g in arb_graph()) {
        let gini = stats::gini::gini_coefficient(&g.degrees());
        prop_assert!((0.0..1.0).contains(&gini) || gini.abs() < 1e-12);
    }

    #[test]
    fn degree_distribution_sums_to_one(g in arb_graph()) {
        let p = stats::degree::degree_distribution(&g);
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn emd_triangle_inequality(
        a in proptest::collection::vec(0.0f64..1.0, 1..10),
        b in proptest::collection::vec(0.0f64..1.0, 1..10),
        c in proptest::collection::vec(0.0f64..1.0, 1..10),
    ) {
        // Normalize to distributions.
        let norm = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v.iter().sum::<f64>().max(1e-12);
            v.iter().map(|x| x / s).collect()
        };
        let (a, b, c) = (norm(&a), norm(&b), norm(&c));
        let ab = mmd::emd_1d(&a, &b);
        let bc = mmd::emd_1d(&b, &c);
        let ac = mmd::emd_1d(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn io_round_trip(g in arb_graph()) {
        let mut buf = Vec::new();
        cpgan_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = cpgan_graph::io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn subgraph_edges_subset(g in arb_graph()) {
        let take = (g.n() / 2).max(1);
        let nodes: Vec<NodeId> = (0..take as NodeId).collect();
        let (sub, order) = g.induced_subgraph(&nodes);
        prop_assert_eq!(sub.n(), take);
        for &(u, v) in sub.edges() {
            prop_assert!(g.has_edge(order[u as usize], order[v as usize]));
        }
    }

    #[test]
    fn spectral_embedding_deterministic_and_shaped(g in arb_graph()) {
        let d = 3.min(g.n());
        let e1 = cpgan_graph::spectral::spectral_embedding(&g, d, 42);
        let e2 = cpgan_graph::spectral::spectral_embedding(&g, d, 42);
        prop_assert_eq!(&e1, &e2);
        prop_assert_eq!(e1.len(), g.n() * d);
        for v in &e1 {
            prop_assert!(v.is_finite());
        }
    }
}
