//! Golden-file regression test: graph statistics pinned bit-for-bit.
//!
//! `tests/golden/fixture.edges` is a checked-in deterministic graph and
//! `tests/golden/expected.stats` records its statistics, with floats stored
//! as hex `f64::to_bits` so the comparison is exact, not tolerance-based.
//! Any change to the statistic kernels (including the parallel chunking —
//! the determinism contract says thread count must never shift a bit) shows
//! up as a diff here.
//!
//! After an *intended* numerical change, regenerate with:
//!
//! ```text
//! cargo test -p cpgan-graph --test golden -- --ignored regenerate
//! ```

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_graph::stats::{clustering, degree, gini, path, powerlaw};
use cpgan_graph::{io, Graph};
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The fixture: a 500-node ring with strided chords and a few hub spokes —
/// triangles, skewed degrees, and non-trivial path lengths.
fn build_fixture() -> Graph {
    let n = 500u32;
    let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    edges.extend((0..n).step_by(3).map(|i| (i, (i + 2) % n)));
    edges.extend((0..n).step_by(7).map(|i| (i, (i + 5) % n)));
    // Hub spokes: node 0 connects to every 25th node.
    edges.extend((25..n).step_by(25).map(|i| (0, i)));
    edges.sort_unstable();
    edges.dedup();
    Graph::from_edges(n as usize, edges).unwrap()
}

struct GoldenStats {
    degree_histogram: Vec<usize>,
    triangle_count: usize,
    mean_clustering: f64,
    cpl: f64,
    gini: f64,
    powerlaw_exponent: f64,
}

fn measure(g: &Graph) -> GoldenStats {
    let degrees: Vec<usize> = (0..g.n()).map(|v| g.degree(v as u32)).collect();
    GoldenStats {
        degree_histogram: degree::degree_histogram(g),
        triangle_count: clustering::triangle_count(g),
        mean_clustering: clustering::mean_clustering(g),
        cpl: path::characteristic_path_length(g, usize::MAX),
        gini: gini::gini_coefficient(&degrees),
        powerlaw_exponent: powerlaw::powerlaw_exponent(&degrees),
    }
}

/// Serializes stats: integers in decimal, floats as hex bit patterns with a
/// human-readable decimal in a trailing comment.
fn render(s: &GoldenStats) -> String {
    let mut out = String::new();
    out.push_str("# Golden statistics for fixture.edges. Floats are f64::to_bits in hex.\n");
    out.push_str("# Regenerate: cargo test -p cpgan-graph --test golden -- --ignored regenerate\n");
    out.push_str("degree_histogram");
    for c in &s.degree_histogram {
        let _ = write!(out, " {c}");
    }
    out.push('\n');
    let _ = writeln!(out, "triangle_count {}", s.triangle_count);
    for (key, v) in [
        ("mean_clustering", s.mean_clustering),
        ("cpl", s.cpl),
        ("gini", s.gini),
        ("powerlaw_exponent", s.powerlaw_exponent),
    ] {
        let _ = writeln!(out, "{key} {:016x} # {v}", v.to_bits());
    }
    out
}

fn parse(text: &str) -> GoldenStats {
    let mut degree_histogram = Vec::new();
    let mut ints = std::collections::HashMap::new();
    let mut floats = std::collections::HashMap::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let key = it.next().unwrap();
        match key {
            "degree_histogram" => {
                degree_histogram = it.map(|t| t.parse().unwrap()).collect();
            }
            "triangle_count" => {
                ints.insert(key, it.next().unwrap().parse::<usize>().unwrap());
            }
            _ => {
                let bits = u64::from_str_radix(it.next().unwrap(), 16).unwrap();
                floats.insert(key.to_string(), f64::from_bits(bits));
            }
        }
    }
    GoldenStats {
        degree_histogram,
        triangle_count: ints["triangle_count"],
        mean_clustering: floats["mean_clustering"],
        cpl: floats["cpl"],
        gini: floats["gini"],
        powerlaw_exponent: floats["powerlaw_exponent"],
    }
}

#[test]
fn fixture_file_matches_builder() {
    // Guards the checked-in edge list itself against corruption or drift in
    // the edge-list reader.
    let loaded = io::load(golden_dir().join("fixture.edges")).unwrap();
    assert_eq!(
        loaded,
        build_fixture(),
        "fixture.edges drifted from builder"
    );
}

#[test]
fn statistics_match_golden_file() {
    let g = io::load(golden_dir().join("fixture.edges")).unwrap();
    let expected = parse(&std::fs::read_to_string(golden_dir().join("expected.stats")).unwrap());
    let got = measure(&g);
    let ctx = "statistic drifted from tests/golden/expected.stats; if the change \
               is intended, regenerate (see file header)";
    assert_eq!(
        got.degree_histogram, expected.degree_histogram,
        "degree_histogram: {ctx}"
    );
    assert_eq!(
        got.triangle_count, expected.triangle_count,
        "triangle_count: {ctx}"
    );
    for (key, got_v, exp_v) in [
        (
            "mean_clustering",
            got.mean_clustering,
            expected.mean_clustering,
        ),
        ("cpl", got.cpl, expected.cpl),
        ("gini", got.gini, expected.gini),
        (
            "powerlaw_exponent",
            got.powerlaw_exponent,
            expected.powerlaw_exponent,
        ),
    ] {
        assert_eq!(
            got_v.to_bits(),
            exp_v.to_bits(),
            "{key}: got {got_v}, expected {exp_v} — {ctx}"
        );
    }
}

#[test]
#[ignore = "writes tests/golden/; run explicitly after an intended numerical change"]
fn regenerate() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let g = build_fixture();
    io::save(&g, dir.join("fixture.edges")).unwrap();
    std::fs::write(dir.join("expected.stats"), render(&measure(&g))).unwrap();
}
