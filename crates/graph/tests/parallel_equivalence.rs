//! Serial-equivalence suite: every parallelized graph statistic must produce
//! bit-identical output at any thread count.
//!
//! Companion to `crates/nn/tests/parallel_equivalence.rs` — see there for the
//! determinism contract being asserted. Floating-point results are compared
//! as raw bit patterns, not within a tolerance.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_graph::stats::{clustering, path};
use cpgan_graph::{mmd, spectral, Graph};
use cpgan_parallel::with_thread_count;

/// A deterministic graph with triangles, hubs, and varied path lengths:
/// `n`-ring plus chords at two strides.
fn fixture_graph(n: u32) -> Graph {
    let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    edges.extend((0..n).step_by(3).map(|i| (i, (i + 2) % n)));
    edges.extend((0..n / 4).map(|i| (i, i + n / 2)));
    edges.sort_unstable();
    edges.dedup();
    let g = Graph::from_edges(n as usize, edges).unwrap();
    assert!(
        clustering::triangle_count(&g) > 0,
        "fixture needs triangles"
    );
    g
}

fn assert_equivalent_f64(what: &str, f: impl Fn() -> Vec<f64>) {
    let serial = with_thread_count(1, &f);
    for threads in [2, 4, 8] {
        let parallel = with_thread_count(threads, &f);
        assert_eq!(serial.len(), parallel.len(), "{what}: length mismatch");
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{what}[{i}] differs at {threads} threads: {a} vs {b}"
            );
        }
    }
}

#[test]
fn clustering_bitwise_equal_across_thread_counts() {
    // 600 nodes spans several 256-node blocks.
    let g = fixture_graph(600);
    assert_equivalent_f64("local_clustering", || clustering::local_clustering(&g));
    assert_equivalent_f64("mean_clustering", || vec![clustering::mean_clustering(&g)]);
    let serial = with_thread_count(1, || clustering::triangle_count(&g));
    for threads in [2, 4, 8] {
        let parallel = with_thread_count(threads, || clustering::triangle_count(&g));
        assert_eq!(serial, parallel, "triangle_count at {threads} threads");
    }
}

#[test]
fn cpl_bitwise_equal_across_thread_counts() {
    let g = fixture_graph(300);
    assert_equivalent_f64("cpl_exact", || {
        vec![path::characteristic_path_length(&g, usize::MAX)]
    });
    assert_equivalent_f64("cpl_sampled", || {
        vec![path::characteristic_path_length(&g, 64)]
    });
    let serial = with_thread_count(1, || path::diameter_lower_bound(&g, usize::MAX));
    for threads in [2, 4, 8] {
        let parallel = with_thread_count(threads, || path::diameter_lower_bound(&g, usize::MAX));
        assert_eq!(serial, parallel, "diameter at {threads} threads");
    }
}

#[test]
fn mmd_bitwise_equal_across_thread_counts() {
    // Sample sets large enough to span several 4-row kernel chunks.
    let graphs_a: Vec<Graph> = (0..12).map(|i| fixture_graph(60 + 7 * i)).collect();
    let graphs_b: Vec<Graph> = (0..12).map(|i| fixture_graph(64 + 5 * i)).collect();
    assert_equivalent_f64("degree_mmd_sets", || {
        vec![mmd::degree_mmd_sets(&graphs_a, &graphs_b)]
    });
    let g = fixture_graph(200);
    let h = fixture_graph(210);
    assert_equivalent_f64("clustering_mmd", || vec![mmd::clustering_mmd(&g, &h)]);
}

#[test]
fn spectral_embedding_bitwise_equal_across_thread_counts() {
    let g = fixture_graph(240);
    let serial = with_thread_count(1, || spectral::spectral_embedding(&g, 6, 17));
    for threads in [2, 4, 8] {
        let parallel = with_thread_count(threads, || spectral::spectral_embedding(&g, 6, 17));
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "spectral[{i}] differs at {threads} threads: {a} vs {b}"
            );
        }
    }
}
