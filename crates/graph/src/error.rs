use std::fmt;

/// Errors produced while constructing or loading graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node index `>= n`.
    NodeOutOfRange {
        /// Offending node index.
        node: u64,
        /// Number of nodes in the graph under construction.
        n: usize,
    },
    /// Parsing an edge-list line failed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An I/O error, carried as a string so the error type stays `Clone`.
    Io(String),
    /// A subgraph sample was requested with more nodes than the graph has.
    SampleTooLarge {
        /// Requested sample size.
        k: usize,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A streamed edge violated the builder's self-loop or duplicate policy,
    /// or the two passes over the edge iterator disagreed.
    Stream(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for graph with {n} nodes")
            }
            GraphError::Parse { line, message } => {
                write!(f, "edge list parse error on line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
            GraphError::SampleTooLarge { k, n } => {
                write!(f, "sample size {k} exceeds graph node count {n}")
            }
            GraphError::Stream(msg) => write!(f, "edge stream error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}
