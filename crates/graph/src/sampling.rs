//! Degree-proportional subgraph sampling (paper §III-E).
//!
//! During training CPGAN samples `n_s << n` nodes without replacement with
//! probability `P_i = deg_i / sum_j deg_j` and trains on the induced
//! subgraph — the mechanism behind its scalability advantage (Tables
//! VII–IX). [`SubgraphSampler`] wraps the primitives behind one seeded
//! stream so batched draws are a pure prefix property: drawing `k`
//! subgraphs in batches of any size yields the same sequence as drawing
//! them one at a time.

use crate::{Graph, GraphError, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `k` distinct nodes degree-proportionally (without replacement).
///
/// Isolated nodes are only chosen once every positive-degree node is
/// exhausted. Returns fewer than `k` nodes only if `k > n`.
pub fn sample_nodes_by_degree<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> Vec<NodeId> {
    let n = g.n();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    // Efficient without-replacement sampling via the exponential-race trick:
    // key_i = u_i^(1 / w_i); take the k largest keys. O(n log n) worst case,
    // but a partial select keeps it O(n + k log k) in practice.
    let mut keyed: Vec<(f64, NodeId)> = (0..n)
        .map(|v| {
            let w = g.degree(v as NodeId) as f64;
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let key = if w > 0.0 {
                u.powf(1.0 / w)
            } else {
                // Isolated nodes rank below every positive-degree node.
                -u
            };
            (key, v as NodeId)
        })
        .collect();
    keyed.select_nth_unstable_by(k - 1, |a, b| b.0.total_cmp(&a.0));
    let mut out: Vec<NodeId> = keyed[..k].iter().map(|&(_, v)| v).collect();
    out.sort_unstable();
    out
}

/// Samples `k` distinct nodes uniformly (the ablation comparator for the
/// degree-proportional strategy).
pub fn sample_nodes_uniform<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> Vec<NodeId> {
    let n = g.n();
    let k = k.min(n);
    let mut ids: Vec<NodeId> = (0..n as NodeId).collect();
    // Partial Fisher-Yates.
    for i in 0..k {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    let mut out = ids[..k].to_vec();
    out.sort_unstable();
    out
}

/// Samples an induced subgraph of `k` nodes degree-proportionally; returns
/// the subgraph and the original ids of its nodes.
pub fn sample_subgraph<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> (Graph, Vec<NodeId>) {
    let nodes = sample_nodes_by_degree(g, k, rng);
    g.induced_subgraph(&nodes)
}

/// A single seeded stream of subgraph draws.
///
/// Every draw — single or batched — consumes the *same* underlying RNG
/// stream, so the sequence of subgraphs depends only on the seed and the
/// draw count, never on how draws are grouped into batches: `next_batch(3)`
/// followed by `next_batch(2)` produces the same five subgraphs as five
/// `next_subgraph` calls. (The previous training loops re-derived RNG state
/// per subgraph; this type is the batching seam fix, pinned by the FNV
/// checksum test in `tests/sampling_determinism.rs`.)
#[derive(Debug)]
pub struct SubgraphSampler {
    rng: StdRng,
}

impl SubgraphSampler {
    /// Creates a sampler seeded with `seed` (the stream is
    /// `StdRng::seed_from_u64(seed)`).
    pub fn new(seed: u64) -> Self {
        SubgraphSampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next induced subgraph of `k` degree-proportional nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SampleTooLarge`] if `k > g.n()`: a sampler
    /// asked for more nodes than exist cannot honor the "k distinct nodes"
    /// contract, and silently clamping here would let a misconfigured
    /// `sample_size` train on the whole graph without the caller noticing.
    /// (The free functions keep their documented clamping behavior.)
    pub fn next_subgraph(
        &mut self,
        g: &Graph,
        k: usize,
    ) -> Result<(Graph, Vec<NodeId>), GraphError> {
        if k > g.n() {
            return Err(GraphError::SampleTooLarge { k, n: g.n() });
        }
        Ok(sample_subgraph(g, k, &mut self.rng))
    }

    /// Draws `batch` consecutive subgraphs from the same stream.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SampleTooLarge`] if `k > g.n()` before
    /// consuming any RNG state, so a failed batch never perturbs the stream.
    pub fn next_batch(
        &mut self,
        g: &Graph,
        k: usize,
        batch: usize,
    ) -> Result<Vec<(Graph, Vec<NodeId>)>, GraphError> {
        if k > g.n() {
            return Err(GraphError::SampleTooLarge { k, n: g.n() });
        }
        Ok((0..batch)
            .map(|_| sample_subgraph(g, k, &mut self.rng))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub_graph() -> Graph {
        // Node 0 is a hub of degree 30; nodes 31.. form a sparse chain.
        let mut edges: Vec<(u32, u32)> = (1..=30u32).map(|v| (0, v)).collect();
        for v in 31..60u32 {
            edges.push((v, v + 1));
        }
        Graph::from_edges(61, edges).unwrap()
    }

    #[test]
    fn samples_are_distinct_and_sized() {
        let g = hub_graph();
        let mut rng = StdRng::seed_from_u64(0);
        let s = sample_nodes_by_degree(&g, 20, &mut rng);
        assert_eq!(s.len(), 20);
        let unique: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn hubs_oversampled() {
        let g = hub_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let mut hub_hits = 0;
        let reps = 200;
        for _ in 0..reps {
            if sample_nodes_by_degree(&g, 5, &mut rng).contains(&0) {
                hub_hits += 1;
            }
        }
        // Hub has ~30/120 of total degree; with 5 draws it should appear in
        // most samples; uniform would give ~5/61 ~= 8%.
        assert!(hub_hits > reps / 2, "hub sampled only {hub_hits}/{reps}");
    }

    #[test]
    fn uniform_sampler_not_degree_biased() {
        let g = hub_graph();
        let mut rng = StdRng::seed_from_u64(2);
        let mut hub_hits = 0;
        let reps = 400;
        for _ in 0..reps {
            if sample_nodes_uniform(&g, 5, &mut rng).contains(&0) {
                hub_hits += 1;
            }
        }
        let frac = hub_hits as f64 / reps as f64;
        assert!((frac - 5.0 / 61.0).abs() < 0.08, "uniform frac {frac}");
    }

    #[test]
    fn subgraph_preserves_induced_edges() {
        let g = hub_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let (sub, order) = sample_subgraph(&g, 15, &mut rng);
        assert_eq!(sub.n(), 15);
        for &(u, v) in sub.edges() {
            assert!(g.has_edge(order[u as usize], order[v as usize]));
        }
    }

    #[test]
    fn k_larger_than_n_clamped() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(sample_nodes_by_degree(&g, 10, &mut rng).len(), 3);
    }

    #[test]
    fn sampler_matches_raw_stream() {
        // SubgraphSampler is a thin wrapper over one StdRng stream: the
        // draws must equal direct sample_subgraph calls on the same seed.
        let g = hub_graph();
        let mut sampler = SubgraphSampler::new(99);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..4 {
            let (a, ids_a) = sampler.next_subgraph(&g, 12).unwrap();
            let (b, ids_b) = sample_subgraph(&g, 12, &mut rng);
            assert_eq!(ids_a, ids_b);
            assert_eq!(a.edges(), b.edges());
        }
    }

    #[test]
    fn sampler_rejects_oversized_request() {
        // Regression: the seeded sampler must reject k > n with a typed
        // error instead of clamping (or worse, spinning trying to find k
        // distinct nodes) — and the failed call must not consume RNG state.
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let mut sampler = SubgraphSampler::new(7);
        match sampler.next_subgraph(&g, 10) {
            Err(GraphError::SampleTooLarge { k: 10, n: 3 }) => {}
            other => panic!("expected SampleTooLarge, got {other:?}"),
        }
        match sampler.next_batch(&g, 4, 2) {
            Err(GraphError::SampleTooLarge { k: 4, n: 3 }) => {}
            other => panic!("expected SampleTooLarge, got {other:?}"),
        }
        // The stream is untouched by the rejected draws: it still matches a
        // fresh sampler on the same seed.
        let (_, ids) = sampler.next_subgraph(&g, 2).unwrap();
        let (_, fresh_ids) = SubgraphSampler::new(7).next_subgraph(&g, 2).unwrap();
        assert_eq!(ids, fresh_ids);
    }
}
