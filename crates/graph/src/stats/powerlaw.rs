//! Power-law exponent estimation for degree sequences (paper "PWE").

/// Maximum-likelihood estimate of the power-law exponent of `degrees`,
/// following Clauset–Shalizi–Newman's discrete approximation
/// `alpha = 1 + n / sum_i ln(d_i / (d_min - 1/2))` over degrees `>= d_min`.
///
/// `d_min` is fixed at 1 (isolated nodes are excluded), matching how the
/// paper's evaluation scripts treat whole-graph degree sequences. Returns 0
/// when fewer than two positive degrees exist.
pub fn powerlaw_exponent(degrees: &[usize]) -> f64 {
    powerlaw_exponent_with_dmin(degrees, 1)
}

/// Power-law exponent with an explicit lower cutoff `d_min >= 1`.
pub fn powerlaw_exponent_with_dmin(degrees: &[usize], d_min: usize) -> f64 {
    let d_min = d_min.max(1);
    let cutoff = d_min as f64 - 0.5;
    let mut count = 0usize;
    let mut log_sum = 0.0f64;
    for &d in degrees {
        if d >= d_min {
            count += 1;
            log_sum += (d as f64 / cutoff).ln();
        }
    }
    if count < 2 || log_sum <= 0.0 {
        return 0.0;
    }
    1.0 + count as f64 / log_sum
}

/// Power-law exponent with the lower cutoff `d_min` chosen by the
/// Kolmogorov–Smirnov criterion (Clauset–Shalizi–Newman): for every
/// candidate cutoff, fit `alpha` by MLE on the tail and measure the KS
/// distance between the empirical tail CCDF and the fitted model CCDF
/// `P(D >= d) = ((d - 1/2) / (d_min - 1/2))^{-(alpha - 1)}`; keep the
/// cutoff whose fit is closest.
///
/// This matches how published dataset tables report PWE: the fixed
/// `d_min = 1` estimator is capped at `1 + 1/ln 2 ≈ 2.44` for any graph
/// (every degree-1 node contributes exactly `ln 2`), so exponents such as
/// Citeseer's 2.88 are only reachable once the cutoff is fitted too.
///
/// Candidate cutoffs are the distinct degree values whose tail keeps at
/// least `MIN_TAIL` observations, capped at `MAX_CANDIDATES` to bound the
/// cost on huge graphs. Falls back to [`powerlaw_exponent`] when no
/// candidate qualifies.
pub fn powerlaw_exponent_ks(degrees: &[usize]) -> f64 {
    const MIN_TAIL: usize = 10;
    const MAX_CANDIDATES: usize = 64;

    let mut degs: Vec<usize> = degrees.iter().copied().filter(|&d| d >= 1).collect();
    degs.sort_unstable();
    let mut distinct = degs.clone();
    distinct.dedup();

    let mut best_alpha = 0.0f64;
    let mut best_ks = f64::INFINITY;
    for &d_min in distinct.iter().take(MAX_CANDIDATES) {
        let start = degs.partition_point(|&d| d < d_min);
        let tail = &degs[start..];
        if tail.len() < MIN_TAIL {
            break; // tails only shrink as d_min grows
        }
        let alpha = powerlaw_exponent_with_dmin(tail, d_min);
        if alpha <= 1.0 {
            continue;
        }
        let n_tail = tail.len() as f64;
        let cutoff = d_min as f64 - 0.5;
        let mut ks = 0.0f64;
        let mut i = 0;
        while i < tail.len() {
            let d = tail[i];
            let empirical = (tail.len() - i) as f64 / n_tail;
            let model = ((d as f64 - 0.5) / cutoff).powf(-(alpha - 1.0));
            ks = ks.max((empirical - model).abs());
            while i < tail.len() && tail[i] == d {
                i += 1;
            }
        }
        if ks < best_ks {
            best_ks = ks;
            best_alpha = alpha;
        }
    }
    if best_ks.is_finite() {
        best_alpha
    } else {
        powerlaw_exponent(degrees)
    }
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn constant_degrees_give_large_exponent() {
        // All degree 1 at d_min=1: ln(1/0.5) = ln 2 per node, alpha = 1 + 1/ln2.
        let a = powerlaw_exponent(&[1, 1, 1, 1]);
        assert!((a - (1.0 + 1.0 / std::f64::consts::LN_2)).abs() < 1e-12);
    }

    #[test]
    fn heavier_tail_gives_smaller_exponent() {
        let light: Vec<usize> = vec![1; 90].into_iter().chain(vec![2; 10]).collect();
        let heavy: Vec<usize> = vec![1; 50]
            .into_iter()
            .chain(vec![10; 30])
            .chain(vec![100; 20])
            .collect();
        assert!(powerlaw_exponent(&heavy) < powerlaw_exponent(&light));
    }

    #[test]
    fn recovers_synthetic_exponent_roughly() {
        // Sample from a discrete power law with d_min = 6 (the regime where
        // the CSN approximation 1 + n / sum ln(d/(d_min - 1/2)) is accurate)
        // and check the estimator recovers the exponent.
        let alpha = 2.5f64;
        let d_min = 6.0f64;
        let mut degs = Vec::new();
        let n = 20_000;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            // CSN's discrete sampling recipe:
            // d = floor((d_min - 1/2) (1-u)^(-1/(alpha-1)) + 1/2).
            let d = ((d_min - 0.5) * (1.0 - u).powf(-1.0 / (alpha - 1.0)) + 0.5).floor();
            degs.push(d as usize);
        }
        let est = powerlaw_exponent_with_dmin(&degs, d_min as usize);
        assert!((est - alpha).abs() < 0.1, "estimated {est}");
    }

    #[test]
    fn dmin_one_estimator_is_monotone_in_tail_weight() {
        // With d_min = 1 the estimator is biased but must stay monotone:
        // heavier tails -> smaller exponent. This is the property the PWE
        // difference metric relies on.
        let tail = |frac_hubs: usize| -> Vec<usize> {
            let mut v = vec![1usize; 1000 - frac_hubs];
            v.extend(std::iter::repeat_n(50, frac_hubs));
            v
        };
        let a = powerlaw_exponent(&tail(10));
        let b = powerlaw_exponent(&tail(100));
        let c = powerlaw_exponent(&tail(400));
        assert!(a > b && b > c, "{a} > {b} > {c} violated");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(powerlaw_exponent(&[]), 0.0);
        assert_eq!(powerlaw_exponent(&[0, 0]), 0.0);
        assert_eq!(powerlaw_exponent(&[5]), 0.0);
    }

    #[test]
    fn ks_estimator_finds_cutoff_without_being_told() {
        // Power-law tail from d_min = 6 hidden under a flat head of
        // low-degree nodes: the fixed estimator is dominated by the head,
        // the KS estimator recovers alpha from the tail alone.
        let alpha = 2.5f64;
        let d_min = 6.0f64;
        let mut degs: Vec<usize> = vec![1; 4000];
        degs.extend(vec![2usize; 2000]);
        let n = 20_000;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            let d = ((d_min - 0.5) * (1.0 - u).powf(-1.0 / (alpha - 1.0)) + 0.5).floor();
            degs.push(d as usize);
        }
        let est = powerlaw_exponent_ks(&degs);
        assert!((est - alpha).abs() < 0.15, "estimated {est}");
        // The fixed d_min = 1 estimator cannot exceed 1 + 1/ln 2.
        assert!(powerlaw_exponent(&degs) < 1.0 + 1.0 / std::f64::consts::LN_2 + 1e-9);
    }

    #[test]
    fn ks_estimator_can_exceed_the_dmin_one_cap() {
        // Steep tail starting at 4: a fitted cutoff must report alpha
        // above the 2.443 ceiling of the fixed estimator.
        let alpha = 3.2f64;
        let d_min = 4.0f64;
        let mut degs: Vec<usize> = vec![1; 3000];
        for i in 0..10_000 {
            let u = (i as f64 + 0.5) / 10_000.0;
            let d = ((d_min - 0.5) * (1.0 - u).powf(-1.0 / (alpha - 1.0)) + 0.5).floor();
            degs.push(d as usize);
        }
        let est = powerlaw_exponent_ks(&degs);
        assert!(est > 2.5, "estimated {est}");
    }

    #[test]
    fn ks_estimator_degenerate_falls_back() {
        assert_eq!(powerlaw_exponent_ks(&[]), 0.0);
        assert_eq!(powerlaw_exponent_ks(&[0, 0]), 0.0);
        // Fewer than MIN_TAIL positive degrees: falls back to the fixed
        // estimator rather than returning garbage.
        let small = [1usize, 2, 3, 4];
        assert_eq!(powerlaw_exponent_ks(&small), powerlaw_exponent(&small));
    }
}
