//! Power-law exponent estimation for degree sequences (paper "PWE").

/// Maximum-likelihood estimate of the power-law exponent of `degrees`,
/// following Clauset–Shalizi–Newman's discrete approximation
/// `alpha = 1 + n / sum_i ln(d_i / (d_min - 1/2))` over degrees `>= d_min`.
///
/// `d_min` is fixed at 1 (isolated nodes are excluded), matching how the
/// paper's evaluation scripts treat whole-graph degree sequences. Returns 0
/// when fewer than two positive degrees exist.
pub fn powerlaw_exponent(degrees: &[usize]) -> f64 {
    powerlaw_exponent_with_dmin(degrees, 1)
}

/// Power-law exponent with an explicit lower cutoff `d_min >= 1`.
pub fn powerlaw_exponent_with_dmin(degrees: &[usize], d_min: usize) -> f64 {
    let d_min = d_min.max(1);
    let cutoff = d_min as f64 - 0.5;
    let mut count = 0usize;
    let mut log_sum = 0.0f64;
    for &d in degrees {
        if d >= d_min {
            count += 1;
            log_sum += (d as f64 / cutoff).ln();
        }
    }
    if count < 2 || log_sum <= 0.0 {
        return 0.0;
    }
    1.0 + count as f64 / log_sum
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn constant_degrees_give_large_exponent() {
        // All degree 1 at d_min=1: ln(1/0.5) = ln 2 per node, alpha = 1 + 1/ln2.
        let a = powerlaw_exponent(&[1, 1, 1, 1]);
        assert!((a - (1.0 + 1.0 / std::f64::consts::LN_2)).abs() < 1e-12);
    }

    #[test]
    fn heavier_tail_gives_smaller_exponent() {
        let light: Vec<usize> = vec![1; 90].into_iter().chain(vec![2; 10]).collect();
        let heavy: Vec<usize> = vec![1; 50]
            .into_iter()
            .chain(vec![10; 30])
            .chain(vec![100; 20])
            .collect();
        assert!(powerlaw_exponent(&heavy) < powerlaw_exponent(&light));
    }

    #[test]
    fn recovers_synthetic_exponent_roughly() {
        // Sample from a discrete power law with d_min = 6 (the regime where
        // the CSN approximation 1 + n / sum ln(d/(d_min - 1/2)) is accurate)
        // and check the estimator recovers the exponent.
        let alpha = 2.5f64;
        let d_min = 6.0f64;
        let mut degs = Vec::new();
        let n = 20_000;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            // CSN's discrete sampling recipe:
            // d = floor((d_min - 1/2) (1-u)^(-1/(alpha-1)) + 1/2).
            let d = ((d_min - 0.5) * (1.0 - u).powf(-1.0 / (alpha - 1.0)) + 0.5).floor();
            degs.push(d as usize);
        }
        let est = powerlaw_exponent_with_dmin(&degs, d_min as usize);
        assert!((est - alpha).abs() < 0.1, "estimated {est}");
    }

    #[test]
    fn dmin_one_estimator_is_monotone_in_tail_weight() {
        // With d_min = 1 the estimator is biased but must stay monotone:
        // heavier tails -> smaller exponent. This is the property the PWE
        // difference metric relies on.
        let tail = |frac_hubs: usize| -> Vec<usize> {
            let mut v = vec![1usize; 1000 - frac_hubs];
            v.extend(std::iter::repeat_n(50, frac_hubs));
            v
        };
        let a = powerlaw_exponent(&tail(10));
        let b = powerlaw_exponent(&tail(100));
        let c = powerlaw_exponent(&tail(400));
        assert!(a > b && b > c, "{a} > {b} > {c} violated");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(powerlaw_exponent(&[]), 0.0);
        assert_eq!(powerlaw_exponent(&[0, 0]), 0.0);
        assert_eq!(powerlaw_exponent(&[5]), 0.0);
    }
}
