//! Degree assortativity (Pearson correlation of endpoint degrees).

use crate::Graph;

/// Newman's degree assortativity coefficient in `[-1, 1]`:
/// the Pearson correlation of the degrees at the two ends of each edge.
/// Returns 0 for graphs with fewer than 2 edges or zero degree variance.
pub fn degree_assortativity(g: &Graph) -> f64 {
    let m = g.m();
    if m < 2 {
        return 0.0;
    }
    // Accumulate over both edge orientations so the measure is symmetric.
    let mut sum_xy = 0.0f64;
    let mut sum_x = 0.0f64;
    let mut sum_x2 = 0.0f64;
    let count = (2 * m) as f64;
    for &(u, v) in g.edges() {
        let du = g.degree(u) as f64;
        let dv = g.degree(v) as f64;
        sum_xy += 2.0 * du * dv;
        sum_x += du + dv;
        sum_x2 += du * du + dv * dv;
    }
    let mean = sum_x / count;
    let var = sum_x2 / count - mean * mean;
    if var <= 1e-12 {
        return 0.0;
    }
    (sum_xy / count - mean * mean) / var
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn star_is_disassortative() {
        let g = Graph::from_edges(6, (1..6u32).map(|v| (0, v))).unwrap();
        assert!(degree_assortativity(&g) < -0.9);
    }

    #[test]
    fn regular_graph_zero() {
        // Cycle: all degrees equal -> zero variance -> 0 by convention.
        let edges: Vec<(u32, u32)> = (0..8u32).map(|i| (i, (i + 1) % 8)).collect();
        let g = Graph::from_edges(8, edges).unwrap();
        assert_eq!(degree_assortativity(&g), 0.0);
    }

    #[test]
    fn assortative_construction() {
        // Two hubs joined together plus leaf pairs: high-degree nodes attach
        // to each other -> positive correlation.
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (4, 5),
                (6, 7),
            ],
        )
        .unwrap();
        let r = degree_assortativity(&g);
        assert!(r.is_finite());
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn tiny_graphs() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        assert_eq!(degree_assortativity(&g), 0.0);
    }
}
