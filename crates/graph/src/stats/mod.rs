//! Graph statistics used by the paper's evaluation (Tables II, IV, V).

pub mod assortativity;
pub mod clustering;
pub mod degree;
pub mod gini;
pub mod kcore;
pub mod path;
pub mod powerlaw;

use crate::Graph;

/// Summary of the scalar statistics the paper reports per dataset (Table II)
/// and compares per generated graph (Tables IV and V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Characteristic path length (paper "CPL").
    pub cpl: f64,
    /// Gini coefficient of the degree distribution (paper "GINI").
    pub gini: f64,
    /// Power-law exponent of the degree distribution (paper "PWE").
    pub pwe: f64,
    /// Mean local clustering coefficient.
    pub mean_clustering: f64,
}

impl GraphStats {
    /// Computes all summary statistics for `g`.
    ///
    /// `cpl_sources` bounds the number of BFS sources used for the
    /// characteristic path length (see [`path::characteristic_path_length`]);
    /// pass `usize::MAX` for the exact all-pairs value on small graphs.
    pub fn compute(g: &Graph, cpl_sources: usize) -> Self {
        let degs = g.degrees();
        GraphStats {
            n: g.n(),
            m: g.m(),
            mean_degree: g.mean_degree(),
            cpl: path::characteristic_path_length(g, cpl_sources),
            gini: gini::gini_coefficient(&degs),
            pwe: powerlaw::powerlaw_exponent(&degs),
            mean_clustering: clustering::mean_clustering(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_on_triangle() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let s = GraphStats::compute(&g, usize::MAX);
        assert_eq!(s.n, 3);
        assert_eq!(s.m, 3);
        assert!((s.mean_clustering - 1.0).abs() < 1e-12);
        assert!((s.cpl - 1.0).abs() < 1e-12);
        assert!(s.gini.abs() < 1e-12); // regular graph: perfectly equal degrees
    }
}
