//! Shortest-path statistics (characteristic path length, paper "CPL").

use crate::{Graph, NodeId};

/// BFS distances from `src`; unreachable nodes get `usize::MAX`.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == usize::MAX {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Characteristic path length: the mean shortest-path distance over reachable
/// ordered pairs.
///
/// When `max_sources >= n` every node seeds a BFS (exact value). Otherwise a
/// deterministic evenly-spaced sample of `max_sources` seeds is used — the
/// estimator the paper's evaluation scripts rely on for the larger graphs,
/// deterministic here so repeated runs agree.
pub fn characteristic_path_length(g: &Graph, max_sources: usize) -> f64 {
    let _span = cpgan_obs::span("graph.cpl");
    let n = g.n();
    if n < 2 {
        return 0.0;
    }
    let sources: Vec<NodeId> = if max_sources >= n {
        (0..n as NodeId).collect()
    } else {
        let step = n as f64 / max_sources as f64;
        (0..max_sources)
            .map(|i| (i as f64 * step) as usize as NodeId)
            .collect()
    };
    // BFS fan-out: one independent traversal per source, integer partials
    // combined in source order (exact, so thread-count independent).
    let (total, pairs) = cpgan_parallel::par_reduce(
        sources.len(),
        1,
        |range| {
            let mut total = 0u64;
            let mut pairs = 0u64;
            for &s in &sources[range] {
                for (v, &d) in bfs_distances(g, s).iter().enumerate() {
                    if d != usize::MAX && v != s as usize {
                        total += d as u64;
                        pairs += 1;
                    }
                }
            }
            (total, pairs)
        },
        |(t1, p1), (t2, p2)| (t1 + t2, p1 + p2),
    )
    .unwrap_or((0, 0));
    if pairs == 0 {
        0.0
    } else {
        total as f64 / pairs as f64
    }
}

/// Graph diameter restricted to the sampled sources (exact when
/// `max_sources >= n` and the graph is connected).
pub fn diameter_lower_bound(g: &Graph, max_sources: usize) -> usize {
    let n = g.n();
    if n == 0 {
        return 0;
    }
    let sources: Vec<NodeId> = if max_sources >= n {
        (0..n as NodeId).collect()
    } else {
        let step = n as f64 / max_sources as f64;
        (0..max_sources)
            .map(|i| (i as f64 * step) as usize as NodeId)
            .collect()
    };
    sources
        .iter()
        .map(|&s| {
            bfs_distances(g, s)
                .into_iter()
                .filter(|&d| d != usize::MAX)
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_on_path() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cpl_path4_exact() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        // Ordered-pair distances: 2*(1+2+3 + 1+2 + 1) = 20 over 12 pairs.
        let cpl = characteristic_path_length(&g, usize::MAX);
        assert!((cpl - 20.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn cpl_disconnected_ignores_unreachable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!((characteristic_path_length(&g, usize::MAX) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diameter_of_path() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(diameter_lower_bound(&g, usize::MAX), 4);
    }

    #[test]
    fn sampled_cpl_close_to_exact() {
        // A cycle: all nodes equivalent, so any source sample is exact.
        let edges: Vec<(u32, u32)> = (0..20u32).map(|i| (i, (i + 1) % 20)).collect();
        let g = Graph::from_edges(20, edges).unwrap();
        let exact = characteristic_path_length(&g, usize::MAX);
        let approx = characteristic_path_length(&g, 5);
        assert!((exact - approx).abs() < 1e-9);
    }
}
