//! Degree distribution helpers.

use crate::Graph;

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max_deg = (0..g.n()).map(|v| g.degree(v as u32)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_deg + 1];
    for v in 0..g.n() {
        hist[g.degree(v as u32)] += 1;
    }
    hist
}

/// Normalized degree distribution: `p[d]` = fraction of nodes with degree `d`.
/// Empty graph yields an empty vector.
pub fn degree_distribution(g: &Graph) -> Vec<f64> {
    if g.n() == 0 {
        return Vec::new();
    }
    let n = g.n() as f64;
    degree_histogram(g)
        .into_iter()
        .map(|c| c as f64 / n)
        .collect()
}

/// Maximum degree in the graph (0 for the empty graph).
pub fn max_degree(g: &Graph) -> usize {
    (0..g.n()).map(|v| g.degree(v as u32)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_star() {
        // Star on 5 nodes: one degree-4 hub, four degree-1 leaves.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
        let p = degree_distribution(&g);
        assert!((p[1] - 0.8).abs() < 1e-12);
        assert!((p[4] - 0.2).abs() < 1e-12);
        assert_eq!(max_degree(&g), 4);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert!(degree_distribution(&g).is_empty());
        assert_eq!(max_degree(&g), 0);
    }
}
