//! Gini coefficient of a degree sequence (paper "GINI").

/// Gini coefficient of `values` (typically a degree sequence), in `[0, 1)`.
///
/// Uses the sorted-rank formula
/// `G = (2 * sum_i i*x_(i) / (n * sum x)) - (n + 1) / n`
/// with 1-based ranks over the ascending sort. Returns 0 for empty input or
/// an all-zero sequence.
pub fn gini_coefficient(values: &[usize]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    // Sort the integer degrees directly: no NaN case to reason about, and
    // integer comparison is cheaper than float comparison.
    let mut ordered: Vec<usize> = values.to_vec();
    ordered.sort_unstable();
    let sorted: Vec<f64> = ordered.into_iter().map(|v| v as f64).collect();
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_gini_zero() {
        assert!(gini_coefficient(&[3, 3, 3, 3]).abs() < 1e-12);
    }

    #[test]
    fn concentrated_values_near_one() {
        let mut v = vec![0usize; 999];
        v.push(1_000_000);
        let g = gini_coefficient(&v);
        assert!(g > 0.99, "gini was {g}");
    }

    #[test]
    fn known_small_case() {
        // For [1, 3]: mean abs diff = |1-3| * 2 / 4 = 1; 2*mean = 4; G = 1/4.
        let g = gini_coefficient(&[1, 3]);
        assert!((g - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero() {
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[0, 0]), 0.0);
    }
}
