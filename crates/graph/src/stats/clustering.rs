//! Local clustering coefficients (triangle-based).

use crate::{Graph, NodeId};

/// Number of triangles through node `v`, computed by merging sorted neighbor
/// lists (`O(sum over neighbors of deg)`).
fn triangles_at(g: &Graph, v: NodeId) -> usize {
    let nv = g.neighbors(v);
    let mut count = 0usize;
    for (i, &w) in nv.iter().enumerate() {
        let nw = g.neighbors(w);
        // Intersect nv[i+1..] with nw via two-pointer merge.
        let rest = &nv[i + 1..];
        let (mut a, mut b) = (0usize, 0usize);
        while a < rest.len() && b < nw.len() {
            match rest[a].cmp(&nw[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    a += 1;
                    b += 1;
                }
            }
        }
    }
    count
}

/// Nodes per parallel block for the per-node statistics. Fixed (not
/// thread-dependent) so results are identical at every `CPGAN_THREADS`
/// setting.
const NODE_CHUNK: usize = 256;

/// Local clustering coefficient per node: `2T(v) / (deg(v)(deg(v)-1))`,
/// defined as 0 for degree < 2. Node-blocked across the pool (each
/// coefficient is independent, so the output is thread-count independent).
pub fn local_clustering(g: &Graph) -> Vec<f64> {
    let _span = cpgan_obs::span("graph.clustering");
    let mut out = vec![0.0f64; g.n()];
    cpgan_parallel::par_chunks_mut(&mut out, NODE_CHUNK, |ci, chunk| {
        for (k, slot) in chunk.iter_mut().enumerate() {
            let v = (ci * NODE_CHUNK + k) as NodeId;
            let d = g.degree(v);
            if d >= 2 {
                let t = triangles_at(g, v);
                *slot = 2.0 * t as f64 / (d * (d - 1)) as f64;
            }
        }
    });
    out
}

/// Mean local clustering coefficient (0 for the empty graph).
pub fn mean_clustering(g: &Graph) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    local_clustering(g).iter().sum::<f64>() / g.n() as f64
}

/// Total number of triangles in the graph.
pub fn triangle_count(g: &Graph) -> usize {
    // Each triangle is counted at all three vertices. Integer partial sums
    // are exact, so any ordered combine reproduces the serial count.
    cpgan_parallel::par_reduce(
        g.n(),
        NODE_CHUNK,
        |nodes| nodes.map(|v| triangles_at(g, v as NodeId)).sum::<usize>(),
        |a, b| a + b,
    )
    .unwrap_or(0)
        / 3
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn triangle_is_fully_clustered() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(local_clustering(&g), vec![1.0, 1.0, 1.0]);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn path_has_no_triangles() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(mean_clustering(&g), 0.0);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn square_with_diagonal() {
        // 0-1-2-3-0 plus diagonal 0-2: two triangles (0,1,2) and (0,2,3).
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        assert_eq!(triangle_count(&g), 2);
        let cc = local_clustering(&g);
        // Node 1 has neighbors {0, 2} which are adjacent: cc = 1.
        assert!((cc[1] - 1.0).abs() < 1e-12);
        // Node 0 has neighbors {1, 2, 3}; pairs (1,2) and (2,3) adjacent: 2/3.
        assert!((cc[0] - 2.0 / 3.0).abs() < 1e-12);
    }
}
