//! k-core decomposition (peeling order), a standard structural summary for
//! comparing generated graphs.

use crate::{Graph, NodeId};

/// Core number per node: the largest `k` such that the node belongs to a
/// subgraph where every node has degree >= `k`. Computed by the
/// Batagelj–Zaveršnik bucket-peeling algorithm in `O(n + m)`.
pub fn core_numbers(g: &Graph) -> Vec<usize> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = g.degrees();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort nodes by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0 as NodeId; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            pos[v] = cursor[degree[v]];
            vert[pos[v]] = v as NodeId;
            cursor[degree[v]] += 1;
        }
    }
    let mut core = degree.clone();
    for i in 0..n {
        let v = vert[i];
        core[v as usize] = degree[v as usize];
        for &w in g.neighbors(v) {
            let w = w as usize;
            if degree[w] > degree[v as usize] {
                // Move w one bucket down.
                let dw = degree[w];
                let pw = pos[w];
                let ps = bin[dw];
                let s = vert[ps];
                if w != s as usize {
                    vert.swap(pw, ps);
                    pos[w] = ps;
                    pos[s as usize] = pw;
                }
                bin[dw] += 1;
                degree[w] -= 1;
            }
        }
    }
    core
}

/// The degeneracy of the graph (maximum core number).
pub fn degeneracy(g: &Graph) -> usize {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_core_numbers() {
        // K4: every node has core number 3.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(core_numbers(&g), vec![3, 3, 3, 3]);
        assert_eq!(degeneracy(&g), 3);
    }

    #[test]
    fn clique_with_pendant() {
        // K4 plus a pendant node: pendant core 1, clique core 3.
        let g =
            Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let core = core_numbers(&g);
        assert_eq!(core[4], 1);
        assert_eq!(core[0], 3);
    }

    #[test]
    fn path_all_core_one() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert!(core_numbers(&g).iter().all(|&c| c == 1));
    }

    #[test]
    fn core_invariant_holds() {
        // Every node's core number is at most its degree, and the k-core
        // subgraph induced by nodes with core >= k has min degree >= k.
        let mut edges = Vec::new();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                if (a * 3 + b) % 4 != 0 {
                    edges.push((a, b));
                }
            }
        }
        edges.push((0, 8));
        edges.push((8, 9));
        let g = Graph::from_edges(10, edges).unwrap();
        let core = core_numbers(&g);
        for (v, &c) in core.iter().enumerate() {
            assert!(c <= g.degree(v as u32));
        }
        let k = degeneracy(&g);
        let members: Vec<u32> = (0..g.n() as u32)
            .filter(|&v| core[v as usize] >= k)
            .collect();
        let (sub, _) = g.induced_subgraph(&members);
        assert!(
            sub.degrees().iter().all(|&d| d >= k),
            "k-core property violated"
        );
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert!(core_numbers(&g).is_empty());
        assert_eq!(degeneracy(&g), 0);
    }
}
