//! Maximum Mean Discrepancy between graph-statistic distributions.
//!
//! The paper's "Deg." and "Clus." columns (Tables IV–VI) are MMD values
//! between the degree / clustering-coefficient distributions of the observed
//! and generated graphs, following the GraphRNN evaluation protocol: each
//! graph is summarized as a histogram, histograms are compared with a
//! Gaussian kernel over the first Wasserstein (earth mover's) distance, and
//! MMD^2 is the standard biased two-sample estimate.

use crate::stats::{clustering, degree};
use crate::Graph;

/// First Wasserstein distance between two discrete distributions given as
/// (possibly different-length) histograms over the same integer grid.
pub fn emd_1d(p: &[f64], q: &[f64]) -> f64 {
    let len = p.len().max(q.len());
    let mut cum_p = 0.0;
    let mut cum_q = 0.0;
    let mut dist = 0.0;
    for i in 0..len {
        cum_p += p.get(i).copied().unwrap_or(0.0);
        cum_q += q.get(i).copied().unwrap_or(0.0);
        dist += (cum_p - cum_q).abs();
    }
    dist
}

/// Gaussian kernel over the EMD: `exp(-W1(p, q)^2 / (2 sigma^2))`.
pub fn gaussian_emd_kernel(p: &[f64], q: &[f64], sigma: f64) -> f64 {
    gaussian_emd_kernel_scaled(p, q, sigma, 1.0)
}

/// Gaussian EMD kernel with the W1 distance measured in units of
/// `bin_width` (clustering-coefficient histograms live on `[0, 1]` with
/// 1/[`CLUSTERING_BINS`] wide bins; degree histograms use unit bins).
pub fn gaussian_emd_kernel_scaled(p: &[f64], q: &[f64], sigma: f64, bin_width: f64) -> f64 {
    let d = emd_1d(p, q) * bin_width;
    (-d * d / (2.0 * sigma * sigma)).exp()
}

/// Biased MMD^2 estimate between two samples of histograms.
///
/// `MMD^2 = E[k(x,x')] + E[k(y,y')] - 2 E[k(x,y)]`, clamped at 0 to absorb
/// floating-point negativity of the biased estimator.
pub fn mmd_squared(xs: &[Vec<f64>], ys: &[Vec<f64>], sigma: f64) -> f64 {
    mmd_squared_scaled(xs, ys, sigma, 1.0)
}

/// [`mmd_squared`] with the EMD measured in units of `bin_width`.
pub fn mmd_squared_scaled(xs: &[Vec<f64>], ys: &[Vec<f64>], sigma: f64, bin_width: f64) -> f64 {
    let _span = cpgan_obs::span("graph.mmd");
    cpgan_obs::hist_record("graph.mmd.pairs", (xs.len() * ys.len()) as f64);
    /// Rows of `a` per parallel chunk of the kernel-matrix sum. Fixed (not
    /// thread-dependent) so partial sums combine identically at every
    /// `CPGAN_THREADS` setting.
    const ROW_CHUNK: usize = 4;
    fn mean_kernel(a: &[Vec<f64>], b: &[Vec<f64>], sigma: f64, w: f64) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let total = cpgan_parallel::par_reduce(
            a.len(),
            ROW_CHUNK,
            |rows| {
                let mut partial = 0.0;
                for p in &a[rows] {
                    for q in b {
                        partial += gaussian_emd_kernel_scaled(p, q, sigma, w);
                    }
                }
                partial
            },
            |x, y| x + y,
        )
        .unwrap_or(0.0);
        total / (a.len() * b.len()) as f64
    }
    let v = mean_kernel(xs, xs, sigma, bin_width) + mean_kernel(ys, ys, sigma, bin_width)
        - 2.0 * mean_kernel(xs, ys, sigma, bin_width);
    v.max(0.0)
}

/// Default kernel bandwidth used by the GraphRNN evaluation scripts.
pub const DEFAULT_SIGMA: f64 = 1.0;

/// Number of bins used to histogram clustering coefficients in `[0, 1]`.
pub const CLUSTERING_BINS: usize = 100;

/// Normalized degree histogram of a graph (sums to 1; empty graph -> empty).
pub fn degree_histogram_normalized(g: &Graph) -> Vec<f64> {
    degree::degree_distribution(g)
}

/// Normalized histogram of local clustering coefficients over
/// [`CLUSTERING_BINS`] equal bins of `[0, 1]`.
pub fn clustering_histogram_normalized(g: &Graph) -> Vec<f64> {
    let mut hist = vec![0.0f64; CLUSTERING_BINS];
    if g.n() == 0 {
        return hist;
    }
    for c in clustering::local_clustering(g) {
        let bin = ((c * CLUSTERING_BINS as f64) as usize).min(CLUSTERING_BINS - 1);
        hist[bin] += 1.0;
    }
    let n = g.n() as f64;
    for h in &mut hist {
        *h /= n;
    }
    hist
}

/// MMD^2 between the degree distributions of two graphs (paper "Deg.").
pub fn degree_mmd(observed: &Graph, generated: &Graph) -> f64 {
    mmd_squared(
        &[degree_histogram_normalized(observed)],
        &[degree_histogram_normalized(generated)],
        DEFAULT_SIGMA,
    )
}

/// MMD^2 between the clustering-coefficient distributions (paper "Clus.").
/// The W1 distance is measured in coefficient units (`[0, 1]` support, bin
/// width `1/CLUSTERING_BINS`), following the GraphRNN evaluation scripts.
pub fn clustering_mmd(observed: &Graph, generated: &Graph) -> f64 {
    mmd_squared_scaled(
        &[clustering_histogram_normalized(observed)],
        &[clustering_histogram_normalized(generated)],
        DEFAULT_SIGMA,
        1.0 / CLUSTERING_BINS as f64,
    )
}

/// MMD^2 between two *sets* of graphs' degree distributions, for callers that
/// evaluate a generator over several samples.
pub fn degree_mmd_sets(observed: &[Graph], generated: &[Graph]) -> f64 {
    let xs: Vec<Vec<f64>> = observed.iter().map(degree_histogram_normalized).collect();
    let ys: Vec<Vec<f64>> = generated.iter().map(degree_histogram_normalized).collect();
    mmd_squared(&xs, &ys, DEFAULT_SIGMA)
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn emd_identical_zero() {
        let p = vec![0.25, 0.5, 0.25];
        assert_eq!(emd_1d(&p, &p), 0.0);
    }

    #[test]
    fn emd_shift_by_one() {
        // Moving all mass one bin right costs 1.
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        assert!((emd_1d(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emd_handles_unequal_lengths() {
        let p = vec![1.0];
        let q = vec![0.0, 0.0, 1.0];
        assert!((emd_1d(&p, &q) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mmd_zero_for_same_graph() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!(degree_mmd(&g, &g) < 1e-12);
        assert!(clustering_mmd(&g, &g) < 1e-12);
    }

    #[test]
    fn mmd_larger_for_more_different_graphs() {
        let path = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let near = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let star = Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        let d_near = degree_mmd(&path, &near);
        let d_far = degree_mmd(&path, &star);
        assert!(d_far > d_near, "far {d_far} <= near {d_near}");
    }

    #[test]
    fn mmd_sets_symmetric() {
        let a = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        let b = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let xy = degree_mmd_sets(std::slice::from_ref(&a), std::slice::from_ref(&b));
        let yx = degree_mmd_sets(&[b], &[a]);
        assert!((xy - yx).abs() < 1e-12);
    }
}
