//! Edge-list I/O.
//!
//! The interchange format is the whitespace-separated edge list used by the
//! SNAP datasets the paper evaluates on: one `u v` pair per line, `#`-prefixed
//! comment lines ignored. Node count is `max id + 1` unless a
//! `# nodes: <n>` header is present.

use crate::{Graph, GraphBuilder, GraphError};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parses a graph from an edge-list reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut declared_n: Option<usize> = None;
    let mut max_id: u32 = 0;
    let mut seen_any = false;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(v) = rest.strip_prefix("nodes:") {
                declared_n = Some(v.trim().parse().map_err(|e| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("bad node count: {e}"),
                })?);
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, lineno: usize| -> Result<u32, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "expected two node ids".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad node id: {e}"),
            })
        };
        let u = parse(it.next(), lineno)?;
        let v = parse(it.next(), lineno)?;
        max_id = max_id.max(u).max(v);
        seen_any = true;
        edges.push((u, v));
    }
    let n = declared_n.unwrap_or(if seen_any { max_id as usize + 1 } else { 0 });
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

/// Writes a graph as an edge list with a `# nodes:` header (so isolated
/// trailing nodes round-trip).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<(), GraphError> {
    writeln!(writer, "# nodes: {}", g.n())?;
    for &(u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Loads a graph from an edge-list file.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Saves a graph to an edge-list file.
pub fn save<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\n0 1\n# another\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn header_preserves_isolated_nodes() {
        let text = "# nodes: 10\n0 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 10);
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn missing_second_id_is_error() {
        let err = read_edge_list("3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }
}
