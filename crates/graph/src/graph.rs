use crate::builder::{DuplicatePolicy, SelfLoopPolicy};
use crate::{GraphBuilder, GraphError, NodeId};

/// An undirected simple graph in compressed sparse row (CSR) form.
///
/// Self-loops and duplicate edges are removed at construction. Neighbor lists
/// are sorted, so adjacency queries are `O(log deg)` and neighbor-set
/// intersections (triangle counting) are linear merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists, length `2m`.
    neighbors: Vec<NodeId>,
    /// Canonical edge list (`u < v`), sorted.
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge iterator.
    ///
    /// Duplicate edges, reversed duplicates, and self-loops are dropped.
    /// Returns an error if any endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Builds a graph with `n` nodes from a *re-playable* edge stream in two
    /// passes, without materializing an intermediate edge `Vec`.
    ///
    /// `make_edges` is called twice and must yield the same sequence both
    /// times (e.g. a closure re-opening a file, or re-borrowing a slice).
    /// Pass 1 counts degrees; pass 2 scatters endpoints directly into the
    /// CSR arrays, which are then row-sorted and deduplicated in place. Peak
    /// transient memory is the `n + 1` cursor array — the builder never holds
    /// the `O(m)` edge list *and* a scatter buffer at once, which is what
    /// makes the 500k-node shard ingest fit its byte budget
    /// (`cpgan-shard`, DESIGN.md §14).
    ///
    /// Self-loop and duplicate handling are explicit policy arguments; with
    /// [`SelfLoopPolicy::Drop`] and [`DuplicatePolicy::Merge`] the result is
    /// identical to [`Graph::from_edges`] on the same sequence.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] on an endpoint `>= n`;
    /// [`GraphError::Stream`] on a policy violation or if the two passes
    /// disagree (a non-replayable iterator).
    pub fn from_edge_stream<I, F>(
        n: usize,
        mut make_edges: F,
        loops: SelfLoopPolicy,
        dups: DuplicatePolicy,
    ) -> Result<Self, GraphError>
    where
        F: FnMut() -> I,
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        // Pass 1: validate endpoints and count both directions of every kept
        // edge.
        let mut degrees = vec![0usize; n];
        let mut kept = 0usize;
        for (u, v) in make_edges() {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u as u64, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v as u64, n });
            }
            if u == v {
                match loops {
                    SelfLoopPolicy::Drop => continue,
                    SelfLoopPolicy::Error => {
                        return Err(GraphError::Stream(format!("self-loop at node {u}")));
                    }
                }
            }
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
            kept += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        drop(degrees);

        // Pass 2: scatter endpoints straight into the CSR neighbor array.
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; acc];
        let mut seen = 0usize;
        for (u, v) in make_edges() {
            if u == v || u as usize >= n || v as usize >= n {
                continue; // pass 1 already applied the policy
            }
            seen += 1;
            if seen > kept {
                break; // diagnosed below
            }
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        if seen != kept {
            return Err(GraphError::Stream(format!(
                "edge stream is not replayable: pass 1 kept {kept} edges, pass 2 yielded {seen}"
            )));
        }
        drop(cursor);

        // Sort each neighbor run and deduplicate in place, compacting the
        // runs leftwards (write never overtakes read).
        let mut write = 0usize;
        let mut compact = Vec::with_capacity(n + 1);
        compact.push(0);
        for v in 0..n {
            let (s, e) = (offsets[v], offsets[v + 1]);
            neighbors[s..e].sort_unstable();
            let mut prev = NodeId::MAX;
            for i in s..e {
                let w = neighbors[i];
                if w == prev {
                    if dups == DuplicatePolicy::Error {
                        let (a, b) = if (v as NodeId) < w {
                            (v as NodeId, w)
                        } else {
                            (w, v as NodeId)
                        };
                        return Err(GraphError::Stream(format!("duplicate edge ({a}, {b})")));
                    }
                    continue;
                }
                prev = w;
                neighbors[write] = w;
                write += 1;
            }
            compact.push(write);
        }
        neighbors.truncate(write);

        // Canonical sorted edge list from the upper-triangle scan.
        let mut edges = Vec::with_capacity(write / 2);
        for v in 0..n {
            for &w in &neighbors[compact[v]..compact[v + 1]] {
                if (v as NodeId) < w {
                    edges.push((v as NodeId, w));
                }
            }
        }
        Ok(Graph {
            n,
            offsets: compact,
            neighbors,
            edges,
        })
    }

    /// Internal constructor used by [`GraphBuilder`]; `edges` must already be
    /// canonical (`u < v`), sorted, and deduplicated.
    pub(crate) fn from_canonical_edges(n: usize, edges: Vec<(NodeId, NodeId)>) -> Self {
        let mut degrees = vec![0usize; n];
        for &(u, v) in &edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; acc];
        for &(u, v) in &edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Edges are sorted by (u, v), so each node's neighbor run is filled in
        // ascending order for the `u` side but the `v` side interleaves; sort
        // each run to restore the invariant.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph {
            n,
            offsets,
            neighbors,
            edges,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbor slice of node `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the edge `{u, v}` exists (`O(log deg(u))`).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u as usize >= self.n || v as usize >= self.n {
            return false;
        }
        // Probe from the lower-degree endpoint.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Canonical sorted edge list (`u < v`).
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Degree sequence (indexed by node).
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.n).map(|v| self.degree(v as NodeId)).collect()
    }

    /// Mean degree `2m / n` (0 for the empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n as f64
        }
    }

    /// The induced subgraph on `nodes`, relabelled `0..nodes.len()`.
    ///
    /// Nodes may be listed in any order; duplicates are ignored (first
    /// occurrence wins). Returns the subgraph and the mapping from new index
    /// to original node id.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut map = vec![NodeId::MAX; self.n];
        let mut order = Vec::with_capacity(nodes.len());
        for &v in nodes {
            if map[v as usize] == NodeId::MAX {
                map[v as usize] = order.len() as NodeId;
                order.push(v);
            }
        }
        let mut edges = Vec::new();
        for (new_u, &u) in order.iter().enumerate() {
            for &w in self.neighbors(u) {
                let new_w = map[w as usize];
                if new_w != NodeId::MAX && (new_u as NodeId) < new_w {
                    edges.push((new_u as NodeId, new_w));
                }
            }
        }
        edges.sort_unstable();
        (Graph::from_canonical_edges(order.len(), edges), order)
    }

    /// Applies a node permutation: node `v` becomes `perm[v]`.
    ///
    /// `perm` must be a permutation of `0..n`. Used by permutation-invariance
    /// tests (paper Eq. 5).
    pub fn permute(&self, perm: &[NodeId]) -> Graph {
        assert_eq!(perm.len(), self.n, "permutation length must equal n");
        let mut edges: Vec<(NodeId, NodeId)> = self
            .edges
            .iter()
            .map(|&(u, v)| {
                let (a, b) = (perm[u as usize], perm[v as usize]);
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        edges.sort_unstable();
        Graph::from_canonical_edges(self.n, edges)
    }

    /// Node ids of the largest connected component.
    pub fn largest_component(&self) -> Vec<NodeId> {
        let mut comp = vec![usize::MAX; self.n];
        let mut best: (usize, usize) = (0, 0); // (size, id)
        let mut next_comp = 0usize;
        let mut stack = Vec::new();
        for start in 0..self.n {
            if comp[start] != usize::MAX {
                continue;
            }
            let id = next_comp;
            next_comp += 1;
            let mut size = 0usize;
            stack.push(start);
            comp[start] = id;
            while let Some(v) = stack.pop() {
                size += 1;
                for &w in self.neighbors(v as NodeId) {
                    let w = w as usize;
                    if comp[w] == usize::MAX {
                        comp[w] = id;
                        stack.push(w);
                    }
                }
            }
            if size > best.0 {
                best = (size, id);
            }
        }
        (0..self.n)
            .filter(|&v| comp[v] == best.1)
            .map(|v| v as NodeId)
            .collect()
    }

    /// Dense symmetric adjacency matrix as row-major `f32` (for small graphs
    /// fed to the neural models).
    pub fn dense_adjacency(&self) -> Vec<f32> {
        let n = self.n;
        let mut a = vec![0.0f32; n * n];
        for &(u, v) in &self.edges {
            a[u as usize * n + v as usize] = 1.0;
            a[v as usize * n + u as usize] = 1.0;
        }
        a
    }
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.mean_degree(), 1.5);
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2)]).unwrap();
        assert_eq!(g.m(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Graph::from_edges(2, [(0, 5)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, n: 2 }));
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let (sub, order) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2); // 1-2 and 2-3 survive
        assert_eq!(order, vec![1, 2, 3]);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn permute_preserves_structure() {
        let g = path4();
        let p = g.permute(&[3, 2, 1, 0]);
        assert_eq!(p.m(), g.m());
        assert!(p.has_edge(3, 2));
        assert!(p.has_edge(2, 1));
        assert!(p.has_edge(1, 0));
    }

    #[test]
    fn largest_component_found() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(g.largest_component(), vec![0, 1, 2]);
    }

    #[test]
    fn stream_matches_from_edges() {
        // Drop+Merge must be byte-identical to the buffered path, including
        // messy input (reversed duplicates, self-loops, unsorted order).
        let raw: Vec<(NodeId, NodeId)> = vec![(3, 1), (0, 1), (1, 0), (2, 2), (1, 2), (0, 1)];
        let buffered = Graph::from_edges(4, raw.iter().copied()).unwrap();
        let streamed = Graph::from_edge_stream(
            4,
            || raw.iter().copied(),
            SelfLoopPolicy::Drop,
            DuplicatePolicy::Merge,
        )
        .unwrap();
        assert_eq!(streamed, buffered);
    }

    #[test]
    fn stream_policies_reject() {
        let with_loop = [(0, 1), (2, 2)];
        let err = Graph::from_edge_stream(
            3,
            || with_loop.iter().copied(),
            SelfLoopPolicy::Error,
            DuplicatePolicy::Merge,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Stream(_)), "{err}");

        let with_dup = [(0, 1), (1, 0)];
        let err = Graph::from_edge_stream(
            3,
            || with_dup.iter().copied(),
            SelfLoopPolicy::Drop,
            DuplicatePolicy::Error,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Stream(_)), "{err}");

        let err = Graph::from_edge_stream(
            2,
            || [(0, 7)].iter().copied(),
            SelfLoopPolicy::Drop,
            DuplicatePolicy::Merge,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 7, n: 2 }));
    }

    #[test]
    fn stream_detects_non_replayable_iterator() {
        use std::cell::Cell;
        let calls = Cell::new(0usize);
        let err = Graph::from_edge_stream(
            4,
            || {
                let pass = calls.get();
                calls.set(pass + 1);
                // Second pass yields one edge fewer than the first.
                let take = if pass == 0 { 3 } else { 2 };
                [(0, 1), (1, 2), (2, 3)].into_iter().take(take)
            },
            SelfLoopPolicy::Drop,
            DuplicatePolicy::Merge,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Stream(_)), "{err}");
    }

    #[test]
    fn stream_empty_and_edgeless() {
        let g = Graph::from_edge_stream(
            0,
            std::iter::empty,
            SelfLoopPolicy::Drop,
            DuplicatePolicy::Merge,
        )
        .unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        let g = Graph::from_edge_stream(
            5,
            std::iter::empty,
            SelfLoopPolicy::Drop,
            DuplicatePolicy::Merge,
        )
        .unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn dense_adjacency_symmetric() {
        let g = path4();
        let a = g.dense_adjacency();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(a[i * 4 + j], a[j * 4 + i]);
            }
        }
        assert_eq!(a[1], 1.0); // edge (0,1)
        assert_eq!(a[3], 0.0); // no edge (0,3)
    }
}
