use crate::{Graph, GraphError, NodeId};

/// What [`Graph::from_edge_stream`] does with a self-loop `(v, v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelfLoopPolicy {
    /// Drop the loop silently (matches [`GraphBuilder`] and every generator
    /// in the paper).
    Drop,
    /// Fail with [`GraphError::Stream`] — for ingest paths where a loop
    /// indicates corrupt input rather than generator slack.
    Error,
}

/// What [`Graph::from_edge_stream`] does with a duplicate edge (including a
/// reversed duplicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuplicatePolicy {
    /// Keep one copy (matches [`GraphBuilder::build`]'s dedup).
    Merge,
    /// Fail with [`GraphError::Stream`] naming the duplicated edge.
    Error,
}

/// Incremental builder for [`Graph`].
///
/// Collects edges, canonicalizes them (`u < v`), and deduplicates at
/// [`build`](GraphBuilder::build) time. Self-loops are silently dropped, which
/// matches how every generator in the paper post-processes its output.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with pre-reserved capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u as usize >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: u as u64,
                n: self.n,
            });
        }
        if v as usize >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: v as u64,
                n: self.n,
            });
        }
        if u == v {
            return Ok(());
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        Ok(())
    }

    /// Like [`add_edge`](Self::add_edge) but panics on out-of-range indices.
    /// For generator code where indices are produced in-range by construction.
    pub fn push_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        if u != v {
            self.edges.push(if u < v { (u, v) } else { (v, u) });
        }
    }

    /// Number of edges currently buffered (before dedup).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalizes into a [`Graph`], deduplicating edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_canonical_edges(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_dedups() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        b.add_edge(1, 1).unwrap();
        b.push_edge(2, 1);
        let g = b.build();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn builder_capacity_and_len() {
        let mut b = GraphBuilder::with_capacity(4, 8);
        assert!(b.is_empty());
        b.push_edge(0, 3);
        assert_eq!(b.len(), 1);
    }
}
