#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Graph substrate for the CPGAN reproduction.
//!
//! Provides the undirected [`Graph`] type used throughout the workspace
//! (compressed sparse row adjacency), graph statistics matching the paper's
//! evaluation metrics (degree distribution, clustering coefficients,
//! characteristic path length, Gini index, power-law exponent), Maximum Mean
//! Discrepancy between statistic distributions, spectral node embeddings, and
//! edge-list I/O.
//!
//! # Example
//!
//! ```
//! use cpgan_graph::{Graph, stats};
//!
//! // A triangle plus a pendant vertex.
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
//! assert_eq!(g.n(), 4);
//! assert_eq!(g.m(), 4);
//! assert_eq!(g.degree(2), 3);
//! let cc = stats::clustering::local_clustering(&g);
//! assert!((cc[0] - 1.0).abs() < 1e-12);
//! ```

mod builder;
mod error;
mod graph;
pub mod io;
pub mod mmd;
pub mod sampling;
pub mod spectral;
pub mod stats;

pub use builder::{DuplicatePolicy, GraphBuilder, SelfLoopPolicy};
pub use error::GraphError;
pub use graph::Graph;

/// Node index type used across the workspace. `u32` keeps adjacency compact
/// (the paper's largest graph has 875k nodes, far below `u32::MAX`).
pub type NodeId = u32;
