//! Spectral node embeddings.
//!
//! The paper sets the default node feature matrix to spectral embeddings of
//! the adjacency matrix, `X = X(A)` (§III-C1). We compute the top-`d`
//! eigenvectors of the self-loop-augmented symmetric normalized adjacency
//! `Â = D̃^{-1/2} (A + I) D̃^{-1/2}` by orthogonal (subspace) iteration with
//! Gram–Schmidt re-orthonormalization, using only sparse mat-vec products —
//! `O(iters * d * (m + n d))`, which scales to the 100k-node sweeps.

use crate::{Graph, NodeId};

/// Multiplies `Â x` into `out` where `Â` is the normalized adjacency with
/// self-loops of `g`. `inv_sqrt_deg[v] = 1 / sqrt(deg(v) + 1)`.
fn normalized_adj_matvec(g: &Graph, inv_sqrt_deg: &[f64], x: &[f64], out: &mut [f64]) {
    for v in 0..g.n() {
        let dv = inv_sqrt_deg[v];
        // Self-loop contribution: Â_vv = 1 / (deg(v) + 1).
        let mut acc = dv * dv * x[v];
        for &w in g.neighbors(v as NodeId) {
            acc += dv * inv_sqrt_deg[w as usize] * x[w as usize];
        }
        out[v] = acc;
    }
}

/// Orthonormalizes `cols` (each of length `n`) in place via modified
/// Gram–Schmidt. Columns that collapse to (near) zero are re-seeded
/// deterministically so the subspace keeps full rank.
fn gram_schmidt(cols: &mut [Vec<f64>], reseed: &mut u64) {
    let k = cols.len();
    for i in 0..k {
        for j in 0..i {
            let dot: f64 = cols[i].iter().zip(&cols[j]).map(|(a, b)| a * b).sum();
            let (head, tail) = cols.split_at_mut(i);
            let cj = &head[j];
            for (a, b) in tail[0].iter_mut().zip(cj) {
                *a -= dot * b;
            }
        }
        let norm: f64 = cols[i].iter().map(|a| a * a).sum::<f64>().sqrt();
        if norm < 1e-12 {
            // Degenerate direction (e.g. d exceeds the spectrum's effective
            // rank): reseed with a deterministic pseudo-random vector.
            for (idx, a) in cols[i].iter_mut().enumerate() {
                *reseed = reseed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(idx as u64 | 1);
                *a = ((*reseed >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            }
            let n2: f64 = cols[i].iter().map(|a| a * a).sum::<f64>().sqrt();
            for a in cols[i].iter_mut() {
                *a /= n2;
            }
        } else {
            for a in cols[i].iter_mut() {
                *a /= norm;
            }
        }
    }
}

/// Computes a row-major `n x d` spectral embedding of `g`.
///
/// Deterministic for a given `(g, d, seed)`. For `d = 0` or an empty graph an
/// empty vector is returned.
pub fn spectral_embedding(g: &Graph, d: usize, seed: u64) -> Vec<f32> {
    let _span = cpgan_obs::span("graph.spectral");
    let n = g.n();
    if n == 0 || d == 0 {
        return Vec::new();
    }
    let d = d.min(n);
    let inv_sqrt_deg: Vec<f64> = (0..n)
        .map(|v| 1.0 / ((g.degree(v as NodeId) as f64) + 1.0).sqrt())
        .collect();

    // Deterministic pseudo-random initial subspace (SplitMix-style stream).
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut cols: Vec<Vec<f64>> = (0..d)
        .map(|_| {
            (0..n)
                .map(|_| ((next() >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
                .collect()
        })
        .collect();
    let mut reseed = seed | 1;
    gram_schmidt(&mut cols, &mut reseed);

    // Each column's mat-vec is independent, so the d columns fan out across
    // the pool (one column per chunk, each worker with its own scratch
    // buffer); Gram–Schmidt couples the columns and stays serial.
    let iters = 30 + 2 * d;
    for _ in 0..iters {
        cpgan_parallel::par_chunks_mut(&mut cols, 1, |_, chunk| {
            for col in chunk.iter_mut() {
                let mut tmp = vec![0.0f64; n];
                normalized_adj_matvec(g, &inv_sqrt_deg, col, &mut tmp);
                *col = tmp;
            }
        });
        gram_schmidt(&mut cols, &mut reseed);
    }

    // Interleave into row-major n x d, f32.
    let mut out = vec![0.0f32; n * d];
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            out[i * d + j] = v as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn karate_like() -> Graph {
        // Two 6-cliques joined by one bridge edge: strong 2-community graph.
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
                edges.push((u + 6, v + 6));
            }
        }
        edges.push((0, 6));
        Graph::from_edges(12, edges).unwrap()
    }

    #[test]
    fn embedding_shape_and_determinism() {
        let g = karate_like();
        let e1 = spectral_embedding(&g, 4, 7);
        let e2 = spectral_embedding(&g, 4, 7);
        assert_eq!(e1.len(), 12 * 4);
        assert_eq!(e1, e2);
    }

    #[test]
    fn leading_eigenvector_separates_components() {
        // Two disjoint triangles: the top-2 eigenspace is spanned by the
        // component indicators, so rows within a component agree and across
        // components differ in the 2-d embedding.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let e = spectral_embedding(&g, 2, 3);
        let row = |i: usize| (e[i * 2] as f64, e[i * 2 + 1] as f64);
        let d_same = {
            let (a, b) = (row(0), row(1));
            ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
        };
        let d_diff = {
            let (a, b) = (row(0), row(3));
            ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
        };
        assert!(d_same < 1e-6, "within-component distance {d_same}");
        assert!(d_diff > 0.1, "cross-component distance {d_diff}");
    }

    #[test]
    fn columns_orthonormal() {
        let g = karate_like();
        let d = 3;
        let e = spectral_embedding(&g, d, 11);
        let n = g.n();
        for a in 0..d {
            for b in a..d {
                let dot: f64 = (0..n)
                    .map(|i| e[i * d + a] as f64 * e[i * d + b] as f64)
                    .sum();
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-3, "col {a}·{b} = {dot}");
            }
        }
    }

    #[test]
    fn d_capped_at_n() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let e = spectral_embedding(&g, 10, 1);
        assert_eq!(e.len(), 3 * 3);
    }
}
