//! The six benchmark dataset stand-ins (paper Table II).

use crate::planted::{self, PlantedConfig};
use crate::pointcloud::{self, PointCloudConfig};
use cpgan_graph::Graph;

/// Published statistics of one paper dataset (Table II) plus the synthesizer
/// parameters that reproduce them.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper's tables.
    pub name: &'static str,
    /// Paper: number of nodes.
    pub n: usize,
    /// Paper: number of edges.
    pub m: usize,
    /// Paper: number of communities.
    pub communities: usize,
    /// Paper: mean degree.
    pub mean_degree: f64,
    /// Paper: characteristic path length.
    pub cpl: f64,
    /// Paper: Gini coefficient.
    pub gini: f64,
    /// Paper: power-law exponent.
    pub pwe: f64,
    /// Synthesizer: mixing fraction for the planted model.
    mixing: f64,
    /// Synthesizer: whether this is the constructive point-cloud dataset.
    spatial: bool,
}

/// All six datasets with their Table II statistics.
pub const PAPER_DATASETS: [DatasetSpec; 6] = [
    DatasetSpec {
        name: "Citeseer",
        n: 3327,
        m: 4732,
        communities: 473,
        mean_degree: 2.8446,
        cpl: 5.9389,
        gini: 0.6769,
        pwe: 2.8757,
        mixing: 0.2,
        spatial: false,
    },
    DatasetSpec {
        name: "PubMed",
        n: 19717,
        m: 44338,
        communities: 2488,
        mean_degree: 4.4974,
        cpl: 6.3369,
        gini: 0.8844,
        pwe: 1.4743,
        mixing: 0.2,
        spatial: false,
    },
    DatasetSpec {
        name: "PPI",
        n: 2361,
        m: 6646,
        communities: 371,
        mean_degree: 5.8196,
        cpl: 4.3762,
        gini: 0.7432,
        pwe: 1.9029,
        mixing: 0.25,
        spatial: false,
    },
    DatasetSpec {
        name: "3D Point Cloud",
        n: 5037,
        m: 10886,
        communities: 1577,
        mean_degree: 4.3224,
        cpl: 32.40,
        gini: 0.8278,
        pwe: 1.9276,
        mixing: 0.0,
        spatial: true,
    },
    DatasetSpec {
        name: "Facebook",
        n: 50515,
        m: 819090,
        communities: 8010,
        mean_degree: 32.43,
        cpl: 14.41,
        gini: 0.7164,
        pwe: 1.5033,
        mixing: 0.15,
        spatial: false,
    },
    DatasetSpec {
        name: "Google",
        n: 875713,
        m: 4322051,
        communities: 9863,
        mean_degree: 9.871,
        cpl: 6.3780,
        gini: 0.6729,
        pwe: 1.8251,
        mixing: 0.15,
        spatial: false,
    },
];

/// A synthesized dataset instance.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which paper dataset this stands in for.
    pub spec: DatasetSpec,
    /// The graph, at `1/scale` of the paper's size.
    pub graph: Graph,
    /// Ground-truth community label per node (from the synthesizer).
    pub labels: Vec<usize>,
    /// The divisor applied to the paper's node/edge/community counts.
    pub scale: usize,
}

/// Looks up a spec by (case-insensitive) name.
pub fn spec_by_name(name: &str) -> Option<&'static DatasetSpec> {
    PAPER_DATASETS
        .iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// Synthesizes a dataset at `1/scale` of the paper's size (`scale = 1` is
/// full size). Deterministic for a given `(spec, scale, seed)`.
pub fn synthesize(spec: &DatasetSpec, scale: usize, seed: u64) -> Dataset {
    let scale = scale.max(1);
    let n = (spec.n / scale).max(40);
    let m = (spec.m / scale).max(n);
    let communities = (spec.communities / scale).clamp(2, n / 4);
    let (graph, labels) = if spec.spatial {
        let k_nn = (spec.mean_degree / 1.6).round() as usize;
        let pc = pointcloud::generate(&PointCloudConfig {
            n,
            objects: communities,
            k_nn: k_nn.max(2),
            sigma: 0.015,
            seed,
        });
        (pc.graph, pc.labels)
    } else {
        let pg = planted::generate(&PlantedConfig {
            n,
            m,
            communities,
            mixing: spec.mixing,
            // Real community structure is hierarchical (paper §I/III-A);
            // every ~3 fine communities share a macro community.
            hierarchy_factor: 3,
            pwe: spec.pwe,
            size_skew: 0.8,
            seed,
        });
        (pg.graph, pg.labels)
    };
    Dataset {
        spec: *spec,
        graph,
        labels,
        scale,
    }
}

/// Synthesizes all six datasets at the given scale.
pub fn synthesize_all(scale: usize, seed: u64) -> Vec<Dataset> {
    PAPER_DATASETS
        .iter()
        .map(|s| synthesize(s, scale, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan_community::{louvain, metrics};
    use cpgan_graph::stats;

    #[test]
    fn all_specs_synthesize_scaled() {
        for spec in &PAPER_DATASETS {
            let ds = synthesize(spec, 64, 1);
            assert!(ds.graph.n() >= 40, "{}: n {}", spec.name, ds.graph.n());
            assert_eq!(ds.labels.len(), ds.graph.n());
            assert!(ds.graph.m() > 0);
        }
    }

    #[test]
    fn citeseer_standin_matches_key_stats() {
        let spec = spec_by_name("citeseer").unwrap();
        let ds = synthesize(spec, 4, 7);
        let mean = ds.graph.mean_degree();
        // Mean degree within 30% of the paper's value.
        assert!(
            (mean - spec.mean_degree).abs() < 0.3 * spec.mean_degree,
            "mean degree {mean} vs {}",
            spec.mean_degree
        );
    }

    #[test]
    fn standins_have_detectable_communities() {
        for name in ["Citeseer", "PPI"] {
            let spec = spec_by_name(name).unwrap();
            let ds = synthesize(spec, 8, 3);
            let det = louvain::louvain(&ds.graph, 0);
            let nmi = metrics::nmi(det.labels(), &ds.labels);
            assert!(nmi > 0.4, "{name}: nmi {nmi}");
        }
    }

    #[test]
    fn pubmed_more_unequal_than_citeseer() {
        // Paper: PubMed Gini 0.88 >> Citeseer 0.68. The stand-ins must
        // preserve the ordering.
        let cs = synthesize(spec_by_name("Citeseer").unwrap(), 8, 5);
        let pm = synthesize(spec_by_name("PubMed").unwrap(), 8, 5);
        let g_cs = stats::gini::gini_coefficient(&cs.graph.degrees());
        let g_pm = stats::gini::gini_coefficient(&pm.graph.degrees());
        assert!(g_pm > g_cs, "gini ordering violated: {g_pm} vs {g_cs}");
    }

    #[test]
    fn point_cloud_high_cpl_signature() {
        let pc = synthesize(spec_by_name("3D Point Cloud").unwrap(), 8, 2);
        let cs = synthesize(spec_by_name("Citeseer").unwrap(), 8, 2);
        let cpl_pc = stats::path::characteristic_path_length(&pc.graph, 50);
        let cpl_cs = stats::path::characteristic_path_length(&cs.graph, 50);
        assert!(cpl_pc > cpl_cs, "spatial CPL {cpl_pc} <= citation {cpl_cs}");
    }

    #[test]
    fn deterministic() {
        let spec = spec_by_name("PPI").unwrap();
        let a = synthesize(spec, 8, 9);
        let b = synthesize(spec, 8, 9);
        assert_eq!(a.graph, b.graph);
    }
}
