//! Scale-sweep graphs for the efficiency experiments (Tables VII–IX).
//!
//! The paper measures per-model generation time, training time and peak
//! memory on graphs of 0.1k, 1k, 10k and 100k nodes. These are planted
//! graphs with fixed per-node density and a community count that grows with
//! `sqrt(n)`, so every size has comparable structure.

use crate::planted::{self, PlantedConfig, PlantedGraph};

/// The node counts used by Tables VII, VIII and IX.
pub const SWEEP_SIZES: [usize; 4] = [100, 1_000, 10_000, 100_000];

/// Generates the sweep graph of `n` nodes (mean degree 8, `sqrt(n)`
/// communities).
pub fn sweep_graph(n: usize, seed: u64) -> PlantedGraph {
    planted::generate(&PlantedConfig {
        n,
        m: 4 * n,
        communities: ((n as f64).sqrt() as usize).max(2),
        mixing: 0.15,
        hierarchy_factor: 1,
        pwe: 2.2,
        size_skew: 0.5,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_sizes_generate() {
        for &n in &SWEEP_SIZES[..2] {
            let pg = sweep_graph(n, 1);
            assert_eq!(pg.graph.n(), n);
            let ratio = pg.graph.m() as f64 / (4 * n) as f64;
            assert!((0.8..=1.05).contains(&ratio), "n {n}: m ratio {ratio}");
        }
    }

    #[test]
    fn ten_k_generates_quickly() {
        let pg = sweep_graph(10_000, 2);
        assert_eq!(pg.graph.n(), 10_000);
        assert!(pg.graph.m() > 30_000);
    }
}
