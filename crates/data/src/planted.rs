//! Degree-corrected planted-partition graphs (LFR-style benchmark).
//!
//! Generates graphs with (i) a planted community partition with
//! heterogeneous community sizes, (ii) a power-law degree sequence with a
//! target exponent, and (iii) a mixing fraction `mu` of inter-community
//! edges — the three knobs needed to match the paper's dataset statistics.

use cpgan_graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the planted-partition synthesizer.
#[derive(Debug, Clone)]
pub struct PlantedConfig {
    /// Number of nodes.
    pub n: usize,
    /// Target number of edges.
    pub m: usize,
    /// Number of planted communities.
    pub communities: usize,
    /// Fraction of edges crossing communities (0 = perfectly separated).
    pub mixing: f64,
    /// Fine communities per macro community (1 = flat structure). Real
    /// networks have hierarchical communities (the paper's premise); a
    /// factor of 3 groups every 3 fine communities under one macro
    /// community that receives part of the mixing mass.
    pub hierarchy_factor: usize,
    /// Target power-law exponent of the degree sequence.
    pub pwe: f64,
    /// Skew of community sizes (0 = equal sizes; larger = heavier head).
    pub size_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            n: 1000,
            m: 4000,
            communities: 20,
            mixing: 0.15,
            hierarchy_factor: 1,
            pwe: 2.2,
            size_skew: 0.8,
            seed: 1,
        }
    }
}

/// A generated planted-partition graph with its ground-truth labels.
#[derive(Debug, Clone)]
pub struct PlantedGraph {
    /// The graph.
    pub graph: Graph,
    /// Planted community label per node.
    pub labels: Vec<usize>,
}

/// Community sizes proportional to `(i + 1)^(-skew)`, each at least 2,
/// summing to `n`.
fn community_sizes(n: usize, k: usize, skew: f64) -> Vec<usize> {
    let k = k.clamp(1, n / 2);
    let raw: Vec<f64> = (0..k).map(|i| ((i + 1) as f64).powf(-skew)).collect();
    let total: f64 = raw.iter().sum();
    let mut sizes: Vec<usize> = raw
        .iter()
        .map(|r| ((r / total) * n as f64).floor().max(2.0) as usize)
        .collect();
    // Fix the rounding remainder on the largest community.
    let assigned: usize = sizes.iter().sum();
    if assigned < n {
        sizes[0] += n - assigned;
    } else {
        let mut excess = assigned - n;
        for s in sizes.iter_mut() {
            let take = excess.min(s.saturating_sub(2));
            *s -= take;
            excess -= take;
            if excess == 0 {
                break;
            }
        }
    }
    sizes
}

/// Discrete power-law degree sequence with exponent `pwe`, scaled to sum to
/// (approximately) `2m`.
fn degree_sequence(n: usize, m: usize, pwe: f64, rng: &mut StdRng) -> Vec<f64> {
    let alpha = pwe.max(1.2);
    let mut degs: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>().clamp(1e-9, 1.0 - 1e-9);
            // Inverse-CDF sampling from a continuous power law on [1, n).
            let d = (1.0 - u).powf(-1.0 / (alpha - 1.0));
            d.min(n as f64 / 4.0)
        })
        .collect();
    let total: f64 = degs.iter().sum();
    let target = 2.0 * m as f64;
    let factor = target / total.max(1e-9);
    for d in degs.iter_mut() {
        *d = (*d * factor).max(0.5);
    }
    degs
}

/// Degree-proportional sampler over an index set.
struct WeightedNodes {
    nodes: Vec<NodeId>,
    prefix: Vec<f64>,
    total: f64,
}

impl WeightedNodes {
    fn new(nodes: Vec<NodeId>, weights: &[f64]) -> Self {
        let mut prefix = Vec::with_capacity(nodes.len());
        let mut total = 0.0;
        for &v in &nodes {
            total += weights[v as usize];
            prefix.push(total);
        }
        WeightedNodes {
            nodes,
            prefix,
            total,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> Option<NodeId> {
        if self.nodes.is_empty() || self.total <= 0.0 {
            return None;
        }
        let x = rng.gen::<f64>() * self.total;
        let i = self.prefix.partition_point(|&p| p <= x);
        Some(self.nodes[i.min(self.nodes.len() - 1)])
    }
}

/// Generates a planted-partition graph from `cfg`.
pub fn generate(cfg: &PlantedConfig) -> PlantedGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n;
    let sizes = community_sizes(n, cfg.communities, cfg.size_skew);
    let mut labels = Vec::with_capacity(n);
    for (c, &s) in sizes.iter().enumerate() {
        labels.extend(std::iter::repeat_n(c, s));
    }
    labels.truncate(n);

    let degrees = degree_sequence(n, cfg.m, cfg.pwe, &mut rng);

    // Per-community weighted samplers plus a global one for mixing edges.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); sizes.len()];
    for (v, &l) in labels.iter().enumerate() {
        members[l].push(v as NodeId);
    }
    let samplers: Vec<WeightedNodes> = members
        .iter()
        .map(|ms| WeightedNodes::new(ms.clone(), &degrees))
        .collect();
    let global = WeightedNodes::new((0..n as NodeId).collect(), &degrees);

    let intra_budget = ((1.0 - cfg.mixing) * cfg.m as f64) as usize;
    let inter_budget = cfg.m - intra_budget.min(cfg.m);

    let mut b = GraphBuilder::with_capacity(n, cfg.m);
    let mut seen = std::collections::HashSet::with_capacity(cfg.m * 2);
    let push = |u: NodeId,
                v: NodeId,
                b: &mut GraphBuilder,
                seen: &mut std::collections::HashSet<(NodeId, NodeId)>|
     -> bool {
        if u == v {
            return false;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.push_edge(key.0, key.1);
            true
        } else {
            false
        }
    };

    // Intra-community edges: distribute the budget proportionally to each
    // community's degree mass.
    let comm_mass: Vec<f64> = members
        .iter()
        .map(|ms| ms.iter().map(|&v| degrees[v as usize]).sum::<f64>())
        .collect();
    let total_mass: f64 = comm_mass.iter().sum();
    for (c, sampler) in samplers.iter().enumerate() {
        if members[c].len() < 2 {
            continue;
        }
        let share = ((comm_mass[c] / total_mass.max(1e-9)) * intra_budget as f64).round() as usize;
        let max_possible = members[c].len() * (members[c].len() - 1) / 2;
        let share = share.min(max_possible);
        let mut placed = 0usize;
        let mut guard = 0usize;
        while placed < share && guard < 30 * share + 50 {
            guard += 1;
            let (Some(u), Some(v)) = (sampler.sample(&mut rng), sampler.sample(&mut rng)) else {
                break;
            };
            if push(u, v, &mut b, &mut seen) {
                placed += 1;
            }
        }
    }

    // Inter-community edges. With a hierarchy, most of the mixing mass
    // stays *inside* the macro community (sibling fine communities), so the
    // graph has two nested community levels like the paper's datasets.
    let hf = cfg.hierarchy_factor.max(1);
    let macro_of = |c: usize| c / hf;
    let macro_budget = if hf > 1 {
        (0.7 * inter_budget as f64) as usize
    } else {
        0
    };
    let mut placed = 0usize;
    let mut guard = 0usize;
    while placed < macro_budget && guard < 40 * macro_budget + 50 {
        guard += 1;
        let (Some(u), Some(v)) = (global.sample(&mut rng), global.sample(&mut rng)) else {
            break;
        };
        let (cu, cv) = (labels[u as usize], labels[v as usize]);
        if cu == cv || macro_of(cu) != macro_of(cv) {
            continue;
        }
        if push(u, v, &mut b, &mut seen) {
            placed += 1;
        }
    }
    let global_budget = inter_budget - placed.min(inter_budget);
    let mut placed = 0usize;
    let mut guard = 0usize;
    while placed < global_budget && guard < 30 * global_budget + 50 {
        guard += 1;
        let (Some(u), Some(v)) = (global.sample(&mut rng), global.sample(&mut rng)) else {
            break;
        };
        if labels[u as usize] == labels[v as usize] {
            continue;
        }
        if push(u, v, &mut b, &mut seen) {
            placed += 1;
        }
    }

    PlantedGraph {
        graph: b.build(),
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan_community::{louvain, metrics, modularity};
    use cpgan_graph::stats;

    #[test]
    fn sizes_sum_to_n() {
        for (n, k) in [(100, 5), (1000, 37), (50, 25)] {
            let sizes = community_sizes(n, k, 0.8);
            assert_eq!(sizes.iter().sum::<usize>(), n);
            assert!(sizes.iter().all(|&s| s >= 2));
        }
    }

    #[test]
    fn counts_close_to_target() {
        let cfg = PlantedConfig {
            n: 600,
            m: 2400,
            communities: 12,
            ..Default::default()
        };
        let pg = generate(&cfg);
        assert_eq!(pg.graph.n(), 600);
        let ratio = pg.graph.m() as f64 / 2400.0;
        assert!((0.9..=1.05).contains(&ratio), "m ratio {ratio}");
    }

    #[test]
    fn communities_detectable() {
        let cfg = PlantedConfig {
            n: 400,
            m: 2000,
            communities: 8,
            mixing: 0.1,
            ..Default::default()
        };
        let pg = generate(&cfg);
        let det = louvain::louvain(&pg.graph, 0);
        let nmi = metrics::nmi(det.labels(), &pg.labels);
        assert!(nmi > 0.6, "planted communities not detectable: nmi {nmi}");
        let q = modularity::modularity(&pg.graph, &pg.labels);
        assert!(q > 0.3, "modularity {q}");
    }

    #[test]
    fn higher_mixing_lower_modularity() {
        let make = |mixing: f64| {
            let pg = generate(&PlantedConfig {
                n: 400,
                m: 1600,
                communities: 8,
                mixing,
                ..Default::default()
            });
            modularity::modularity(&pg.graph, &pg.labels)
        };
        assert!(make(0.05) > make(0.5));
    }

    #[test]
    fn tail_weight_tracks_target_exponent() {
        // A smaller target exponent means a heavier tail. Because the mean
        // degree is pinned to 2m/n, the d_min=1 MLE saturates under
        // rescaling; the degree *inequality* (Gini) is the robust signature
        // and must decrease monotonically as the target exponent grows.
        let gini = |pwe: f64| {
            let pg = generate(&PlantedConfig {
                n: 2000,
                m: 6000,
                communities: 30,
                pwe,
                ..Default::default()
            });
            stats::gini::gini_coefficient(&pg.graph.degrees())
        };
        let (heavy, mid, light) = (gini(1.5), gini(2.2), gini(3.0));
        assert!(
            heavy > mid && mid > light,
            "tail ordering violated: {heavy} > {mid} > {light}"
        );
    }
}
