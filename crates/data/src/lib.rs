#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Synthetic stand-ins for the paper's six benchmark datasets.
//!
//! The originals (Citeseer, PubMed, PPI, 3D Point Cloud, Facebook, Google)
//! are downloads from linqs/SNAP/etc. that are unavailable offline, so each
//! is synthesized from its *published statistics* (paper Table II): node and
//! edge counts, community count, mean degree, Gini coefficient and power-law
//! exponent of the degree distribution. The synthesizer is a
//! degree-corrected planted-partition model ([`planted`]); the 3D Point
//! Cloud dataset, which the paper defines constructively (k-NN graph over
//! points in R^3), is rebuilt exactly by that construction ([`pointcloud`]).
//!
//! All evaluation metrics in the paper are functions of exactly the
//! properties these synthesizers control, so who-beats-whom comparisons are
//! preserved (see DESIGN.md §3).

pub mod datasets;
pub mod planted;
pub mod pointcloud;
pub mod sweep;

pub use datasets::{Dataset, DatasetSpec, PAPER_DATASETS};
