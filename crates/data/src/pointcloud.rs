//! The 3D Point Cloud dataset, rebuilt by its own construction.
//!
//! The paper's dataset is "points of household objects ... edges are
//! generated for k-nearest neighbors w.r.t. Euclidean distance in 3D space".
//! We synthesize clustered object-like point clouds (one Gaussian blob per
//! object) and connect k-nearest neighbors, which reproduces the dataset's
//! defining properties: very high CPL (Table II: 32.4 — spatial graphs have
//! long shortest paths), moderate clustering, and one community per object.

use cpgan_graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Parameters of the point-cloud synthesizer.
#[derive(Debug, Clone)]
pub struct PointCloudConfig {
    /// Number of points.
    pub n: usize,
    /// Number of object clusters.
    pub objects: usize,
    /// Neighbors per point in the k-NN graph.
    pub k_nn: usize,
    /// Cluster standard deviation (object size) relative to the unit
    /// placement cube.
    pub sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PointCloudConfig {
    fn default() -> Self {
        PointCloudConfig {
            n: 1000,
            objects: 30,
            k_nn: 3,
            sigma: 0.02,
            seed: 3,
        }
    }
}

/// A generated point cloud graph.
#[derive(Debug, Clone)]
pub struct PointCloudGraph {
    /// The k-NN graph.
    pub graph: Graph,
    /// Object (cluster) label per point.
    pub labels: Vec<usize>,
    /// The 3D coordinates, row-major `[x, y, z]` per point.
    pub points: Vec<[f64; 3]>,
}

/// Generates the point cloud and its k-NN graph.
pub fn generate(cfg: &PointCloudConfig) -> PointCloudGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let objects = cfg.objects.clamp(1, cfg.n.max(1));
    // Object centers along a random-walk "scene path": consecutive objects
    // sit next to each other (like a scanned household scene), which makes
    // the k-NN graph connected with the dataset's signature long shortest
    // paths (Table II: CPL 32.4).
    let step = 5.0 * cfg.sigma;
    let mut centers: Vec<[f64; 3]> = Vec::with_capacity(objects);
    let mut cur = [0.5f64, 0.5, 0.5];
    for _ in 0..objects {
        centers.push(cur);
        let dir = [
            rng.gen::<f64>() - 0.5,
            rng.gen::<f64>() - 0.5,
            rng.gen::<f64>() - 0.5,
        ];
        let norm = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2])
            .sqrt()
            .max(1e-9);
        for (c, d) in cur.iter_mut().zip(dir) {
            *c += step * d / norm;
        }
    }
    // Fall back to noise-free placement if sigma is degenerate (NaN,
    // negative or infinite) rather than panicking on a bad config.
    let sigma = if cfg.sigma.is_finite() && cfg.sigma > 0.0 {
        cfg.sigma
    } else {
        0.0
    };
    let noise = Normal::new(0.0, sigma).ok();
    let draw = |rng: &mut StdRng| noise.as_ref().map_or(0.0, |d| d.sample(rng));
    let mut points = Vec::with_capacity(cfg.n);
    let mut labels = Vec::with_capacity(cfg.n);
    for i in 0..cfg.n {
        let c = i % objects;
        let ctr = centers[c];
        points.push([
            ctr[0] + draw(&mut rng),
            ctr[1] + draw(&mut rng),
            ctr[2] + draw(&mut rng),
        ]);
        labels.push(c);
    }

    // Brute-force k-NN (datasets are synthesized once; O(n^2) is acceptable
    // at benchmark scales and exact).
    let k = cfg.k_nn.min(cfg.n.saturating_sub(1));
    let mut b = GraphBuilder::with_capacity(cfg.n, cfg.n * k);
    let dist2 = |a: &[f64; 3], b: &[f64; 3]| -> f64 {
        (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)
    };
    let mut candidates: Vec<(f64, NodeId)> = Vec::with_capacity(cfg.n);
    for i in 0..cfg.n {
        candidates.clear();
        for j in 0..cfg.n {
            if i != j {
                candidates.push((dist2(&points[i], &points[j]), j as NodeId));
            }
        }
        if candidates.len() > k {
            candidates.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
            candidates.truncate(k);
        }
        for &(_, j) in candidates.iter() {
            b.push_edge(i as NodeId, j);
        }
    }

    // Bridge consecutive objects with their closest cross pair so the scene
    // graph is connected even when blobs barely overlap.
    for c in 1..objects {
        let mut best: (f64, NodeId, NodeId) = (f64::INFINITY, 0, 0);
        for i in 0..cfg.n {
            if labels[i] != c - 1 {
                continue;
            }
            for j in 0..cfg.n {
                if labels[j] != c {
                    continue;
                }
                let d = dist2(&points[i], &points[j]);
                if d < best.0 {
                    best = (d, i as NodeId, j as NodeId);
                }
            }
        }
        if best.0.is_finite() {
            b.push_edge(best.1, best.2);
        }
    }

    PointCloudGraph {
        graph: b.build(),
        labels,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpgan_community::{louvain, metrics};
    use cpgan_graph::stats;

    #[test]
    fn shapes_and_degree_bounds() {
        let cfg = PointCloudConfig {
            n: 300,
            objects: 10,
            k_nn: 3,
            ..Default::default()
        };
        let pc = generate(&cfg);
        assert_eq!(pc.graph.n(), 300);
        assert_eq!(pc.points.len(), 300);
        // Every node has at least k edges proposed; dedup keeps >= k/?;
        // minimum degree is at least 1 and mean degree in [k/2 .. 2k].
        let mean = pc.graph.mean_degree();
        assert!((1.5..=6.0).contains(&mean), "mean degree {mean}");
        assert!(pc.graph.degrees().iter().all(|&d| d >= 1));
    }

    #[test]
    fn clusters_are_communities() {
        let cfg = PointCloudConfig {
            n: 400,
            objects: 8,
            k_nn: 4,
            sigma: 0.01,
            ..Default::default()
        };
        let pc = generate(&cfg);
        let det = louvain::louvain(&pc.graph, 0);
        let nmi = metrics::nmi(det.labels(), &pc.labels);
        assert!(nmi > 0.7, "point-cloud communities weak: nmi {nmi}");
    }

    #[test]
    fn spatial_graph_has_high_cpl() {
        // Compared to a random graph of the same size, the spatial k-NN
        // graph must have a much longer characteristic path length (the
        // dataset's signature, Table II).
        let pc = generate(&PointCloudConfig {
            n: 300,
            objects: 15,
            k_nn: 3,
            ..Default::default()
        });
        let cpl = stats::path::characteristic_path_length(&pc.graph, 60);
        assert!(cpl > 3.0, "cpl {cpl}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PointCloudConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.graph, b.graph);
    }
}
