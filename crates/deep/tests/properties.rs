//! Property-based tests for the learning-based baselines: every model must
//! produce well-formed graphs on arbitrary community-structured inputs.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach; panicking is the right
// failure mode in test code.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_deep::common::{assemble_from_probs, two_block_fixture, DeepConfig};
use cpgan_deep::{condgen::CondGenR, graphrnn::GraphRnnS, sbmgnn::SbmGnn, vgae::Vgae};
use cpgan_generators::GraphGenerator;
use cpgan_nn::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_cfg(epochs: usize) -> DeepConfig {
    DeepConfig {
        hidden_dim: 8,
        latent_dim: 4,
        epochs,
        ..DeepConfig::tiny()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn assemble_from_probs_well_formed(
        seed in 0u64..500,
        n in 4usize..20,
        frac in 0.05f32..0.9,
    ) {
        let probs = Matrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { frac });
        let target = (n * (n - 1) / 4).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = assemble_from_probs(&probs, target, &mut rng);
        prop_assert_eq!(g.n(), n);
        prop_assert_eq!(g.m(), target.min(n * (n - 1) / 2));
        for &(u, v) in g.edges() {
            prop_assert!(u < v);
        }
    }

    #[test]
    fn vgae_generation_node_count_stable(size in 6usize..12, seed in 0u64..50) {
        let (g, _) = two_block_fixture(size);
        let model = Vgae::fit(&g, &tiny_cfg(15));
        let mut rng = StdRng::seed_from_u64(seed);
        let out = model.generate(&mut rng);
        prop_assert_eq!(out.n(), g.n());
        prop_assert_eq!(out.m(), g.m());
    }

    #[test]
    fn graphrnn_output_within_node_range(size in 6usize..12, seed in 0u64..50) {
        let (g, _) = two_block_fixture(size);
        let model = GraphRnnS::fit(&g, &tiny_cfg(10));
        let mut rng = StdRng::seed_from_u64(seed);
        let out = model.generate(&mut rng);
        prop_assert_eq!(out.n(), g.n());
        for &(u, v) in out.edges() {
            prop_assert!((v as usize) < g.n());
            prop_assert!(u != v);
        }
    }

    #[test]
    fn sbmgnn_probabilities_are_probabilities(size in 6usize..12) {
        let (g, _) = two_block_fixture(size);
        let model = SbmGnn::fit(&g, &tiny_cfg(15), 3);
        let p = model.probabilities();
        prop_assert_eq!(p.shape(), (g.n(), g.n()));
        prop_assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn condgen_decode_symmetric(size in 6usize..12, seed in 0u64..50) {
        let (g, _) = two_block_fixture(size);
        let model = CondGenR::fit(&g, &tiny_cfg(10));
        let mut rng = StdRng::seed_from_u64(seed);
        let p = model.decode_probabilities(&mut rng);
        for i in 0..g.n() {
            for j in 0..g.n() {
                prop_assert!((p.get(i, j) - p.get(j, i)).abs() < 1e-5);
            }
        }
    }
}
