//! Variational Graph Autoencoder (Kipf & Welling 2016), paper baseline
//! "VGAE".
//!
//! Two-layer GCN encoder producing per-node Gaussian posteriors, inner
//! product decoder, trained on the class-balanced adjacency BCE plus the KL
//! prior. Like the original, VGAE assumes a fixed node set and materializes
//! the full `n x n` probability matrix — the source of its OOM rows in the
//! paper's large-graph experiments.

use crate::common::{self, DeepConfig};
use cpgan_generators::GraphGenerator;
use cpgan_graph::sampling::SubgraphSampler;
use cpgan_graph::Graph;
use cpgan_nn::layers::GcnConv;
use cpgan_nn::optim::{Adam, Optimizer};
use cpgan_nn::{init, loss, BlockDiagCsr, Csr, FusedAct, Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Arc;

/// A trained VGAE.
pub struct Vgae {
    cfg: DeepConfig,
    store: ParamStore,
    conv1: GcnConv,
    conv_mu: GcnConv,
    conv_logvar: GcnConv,
    n: usize,
    m: usize,
    /// Posterior means of the training graph (used at generation time).
    trained_mu: Matrix,
    /// Posterior log-variances.
    trained_logvar: Matrix,
}

impl Vgae {
    /// Builds and trains on the observed graph.
    pub fn fit(g: &Graph, cfg: &DeepConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let conv1 = GcnConv::new(&mut store, &mut rng, cfg.feature_dim, cfg.hidden_dim);
        let conv_mu = GcnConv::new(&mut store, &mut rng, cfg.hidden_dim, cfg.latent_dim);
        let conv_logvar = GcnConv::new(&mut store, &mut rng, cfg.hidden_dim, cfg.latent_dim);

        let adj = Arc::new(Csr::normalized_adjacency(g));
        let feats = common::features(g, cfg.feature_dim, cfg.seed);
        let (target, weights) = common::adjacency_target(g);
        let mut opt = Adam::with_lr(cfg.learning_rate);

        let mut model = Vgae {
            cfg: cfg.clone(),
            store: store.clone(),
            conv1,
            conv_mu,
            conv_logvar,
            n: g.n(),
            m: g.m(),
            trained_mu: Matrix::zeros(g.n(), cfg.latent_dim),
            trained_logvar: Matrix::zeros(g.n(), cfg.latent_dim),
        };

        // Batched subgraph training (DESIGN §13): when `sample_size` is set
        // below the graph size, each step trains on `batch_size` sampled
        // subgraphs packed block-diagonally; otherwise every epoch sees the
        // full graph, the historical behavior.
        let ns = cfg.sample_size;
        if ns > 0 && ns < g.n() {
            let bsz = cfg.batch_size.max(1);
            let mut sampler = SubgraphSampler::new(cfg.seed.wrapping_add(0x5eed));
            let inv_b = 1.0 / bsz as f32;
            for _ in 0..cfg.epochs {
                let batch = common::sample_batch(g, &feats, &mut sampler, ns, bsz);
                let total_rows = batch.ops.total_rows();
                let tape = Tape::new();
                let x = tape.constant(batch.feats.clone());
                let (mu, logvar) = model.encode_batched(&tape, &batch.ops, &x);
                let eps =
                    tape.constant(init::standard_normal(&mut rng, total_rows, cfg.latent_dim));
                let z = mu.add(&logvar.scale(0.5).exp().mul(&eps));
                let mut recon: Option<Var> = None;
                for b in 0..batch.blocks() {
                    let zb = z.gather_rows(&batch.rows[b]);
                    let logits = zb.matmul(&zb.transpose());
                    let (t, w) = &batch.targets[b];
                    let r = logits.bce_with_logits_mean(t, Some(w));
                    recon = Some(match recon {
                        None => r,
                        Some(acc) => acc.add(&r),
                    });
                }
                let Some(recon) = recon else { continue };
                let kl = loss::gaussian_kl(&mu, &logvar);
                let total = recon.scale(inv_b).add(&kl.scale(0.05));
                store.zero_grad();
                total.backward();
                opt.step(&store);
            }
        } else {
            for _ in 0..cfg.epochs {
                let tape = Tape::new();
                let x = tape.constant(feats.clone());
                let (mu, logvar) = model.encode(&tape, &adj, &x);
                let eps = tape.constant(init::standard_normal(&mut rng, g.n(), cfg.latent_dim));
                let z = mu.add(&logvar.scale(0.5).exp().mul(&eps));
                let logits = z.matmul(&z.transpose());
                let recon = logits.bce_with_logits_mean(&target, Some(&weights));
                let kl = loss::gaussian_kl(&mu, &logvar);
                let total = recon.add(&kl.scale(0.05));
                store.zero_grad();
                total.backward();
                opt.step(&store);
            }
        }

        // Cache the final posterior for generation.
        let tape = Tape::new();
        let x = tape.constant(feats);
        let (mu, logvar) = model.encode(&tape, &adj, &x);
        model.trained_mu = mu.value();
        model.trained_logvar = logvar.value();
        model
    }

    fn encode(&self, tape: &Tape, adj: &Arc<Csr>, x: &Var) -> (Var, Var) {
        let h = self
            .conv1
            .forward_sparse_fused(tape, adj, x, FusedAct::Relu);
        let mu = self.conv_mu.forward_sparse(tape, adj, &h);
        let logvar = self.conv_logvar.forward_sparse(tape, adj, &h);
        (mu, logvar)
    }

    /// Encoder over a whole block-diagonal batch of subgraphs: one fused
    /// kernel call per layer covers every block.
    fn encode_batched(&self, tape: &Tape, batch: &BlockDiagCsr, x: &Var) -> (Var, Var) {
        let h = self.conv1.forward_batched(tape, batch, x, FusedAct::Relu);
        let mu = self
            .conv_mu
            .forward_batched(tape, batch, &h, FusedAct::Identity);
        let logvar = self
            .conv_logvar
            .forward_batched(tape, batch, &h, FusedAct::Identity);
        (mu, logvar)
    }

    /// Link probabilities decoded from the cached posterior with fresh
    /// posterior noise.
    pub fn decode_probabilities(&self, rng: &mut dyn RngCore) -> Matrix {
        let tape = Tape::new();
        let mut noise_rng = StdRng::seed_from_u64(rng.next_u64());
        let eps = init::standard_normal(&mut noise_rng, self.n, self.cfg.latent_dim);
        let mut z = self.trained_mu.clone();
        for i in 0..z.len() {
            let sigma = (0.5 * self.trained_logvar.as_slice()[i]).exp();
            z.as_mut_slice()[i] += sigma * eps.as_slice()[i];
        }
        let zv = tape.constant(z);
        zv.matmul(&zv.transpose()).sigmoid().value()
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.store.param_count()
    }
}

impl GraphGenerator for Vgae {
    fn name(&self) -> &'static str {
        "VGAE"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        let probs = self.decode_probabilities(rng);
        common::assemble_from_probs(&probs, self.m, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::two_block_fixture as two_blocks;
    use cpgan_community::{louvain, metrics};

    #[test]
    fn fit_and_generate_counts() {
        let (g, _) = two_blocks(12);
        let model = Vgae::fit(&g, &DeepConfig::tiny());
        let mut rng = StdRng::seed_from_u64(0);
        let out = model.generate(&mut rng);
        assert_eq!(out.n(), g.n());
        assert_eq!(out.m(), g.m());
        assert!(model.param_count() > 0);
    }

    #[test]
    fn edges_more_likely_than_non_edges() {
        let (g, _) = two_blocks(12);
        let model = Vgae::fit(&g, &DeepConfig::tiny());
        let mut rng = StdRng::seed_from_u64(1);
        let probs = model.decode_probabilities(&mut rng);
        let mut p_edge = 0.0f64;
        for &(u, v) in g.edges() {
            p_edge += probs.get(u as usize, v as usize) as f64;
        }
        p_edge /= g.m() as f64;
        let mut p_non = 0.0f64;
        let mut count = 0;
        for u in 0..g.n() as u32 {
            for v in (u + 1)..g.n() as u32 {
                if !g.has_edge(u, v) {
                    p_non += probs.get(u as usize, v as usize) as f64;
                    count += 1;
                }
            }
        }
        p_non /= count as f64;
        assert!(p_edge > p_non, "edge prob {p_edge} <= non-edge {p_non}");
    }

    #[test]
    fn batched_subgraph_training_fits_and_generates() {
        let (g, _) = two_blocks(12);
        let cfg = DeepConfig {
            sample_size: 16,
            batch_size: 3,
            epochs: 60,
            ..DeepConfig::tiny()
        };
        let model = Vgae::fit(&g, &cfg);
        let mut rng = StdRng::seed_from_u64(5);
        let out = model.generate(&mut rng);
        assert_eq!(out.n(), g.n());
        assert_eq!(out.m(), g.m());
        // The batched trajectory must be deterministic for a fixed config.
        let model2 = Vgae::fit(&g, &cfg);
        for (a, b) in model
            .trained_mu
            .as_slice()
            .iter()
            .zip(model2.trained_mu.as_slice())
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "batched training must be bit-deterministic"
            );
        }
    }

    #[test]
    fn preserves_planted_communities_reasonably() {
        let (g, labels) = two_blocks(14);
        let model = Vgae::fit(&g, &DeepConfig::tiny());
        let mut rng = StdRng::seed_from_u64(2);
        let out = model.generate(&mut rng);
        let det = louvain::louvain(&out, 0);
        let nmi = metrics::nmi(det.labels(), &labels);
        assert!(nmi > 0.2, "nmi {nmi}");
    }
}
