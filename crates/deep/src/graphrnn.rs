//! GraphRNN-S (You et al. 2018), paper baseline "GraphRNN-S".
//!
//! The *simplified* GraphRNN variant the paper selects: a single graph-level
//! GRU consumes, per step, the new node's connection vector to the previous
//! `M` nodes (in BFS order) and an MLP head emits the next node's connection
//! logits at once (instead of a second edge-level RNN). Training and
//! inference are `O(n * M)` per pass but inherently sequential and
//! order-dependent — the permutation-variance the paper criticizes.

use crate::common::DeepConfig;
use cpgan_generators::GraphGenerator;
use cpgan_graph::{stats::path, Graph, GraphBuilder, NodeId};
use cpgan_nn::layers::{Activation, GruCell, Mlp};
use cpgan_nn::optim::{Adam, Optimizer};
use cpgan_nn::{Matrix, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::Arc;

/// A trained GraphRNN-S.
pub struct GraphRnnS {
    gru: GruCell,
    head: Mlp,
    n: usize,
    /// Lookback window `M`.
    window: usize,
    hidden: usize,
}

/// BFS ordering from `start` (unreached nodes appended afterwards).
fn bfs_order(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let dist = path::bfs_distances(g, start);
    let mut order: Vec<NodeId> = Vec::with_capacity(g.n());
    let mut seen = vec![false; g.n()];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    seen[start as usize] = true;
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in g.neighbors(v) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    for v in 0..g.n() as NodeId {
        if !seen[v as usize] {
            order.push(v);
        }
    }
    debug_assert_eq!(order.len(), g.n());
    let _ = dist;
    order
}

/// The connection vector of `order[i]` to the previous `window` nodes:
/// entry `j` is 1 if `order[i]` ~ `order[i-1-j]`.
fn connection_vector(g: &Graph, order: &[NodeId], i: usize, window: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; window];
    for (j, slot) in v.iter_mut().enumerate() {
        if j < i {
            let prev = order[i - 1 - j];
            if g.has_edge(order[i], prev) {
                *slot = 1.0;
            }
        }
    }
    v
}

impl GraphRnnS {
    /// Builds and trains on the observed graph. The window `M` is the
    /// maximum BFS lookback observed, capped at 64 (GraphRNN's own trick).
    pub fn fit(g: &Graph, cfg: &DeepConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Estimate M from a BFS ordering.
        let order0 = bfs_order(g, 0);
        let mut pos = vec![0usize; g.n()];
        for (i, &v) in order0.iter().enumerate() {
            pos[v as usize] = i;
        }
        let mut window = 1usize;
        for &(u, v) in g.edges() {
            window = window.max(pos[u as usize].abs_diff(pos[v as usize]));
        }
        let window = window.clamp(1, 64);

        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, &mut rng, window, cfg.hidden_dim);
        let head = Mlp::new(
            &mut store,
            &mut rng,
            &[cfg.hidden_dim, cfg.hidden_dim, window],
            Activation::Relu,
        );
        let mut opt = Adam::with_lr(cfg.learning_rate);

        let model = GraphRnnS {
            gru,
            head,
            n: g.n(),
            window,
            hidden: cfg.hidden_dim,
        };

        // Teacher-forced MLE over fresh BFS orderings.
        let passes = cfg.epochs / 4 + 1;
        for _ in 0..passes {
            let start = rng.gen_range(0..g.n()) as NodeId;
            let order = bfs_order(g, start);
            let tape = Tape::new();
            let mut h = tape.constant(Matrix::zeros(1, model.hidden));
            // Start token: all ones.
            let mut x = tape.constant(Matrix::full(1, window, 1.0));
            let mut losses = Vec::with_capacity(g.n() - 1);
            for i in 1..g.n() {
                h = model.gru.forward(&tape, &x, &h);
                let logits = model.head.forward(&tape, &h);
                let target_vec = connection_vector(g, &order, i, window);
                let target = Arc::new(Matrix::from_vec(1, window, target_vec.clone()));
                losses.push(logits.bce_with_logits_mean(&target, None));
                x = tape.constant(Matrix::from_vec(1, window, target_vec));
            }
            let mut total = losses[0].clone();
            for l in &losses[1..] {
                total = total.add(l);
            }
            let total = total.scale(1.0 / losses.len() as f32);
            store.zero_grad();
            total.backward();
            opt.step(&store);
        }
        model
    }

    /// Lookback window `M`.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl GraphGenerator for GraphRnnS {
    fn name(&self) -> &'static str {
        "GraphRNN-S"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        let tape = Tape::new();
        let mut b = GraphBuilder::new(self.n);
        let mut h = tape.constant(Matrix::zeros(1, self.hidden));
        let mut x = tape.constant(Matrix::full(1, self.window, 1.0));
        for i in 1..self.n {
            h = self.gru.forward(&tape, &x, &h);
            let probs = self.head.forward(&tape, &h).sigmoid().value();
            let mut sampled = vec![0.0f32; self.window];
            for (j, s) in sampled.iter_mut().enumerate() {
                if j < i && rng.gen::<f32>() < probs.get(0, j) {
                    *s = 1.0;
                    b.push_edge(i as NodeId, (i - 1 - j) as NodeId);
                }
            }
            x = tape.constant(Matrix::from_vec(1, self.window, sampled));
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::two_block_fixture as two_blocks;

    #[test]
    fn bfs_order_covers_all_nodes() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]).unwrap();
        let order = bfs_order(&g, 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
        // BFS locality: 1 and 2 come right after 0.
        assert_eq!(order[0], 0);
        assert!(order[1] == 1);
    }

    #[test]
    fn connection_vectors_match_graph() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let order = bfs_order(&g, 0);
        let v = connection_vector(&g, &order, 2, 3);
        // order = [0,1,2,3]; node 2 connects to 1 (j=0) and 0 (j=1).
        assert_eq!(v, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn fit_and_generate_reasonable_density() {
        let (g, _) = two_blocks(10);
        let model = GraphRnnS::fit(&g, &DeepConfig::tiny());
        assert!(model.window() >= 1);
        let mut rng = StdRng::seed_from_u64(0);
        let out = model.generate(&mut rng);
        assert_eq!(out.n(), g.n());
        // Density within a loose band of the original.
        let ratio = out.m() as f64 / g.m() as f64;
        assert!((0.2..5.0).contains(&ratio), "edge ratio {ratio}");
    }

    #[test]
    fn learns_to_avoid_dense_output_on_sparse_graph() {
        // A ring is very sparse; after training, generated density should be
        // far below the all-edges maximum.
        let edges: Vec<(u32, u32)> = (0..30u32).map(|i| (i, (i + 1) % 30)).collect();
        let g = Graph::from_edges(30, edges).unwrap();
        let model = GraphRnnS::fit(
            &g,
            &DeepConfig {
                epochs: 120,
                ..DeepConfig::tiny()
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let out = model.generate(&mut rng);
        assert!(out.m() < 120, "generated {} edges on a 30-ring", out.m());
    }
}
