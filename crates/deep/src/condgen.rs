//! CondGen-R (Yang et al. 2019), paper baseline "CondGen-R".
//!
//! The reduced variant of the conditional structure generation network the
//! paper compares against: a GCN variational encoder, an inner-product
//! decoder, and an adversarial discriminator applied to graph-level
//! embeddings of real vs generated adjacencies, with CycleGAN-style mapping
//! consistency. Structurally this is CPGAN without the ladder hierarchy and
//! without the community losses.

use crate::common::{self, DeepConfig};
use cpgan_generators::GraphGenerator;
use cpgan_graph::sampling::SubgraphSampler;
use cpgan_graph::Graph;
use cpgan_nn::layers::{Activation, GcnConv, Mlp};
use cpgan_nn::optim::{Adam, Optimizer};
use cpgan_nn::{init, loss, BlockDiagCsr, Csr, FusedAct, Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Arc;

/// A trained CondGen-R.
pub struct CondGenR {
    cfg: DeepConfig,
    conv1: GcnConv,
    conv_mu: GcnConv,
    conv_logvar: GcnConv,
    n: usize,
    m: usize,
    trained_mu: Matrix,
    trained_logvar: Matrix,
}

impl CondGenR {
    /// Builds and trains on the observed graph.
    pub fn fit(g: &Graph, cfg: &DeepConfig) -> Self {
        let n = g.n();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut g_store = ParamStore::new();
        let conv1 = GcnConv::new(&mut g_store, &mut rng, cfg.feature_dim, cfg.hidden_dim);
        let conv_mu = GcnConv::new(&mut g_store, &mut rng, cfg.hidden_dim, cfg.latent_dim);
        let conv_logvar = GcnConv::new(&mut g_store, &mut rng, cfg.hidden_dim, cfg.latent_dim);

        // Discriminator: its own GCN feature extractor + MLP over the mean
        // readout.
        let mut d_store = ParamStore::new();
        let d_conv = GcnConv::new(&mut d_store, &mut rng, cfg.feature_dim, cfg.hidden_dim);
        let d_head = Mlp::new(
            &mut d_store,
            &mut rng,
            &[cfg.hidden_dim, cfg.hidden_dim, 1],
            Activation::Relu,
        );

        let adj = Arc::new(Csr::normalized_adjacency(g));
        let feats = common::features(g, cfg.feature_dim, cfg.seed);
        let (target, weights) = common::adjacency_target(g);
        let mut opt_g = Adam::with_lr(cfg.learning_rate);
        let mut opt_d = Adam::with_lr(cfg.learning_rate);
        let one = Arc::new(Matrix::full(1, 1, 1.0));
        let zero = Arc::new(Matrix::zeros(1, 1));

        let mut model = CondGenR {
            cfg: cfg.clone(),
            conv1,
            conv_mu,
            conv_logvar,
            n,
            m: g.m(),
            trained_mu: Matrix::zeros(n, cfg.latent_dim),
            trained_logvar: Matrix::zeros(n, cfg.latent_dim),
        };

        let readout_real = |tape: &Tape, x: &Var| -> Var {
            d_conv
                .forward_sparse_fused(tape, &adj, x, FusedAct::Relu)
                .mean_rows()
        };
        let readout_dense = |tape: &Tape, a: &Var, x: &Var| -> Var {
            d_conv.forward_dense(tape, a, x).relu().mean_rows()
        };

        // Batched subgraph training (DESIGN §13): pack `batch_size` sampled
        // subgraphs block-diagonally so one fused kernel call per layer
        // covers the whole batch; the discriminator scores each block's
        // readout as one row of a `B x 1` logit column.
        let ns = cfg.sample_size;
        if ns > 0 && ns < n {
            let bsz = cfg.batch_size.max(1);
            let mut sampler = SubgraphSampler::new(cfg.seed.wrapping_add(0x5eed));
            let inv_b = 1.0 / bsz as f32;
            let one_b = Arc::new(Matrix::full(bsz, 1, 1.0));
            let zero_b = Arc::new(Matrix::zeros(bsz, 1));
            let scale = 1.0 / (cfg.latent_dim as f32).sqrt();
            for _ in 0..cfg.epochs {
                let batch = common::sample_batch(g, &feats, &mut sampler, ns, bsz);
                let total_rows = batch.ops.total_rows();
                // ---- Discriminator step ----
                {
                    let tape = Tape::new();
                    let x = tape.constant(batch.feats.clone());
                    let (mu, logvar) = model.encode_batched(&tape, &batch.ops, &x);
                    let eps =
                        tape.constant(init::standard_normal(&mut rng, total_rows, cfg.latent_dim));
                    let z = mu.add(&logvar.scale(0.5).exp().mul(&eps));
                    let h_real = d_conv.forward_batched(&tape, &batch.ops, &x, FusedAct::Relu);
                    let mut real_parts = Vec::with_capacity(bsz);
                    let mut fake_parts = Vec::with_capacity(bsz);
                    for rows_b in &batch.rows {
                        let xb = x.gather_rows(rows_b);
                        let zb = z.gather_rows(rows_b);
                        // Detached fake adjacency for this block.
                        let fake_probs = tape
                            .constant(zb.matmul(&zb.transpose()).scale(scale).sigmoid().value());
                        real_parts.push(h_real.gather_rows(rows_b).mean_rows());
                        fake_parts.push(readout_dense(&tape, &fake_probs, &xb));
                    }
                    let real_logit = d_head.forward(&tape, &Var::concat_rows(&real_parts));
                    let fake_logit = d_head.forward(&tape, &Var::concat_rows(&fake_parts));
                    let d_loss = real_logit
                        .bce_with_logits_mean(&one_b, None)
                        .add(&fake_logit.bce_with_logits_mean(&zero_b, None));
                    g_store.zero_grad();
                    d_store.zero_grad();
                    d_loss.backward();
                    opt_d.step(&d_store);
                }
                // ---- Generator step ----
                {
                    let tape = Tape::new();
                    let x = tape.constant(batch.feats.clone());
                    let (mu, logvar) = model.encode_batched(&tape, &batch.ops, &x);
                    let eps =
                        tape.constant(init::standard_normal(&mut rng, total_rows, cfg.latent_dim));
                    let z = mu.add(&logvar.scale(0.5).exp().mul(&eps));
                    let h_real = d_conv.forward_batched(&tape, &batch.ops, &x, FusedAct::Relu);
                    let mut real_parts = Vec::with_capacity(bsz);
                    let mut fake_parts = Vec::with_capacity(bsz);
                    let mut recon: Option<Var> = None;
                    for (b, rows_b) in batch.rows.iter().enumerate() {
                        let xb = x.gather_rows(rows_b);
                        let zb = z.gather_rows(rows_b);
                        let logits_b = zb.matmul(&zb.transpose()).scale(scale);
                        let fake_probs = logits_b.sigmoid();
                        let (t, w) = &batch.targets[b];
                        let r = logits_b.bce_with_logits_mean(t, Some(w));
                        recon = Some(match recon {
                            None => r,
                            Some(acc) => acc.add(&r),
                        });
                        real_parts.push(h_real.gather_rows(rows_b).mean_rows());
                        fake_parts.push(readout_dense(&tape, &fake_probs, &xb));
                    }
                    let Some(recon) = recon else { continue };
                    let real_ro = Var::concat_rows(&real_parts);
                    let fake_ro = Var::concat_rows(&fake_parts);
                    let fake_logit = d_head.forward(&tape, &fake_ro);
                    let kl = loss::gaussian_kl(&mu, &logvar);
                    let l_rec = real_ro.sub(&fake_ro).square().mean_all();
                    let g_loss = fake_logit
                        .bce_with_logits_mean(&one_b, None)
                        .scale(0.1)
                        .add(&recon.scale(inv_b).scale(2.0))
                        .add(&kl.scale(0.05))
                        .add(&l_rec);
                    g_store.zero_grad();
                    d_store.zero_grad();
                    g_loss.backward();
                    opt_g.step(&g_store);
                }
            }

            let tape = Tape::new();
            let x = tape.constant(feats);
            let (mu, logvar) = model.encode(&tape, &adj, &x);
            model.trained_mu = mu.value();
            model.trained_logvar = logvar.value();
            return model;
        }

        for _ in 0..cfg.epochs {
            // ---- Discriminator step ----
            {
                let tape = Tape::new();
                let x = tape.constant(feats.clone());
                let (mu, logvar) = model.encode(&tape, &adj, &x);
                let eps = tape.constant(init::standard_normal(&mut rng, n, cfg.latent_dim));
                let z = mu.add(&logvar.scale(0.5).exp().mul(&eps));
                let scale = 1.0 / (cfg.latent_dim as f32).sqrt();
                // Detached fake adjacency.
                let fake_probs =
                    tape.constant(z.matmul(&z.transpose()).scale(scale).sigmoid().value());
                let real_logit = d_head.forward(&tape, &readout_real(&tape, &x));
                let fake_logit = d_head.forward(&tape, &readout_dense(&tape, &fake_probs, &x));
                let d_loss = real_logit
                    .bce_with_logits_mean(&one, None)
                    .add(&fake_logit.bce_with_logits_mean(&zero, None));
                g_store.zero_grad();
                d_store.zero_grad();
                d_loss.backward();
                opt_d.step(&d_store);
            }
            // ---- Generator step ----
            {
                let tape = Tape::new();
                let x = tape.constant(feats.clone());
                let (mu, logvar) = model.encode(&tape, &adj, &x);
                let eps = tape.constant(init::standard_normal(&mut rng, n, cfg.latent_dim));
                let z = mu.add(&logvar.scale(0.5).exp().mul(&eps));
                let scale = 1.0 / (cfg.latent_dim as f32).sqrt();
                let logits = z.matmul(&z.transpose()).scale(scale);
                let fake_probs = logits.sigmoid();
                let fake_logit = d_head.forward(&tape, &readout_dense(&tape, &fake_probs, &x));
                let recon = logits.bce_with_logits_mean(&target, Some(&weights));
                let kl = loss::gaussian_kl(&mu, &logvar);
                // Mapping consistency over the discriminator's readout.
                let l_rec = readout_real(&tape, &x)
                    .sub(&readout_dense(&tape, &fake_probs, &x))
                    .square()
                    .mean_all();
                let g_loss = fake_logit
                    .bce_with_logits_mean(&one, None)
                    .scale(0.1)
                    .add(&recon.scale(2.0))
                    .add(&kl.scale(0.05))
                    .add(&l_rec);
                g_store.zero_grad();
                d_store.zero_grad();
                g_loss.backward();
                opt_g.step(&g_store);
            }
        }

        let tape = Tape::new();
        let x = tape.constant(feats);
        let (mu, logvar) = model.encode(&tape, &adj, &x);
        model.trained_mu = mu.value();
        model.trained_logvar = logvar.value();
        model
    }

    fn encode(&self, tape: &Tape, adj: &Arc<Csr>, x: &Var) -> (Var, Var) {
        let h = self
            .conv1
            .forward_sparse_fused(tape, adj, x, FusedAct::Relu);
        (
            self.conv_mu.forward_sparse(tape, adj, &h),
            self.conv_logvar.forward_sparse(tape, adj, &h),
        )
    }

    /// Encoder over a block-diagonal batch of subgraphs.
    fn encode_batched(&self, tape: &Tape, batch: &BlockDiagCsr, x: &Var) -> (Var, Var) {
        let h = self.conv1.forward_batched(tape, batch, x, FusedAct::Relu);
        (
            self.conv_mu
                .forward_batched(tape, batch, &h, FusedAct::Identity),
            self.conv_logvar
                .forward_batched(tape, batch, &h, FusedAct::Identity),
        )
    }

    /// Decoded link probabilities with fresh posterior noise.
    pub fn decode_probabilities(&self, rng: &mut dyn RngCore) -> Matrix {
        let tape = Tape::new();
        let mut noise_rng = StdRng::seed_from_u64(rng.next_u64());
        let eps = init::standard_normal(&mut noise_rng, self.n, self.cfg.latent_dim);
        let mut z = self.trained_mu.clone();
        for i in 0..z.len() {
            let sigma = (0.5 * self.trained_logvar.as_slice()[i]).exp();
            z.as_mut_slice()[i] += sigma * eps.as_slice()[i];
        }
        let scale = 1.0 / (self.cfg.latent_dim as f32).sqrt();
        let zv = tape.constant(z);
        zv.matmul(&zv.transpose()).scale(scale).sigmoid().value()
    }
}

impl GraphGenerator for CondGenR {
    fn name(&self) -> &'static str {
        "CondGen-R"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        let probs = self.decode_probabilities(rng);
        common::assemble_from_probs(&probs, self.m, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::two_block_fixture as two_blocks;

    #[test]
    fn fit_and_generate() {
        let (g, _) = two_blocks(10);
        let model = CondGenR::fit(&g, &DeepConfig::tiny());
        let mut rng = StdRng::seed_from_u64(0);
        let out = model.generate(&mut rng);
        assert_eq!(out.n(), g.n());
        assert_eq!(out.m(), g.m());
    }

    #[test]
    fn batched_subgraph_training_fits_and_generates() {
        let (g, _) = two_blocks(10);
        let cfg = DeepConfig {
            sample_size: 12,
            batch_size: 2,
            epochs: 40,
            ..DeepConfig::tiny()
        };
        let model = CondGenR::fit(&g, &cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let out = model.generate(&mut rng);
        assert_eq!(out.n(), g.n());
        assert_eq!(out.m(), g.m());
    }

    #[test]
    fn edges_scored_above_average() {
        let (g, _) = two_blocks(10);
        let model = CondGenR::fit(&g, &DeepConfig::tiny());
        let mut rng = StdRng::seed_from_u64(1);
        let probs = model.decode_probabilities(&mut rng);
        let mut p_edge = 0.0f64;
        for &(u, v) in g.edges() {
            p_edge += probs.get(u as usize, v as usize) as f64;
        }
        p_edge /= g.m() as f64;
        let p_all: f64 =
            probs.as_slice().iter().map(|&v| v as f64).sum::<f64>() / probs.len() as f64;
        assert!(p_edge > p_all, "edges {p_edge} vs overall {p_all}");
    }
}
