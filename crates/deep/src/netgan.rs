//! NetGAN (Bojchevski et al. 2018), paper baseline "NetGAN".
//!
//! Learns the distribution of random walks over the observed graph with a
//! GAN: a GRU generator emits walks node-by-node through a Gumbel-softmax
//! relaxation, a GRU discriminator classifies walks, and the output graph is
//! assembled from generated-walk edge counts (Figure 3's three-step
//! pipeline). Walk-space learning makes community preservation indirect —
//! the weakness the paper highlights.

use crate::common::DeepConfig;
use cpgan_generators::GraphGenerator;
use cpgan_graph::{Graph, GraphBuilder, NodeId};
use cpgan_nn::layers::{Activation, GruCell, Linear, Mlp};
use cpgan_nn::optim::{Adam, Optimizer};
use cpgan_nn::{init, Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::Arc;

/// Walk length (the NetGAN paper's default is 16; we use 8 for CPU scale).
const WALK_LEN: usize = 8;
/// Gumbel-softmax temperature.
const TAU: f32 = 1.0;

/// A trained NetGAN.
pub struct NetGan {
    n: usize,
    m: usize,
    hidden: usize,
    latent: usize,
    g_init: Linear,
    g_gru: GruCell,
    g_out: Linear,
    g_embed: Linear,
    seed: u64,
}

/// Samples a length-`WALK_LEN` random walk as node ids.
fn sample_walk(g: &Graph, rng: &mut StdRng) -> Option<Vec<NodeId>> {
    let n = g.n();
    if n == 0 {
        return None;
    }
    let mut v = rng.gen_range(0..n) as NodeId;
    let mut guard = 0;
    while g.degree(v) == 0 {
        v = rng.gen_range(0..n) as NodeId;
        guard += 1;
        if guard > 50 {
            return None;
        }
    }
    let mut walk = Vec::with_capacity(WALK_LEN);
    walk.push(v);
    for _ in 1..WALK_LEN {
        let nb = g.neighbors(v);
        v = nb[rng.gen_range(0..nb.len())];
        walk.push(v);
    }
    Some(walk)
}

impl NetGan {
    /// Builds and trains on the observed graph.
    pub fn fit(g: &Graph, cfg: &DeepConfig) -> Self {
        let n = g.n();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut g_store = ParamStore::new();
        let g_init = Linear::new(&mut g_store, &mut rng, cfg.latent_dim, cfg.hidden_dim, true);
        let g_gru = GruCell::new(&mut g_store, &mut rng, cfg.hidden_dim, cfg.hidden_dim);
        let g_out = Linear::new(&mut g_store, &mut rng, cfg.hidden_dim, n, true);
        let g_embed = Linear::new(&mut g_store, &mut rng, n, cfg.hidden_dim, false);

        let mut d_store = ParamStore::new();
        let d_embed = Linear::new(&mut d_store, &mut rng, n, cfg.hidden_dim, false);
        let d_gru = GruCell::new(&mut d_store, &mut rng, cfg.hidden_dim, cfg.hidden_dim);
        let d_head = Mlp::new(
            &mut d_store,
            &mut rng,
            &[cfg.hidden_dim, cfg.hidden_dim, 1],
            Activation::Relu,
        );

        let model = NetGan {
            n,
            m: g.m(),
            hidden: cfg.hidden_dim,
            latent: cfg.latent_dim,
            g_init,
            g_gru,
            g_out,
            g_embed,
            seed: cfg.seed,
        };

        let batch = 6usize;
        let mut opt_g = Adam::with_lr(cfg.learning_rate);
        let mut opt_d = Adam::with_lr(cfg.learning_rate);
        let ones = Arc::new(Matrix::full(batch, 1, 1.0));
        let zeros = Arc::new(Matrix::zeros(batch, 1));

        let discriminate = |tape: &Tape, steps: &[Var]| -> Var {
            let mut h = tape.constant(Matrix::zeros(steps[0].shape().0, cfg.hidden_dim));
            for s in steps {
                let e = d_embed.forward(tape, s).tanh();
                h = d_gru.forward(tape, &e, &h);
            }
            d_head.forward(tape, &h)
        };

        let iters = cfg.epochs;
        for _ in 0..iters {
            // ---- Discriminator ----
            {
                let tape = Tape::new();
                // Real walks as one-hot step batches.
                let mut real_steps = Vec::with_capacity(WALK_LEN);
                let mut walks = Vec::with_capacity(batch);
                for _ in 0..batch {
                    if let Some(w) = sample_walk(g, &mut rng) {
                        walks.push(w);
                    }
                }
                if walks.len() < batch {
                    continue;
                }
                for t in 0..WALK_LEN {
                    let mut step = Matrix::zeros(batch, n);
                    for (b, w) in walks.iter().enumerate() {
                        step.set(b, w[t] as usize, 1.0);
                    }
                    real_steps.push(tape.constant(step));
                }
                let real_logit = discriminate(&tape, &real_steps);

                let fake_steps = model.generate_soft_walks(&tape, batch, &mut rng);
                // Detach for the D step.
                let fake_const: Vec<Var> = fake_steps
                    .iter()
                    .map(|s| tape.constant(s.value()))
                    .collect();
                let fake_logit = discriminate(&tape, &fake_const);

                let d_loss = real_logit
                    .bce_with_logits_mean(&ones, None)
                    .add(&fake_logit.bce_with_logits_mean(&zeros, None));
                g_store.zero_grad();
                d_store.zero_grad();
                d_loss.backward();
                opt_d.step(&d_store);
            }
            // ---- Generator ----
            {
                let tape = Tape::new();
                let fake_steps = model.generate_soft_walks(&tape, batch, &mut rng);
                let fake_logit = discriminate(&tape, &fake_steps);
                let g_loss = fake_logit.bce_with_logits_mean(&ones, None);
                g_store.zero_grad();
                d_store.zero_grad();
                g_loss.backward();
                opt_g.step(&g_store);
            }
        }
        model
    }

    /// Generates `batch` soft walks (one Gumbel-softmax distribution per
    /// step) on `tape`.
    fn generate_soft_walks(&self, tape: &Tape, batch: usize, rng: &mut StdRng) -> Vec<Var> {
        let z = tape.constant(init::standard_normal(rng, batch, self.latent));
        let mut h = self.g_init.forward(tape, &z).tanh();
        let mut x = tape.constant(Matrix::zeros(batch, self.hidden));
        let mut steps = Vec::with_capacity(WALK_LEN);
        for _ in 0..WALK_LEN {
            h = self.g_gru.forward(tape, &x, &h);
            let logits = self.g_out.forward(tape, &h);
            // Gumbel-softmax: softmax((logits + G) / tau).
            let gumbel = Matrix::from_fn(batch, self.n, |_, _| {
                let u: f32 = rng.gen::<f32>().max(1e-9);
                -(-u.ln()).ln()
            });
            let soft = logits
                .add(&tape.constant(gumbel))
                .scale(1.0 / TAU)
                .softmax_rows();
            x = self.g_embed.forward(tape, &soft).tanh();
            steps.push(soft);
        }
        steps
    }

    /// Hard walks sampled from the generator (argmax of each soft step).
    pub fn sample_walks(&self, count: usize, rng: &mut StdRng) -> Vec<Vec<NodeId>> {
        let mut walks = Vec::with_capacity(count);
        let batch = 8usize;
        while walks.len() < count {
            let tape = Tape::new();
            let steps = self.generate_soft_walks(&tape, batch, rng);
            for b in 0..batch {
                if walks.len() >= count {
                    break;
                }
                let mut walk = Vec::with_capacity(WALK_LEN);
                for s in &steps {
                    let v = s.value();
                    let row = v.row(b);
                    let arg = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    walk.push(arg as NodeId);
                }
                walks.push(walk);
            }
        }
        walks
    }
}

impl GraphGenerator for NetGan {
    fn name(&self) -> &'static str {
        "NetGAN"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        // Step 3 of Figure 3: count edges over generated walks, keep the
        // top-m scoring pairs.
        let mut walk_rng = StdRng::seed_from_u64(rng.next_u64() ^ self.seed);
        let walk_count = (4 * self.m / WALK_LEN.max(1)).max(32);
        let walks = self.sample_walks(walk_count, &mut walk_rng);
        let mut counts: std::collections::HashMap<(NodeId, NodeId), u32> =
            std::collections::HashMap::new();
        for w in &walks {
            for pair in w.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                if a == b {
                    continue;
                }
                let key = if a < b { (a, b) } else { (b, a) };
                *counts.entry(key).or_insert(0) += 1;
            }
        }
        let mut scored: Vec<((NodeId, NodeId), u32)> = counts.into_iter().collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut builder = GraphBuilder::with_capacity(self.n, self.m);
        for ((u, v), _) in scored.into_iter().take(self.m) {
            builder.push_edge(u, v);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::two_block_fixture as two_blocks;

    fn tiny_cfg() -> DeepConfig {
        DeepConfig {
            hidden_dim: 12,
            latent_dim: 6,
            epochs: 30,
            ..DeepConfig::tiny()
        }
    }

    #[test]
    fn random_walks_stay_on_edges() {
        let (g, _) = two_blocks(8);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let w = sample_walk(&g, &mut rng).unwrap();
            assert_eq!(w.len(), WALK_LEN);
            for pair in w.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn fit_and_generate_counts() {
        let (g, _) = two_blocks(8);
        let model = NetGan::fit(&g, &tiny_cfg());
        let mut rng = StdRng::seed_from_u64(1);
        let out = model.generate(&mut rng);
        assert_eq!(out.n(), g.n());
        assert!(out.m() <= g.m());
        assert!(out.m() > 0);
    }

    #[test]
    fn generated_walks_have_right_length() {
        let (g, _) = two_blocks(6);
        let model = NetGan::fit(&g, &tiny_cfg());
        let mut rng = StdRng::seed_from_u64(2);
        let walks = model.sample_walks(5, &mut rng);
        assert_eq!(walks.len(), 5);
        for w in walks {
            assert_eq!(w.len(), WALK_LEN);
            for &v in &w {
                assert!((v as usize) < g.n());
            }
        }
    }
}
