//! Graphite (Grover, Zweig & Ermon 2019), paper baseline "Graphite".
//!
//! A VGAE whose decoder iteratively refines the latent codes by message
//! passing over the *soft* generated adjacency before the final inner
//! product — the "iterative generative modeling" idea, reproduced here with
//! one refinement round.

use crate::common::{self, DeepConfig};
use cpgan_generators::GraphGenerator;
use cpgan_graph::Graph;
use cpgan_nn::layers::{GcnConv, Linear};
use cpgan_nn::optim::{Adam, Optimizer};
use cpgan_nn::{init, loss, Csr, Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Arc;

/// A trained Graphite model.
pub struct Graphite {
    cfg: DeepConfig,
    conv1: GcnConv,
    conv_mu: GcnConv,
    conv_logvar: GcnConv,
    refine: Linear,
    n: usize,
    m: usize,
    trained_mu: Matrix,
    trained_logvar: Matrix,
}

impl Graphite {
    /// Builds and trains on the observed graph.
    pub fn fit(g: &Graph, cfg: &DeepConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let conv1 = GcnConv::new(&mut store, &mut rng, cfg.feature_dim, cfg.hidden_dim);
        let conv_mu = GcnConv::new(&mut store, &mut rng, cfg.hidden_dim, cfg.latent_dim);
        let conv_logvar = GcnConv::new(&mut store, &mut rng, cfg.hidden_dim, cfg.latent_dim);
        let refine = Linear::new(&mut store, &mut rng, cfg.latent_dim, cfg.latent_dim, true);

        let adj = Arc::new(Csr::normalized_adjacency(g));
        let feats = common::features(g, cfg.feature_dim, cfg.seed);
        let (target, weights) = common::adjacency_target(g);
        let mut opt = Adam::with_lr(cfg.learning_rate);

        let mut model = Graphite {
            cfg: cfg.clone(),
            conv1,
            conv_mu,
            conv_logvar,
            refine,
            n: g.n(),
            m: g.m(),
            trained_mu: Matrix::zeros(g.n(), cfg.latent_dim),
            trained_logvar: Matrix::zeros(g.n(), cfg.latent_dim),
        };

        for _ in 0..cfg.epochs {
            let tape = Tape::new();
            let x = tape.constant(feats.clone());
            let (mu, logvar) = model.encode(&tape, &adj, &x);
            let eps = tape.constant(init::standard_normal(&mut rng, g.n(), cfg.latent_dim));
            let z = mu.add(&logvar.scale(0.5).exp().mul(&eps));
            let logits = model.decode(&tape, &z);
            let recon = logits.bce_with_logits_mean(&target, Some(&weights));
            let kl = loss::gaussian_kl(&mu, &logvar);
            let total = recon.add(&kl.scale(0.05));
            store.zero_grad();
            total.backward();
            opt.step(&store);
        }

        let tape = Tape::new();
        let x = tape.constant(feats);
        let (mu, logvar) = model.encode(&tape, &adj, &x);
        model.trained_mu = mu.value();
        model.trained_logvar = logvar.value();
        model
    }

    fn encode(&self, tape: &Tape, adj: &Arc<Csr>, x: &Var) -> (Var, Var) {
        let h = self.conv1.forward_sparse(tape, adj, x).relu();
        (
            self.conv_mu.forward_sparse(tape, adj, &h),
            self.conv_logvar.forward_sparse(tape, adj, &h),
        )
    }

    /// Graphite decoding: intermediate soft adjacency -> one message-passing
    /// refinement of `z` -> final inner-product logits.
    fn decode(&self, tape: &Tape, z: &Var) -> Var {
        let scale = 1.0 / (self.cfg.latent_dim as f32).sqrt();
        let soft = z.matmul(&z.transpose()).scale(scale).sigmoid();
        // Refine: z' = relu(W(soft z)) + z (residual keeps training stable).
        let msg = soft.matmul(z).scale(1.0 / self.n.max(1) as f32);
        let z_ref = self.refine.forward(tape, &msg).relu().add(z);
        z_ref.matmul(&z_ref.transpose()).scale(scale)
    }

    /// Decoded probabilities with fresh posterior noise.
    pub fn decode_probabilities(&self, rng: &mut dyn RngCore) -> Matrix {
        let tape = Tape::new();
        let mut noise_rng = StdRng::seed_from_u64(rng.next_u64());
        let eps = init::standard_normal(&mut noise_rng, self.n, self.cfg.latent_dim);
        let mut z = self.trained_mu.clone();
        for i in 0..z.len() {
            let sigma = (0.5 * self.trained_logvar.as_slice()[i]).exp();
            z.as_mut_slice()[i] += sigma * eps.as_slice()[i];
        }
        let zv = tape.constant(z);
        self.decode(&tape, &zv).sigmoid().value()
    }
}

impl GraphGenerator for Graphite {
    fn name(&self) -> &'static str {
        "Graphite"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        let probs = self.decode_probabilities(rng);
        common::assemble_from_probs(&probs, self.m, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::two_block_fixture as two_blocks;

    #[test]
    fn fit_and_generate() {
        let (g, _) = two_blocks(10);
        let model = Graphite::fit(&g, &DeepConfig::tiny());
        let mut rng = StdRng::seed_from_u64(0);
        let out = model.generate(&mut rng);
        assert_eq!(out.n(), g.n());
        assert_eq!(out.m(), g.m());
    }

    #[test]
    fn reconstruction_signal_present() {
        let (g, _) = two_blocks(10);
        let model = Graphite::fit(&g, &DeepConfig::tiny());
        let mut rng = StdRng::seed_from_u64(1);
        let probs = model.decode_probabilities(&mut rng);
        let mut p_edge = 0.0f64;
        for &(u, v) in g.edges() {
            p_edge += probs.get(u as usize, v as usize) as f64;
        }
        p_edge /= g.m() as f64;
        let mut p_all = 0.0f64;
        for i in 0..g.n() {
            for j in 0..g.n() {
                if i != j {
                    p_all += probs.get(i, j) as f64;
                }
            }
        }
        p_all /= (g.n() * (g.n() - 1)) as f64;
        assert!(p_edge > p_all, "edges {p_edge} vs overall {p_all}");
    }
}
