//! SBMGNN (Mehta, Carin & Rai 2019), paper baseline "SBMGNN".
//!
//! A graph neural network that infers the parameters of an *overlapping*
//! stochastic blockmodel: a GCN produces nonnegative node-community
//! memberships `pi` and a trainable symmetric block matrix `B` defines the
//! edge likelihood `sigma(pi_i B pi_j^T)`. As the paper notes (§II-B2), the
//! deep machinery serves parameter inference, not community preservation
//! itself.

use crate::common::{self, DeepConfig};
use cpgan_generators::GraphGenerator;
use cpgan_graph::Graph;
use cpgan_nn::layers::GcnConv;
use cpgan_nn::optim::{Adam, Optimizer};
use cpgan_nn::{Csr, Matrix, Param, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::Arc;

/// A trained SBMGNN.
pub struct SbmGnn {
    m: usize,
    communities: usize,
    /// Inferred memberships (`n x K`, row-stochastic).
    trained_pi: Matrix,
    /// Inferred block matrix (`K x K`).
    trained_b: Matrix,
}

impl SbmGnn {
    /// Builds and trains on the observed graph with `k_comm` latent
    /// communities (0 = heuristic `sqrt(n)` capped at 16).
    pub fn fit(g: &Graph, cfg: &DeepConfig, k_comm: usize) -> Self {
        let k = if k_comm == 0 {
            ((g.n() as f64).sqrt() as usize).clamp(2, 16)
        } else {
            k_comm
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let conv1 = GcnConv::new(&mut store, &mut rng, cfg.feature_dim, cfg.hidden_dim);
        let conv_pi = GcnConv::new(&mut store, &mut rng, cfg.hidden_dim, k);
        // Block matrix parameter, initialized assortative (diagonal-heavy).
        let b_init = Matrix::from_fn(k, k, |r, c| if r == c { 1.0 } else { -1.0 });
        let b_param: Param = store.register(b_init);

        let adj = Arc::new(Csr::normalized_adjacency(g));
        let feats = common::features(g, cfg.feature_dim, cfg.seed);
        let (target, weights) = common::adjacency_target(g);
        let mut opt = Adam::with_lr(cfg.learning_rate);

        for _ in 0..cfg.epochs {
            let tape = Tape::new();
            let x = tape.constant(feats.clone());
            let h = conv1.forward_sparse(&tape, &adj, &x).relu();
            let pi = conv_pi.forward_sparse(&tape, &adj, &h).softmax_rows();
            let b = tape.param(&b_param);
            // Symmetrize B so the logits stay symmetric.
            let b_sym = b.add(&b.transpose()).scale(0.5);
            let logits = pi.matmul(&b_sym).matmul(&pi.transpose());
            let recon = logits.bce_with_logits_mean(&target, Some(&weights));
            // Entropy-ish regularizer keeping memberships crisp: minimize
            // -sum pi log pi is *maximized* for crispness, so we minimize
            // +entropy with small weight.
            let entropy = pi.mul(&pi.ln()).sum_all().scale(-1.0 / g.n() as f32);
            let total = recon.add(&entropy.scale(0.01));
            store.zero_grad();
            total.backward();
            opt.step(&store);
        }

        // Cache the inferred SBM parameters.
        let tape = Tape::new();
        let x = tape.constant(feats);
        let h = conv1.forward_sparse(&tape, &adj, &x).relu();
        let pi = conv_pi.forward_sparse(&tape, &adj, &h).softmax_rows();
        let b = tape.param(&b_param);
        let b_sym = b.add(&b.transpose()).scale(0.5);
        SbmGnn {
            m: g.m(),
            communities: k,
            trained_pi: pi.value(),
            trained_b: b_sym.value(),
        }
    }

    /// Number of latent communities.
    pub fn community_count(&self) -> usize {
        self.communities
    }

    /// Edge probabilities from the inferred overlapping SBM.
    pub fn probabilities(&self) -> Matrix {
        let tape = Tape::new();
        let pi = tape.constant(self.trained_pi.clone());
        let b = tape.constant(self.trained_b.clone());
        pi.matmul(&b).matmul(&pi.transpose()).sigmoid().value()
    }
}

impl GraphGenerator for SbmGnn {
    fn name(&self) -> &'static str {
        "SBMGNN"
    }

    fn generate(&self, rng: &mut dyn RngCore) -> Graph {
        // Sample community draws per node from pi, then Bernoulli edges from
        // the block matrix — the generative process of the overlapping SBM —
        // but rescaled to hit the observed edge count via assembly.
        let probs = self.probabilities();
        // Inject membership sampling noise so repeated generations differ.
        let mut noisy = probs.clone();
        for v in noisy.as_mut_slice() {
            let jitter: f32 = rng.gen_range(0.95..1.05);
            *v = (*v * jitter).clamp(0.0, 1.0);
        }
        common::assemble_from_probs(&noisy, self.m, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::two_block_fixture as two_blocks;
    use cpgan_community::{louvain, metrics};

    #[test]
    fn fit_and_generate() {
        let (g, _) = two_blocks(10);
        let model = SbmGnn::fit(&g, &DeepConfig::tiny(), 4);
        assert_eq!(model.community_count(), 4);
        let mut rng = StdRng::seed_from_u64(0);
        let out = model.generate(&mut rng);
        assert_eq!(out.n(), g.n());
        assert_eq!(out.m(), g.m());
    }

    #[test]
    fn memberships_row_stochastic() {
        let (g, _) = two_blocks(8);
        let model = SbmGnn::fit(&g, &DeepConfig::tiny(), 3);
        for r in 0..model.trained_pi.rows() {
            let s: f32 = model.trained_pi.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn block_structure_recovered_roughly() {
        let (g, labels) = two_blocks(14);
        let model = SbmGnn::fit(
            &g,
            &DeepConfig {
                epochs: 150,
                ..DeepConfig::tiny()
            },
            2,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let out = model.generate(&mut rng);
        let det = louvain::louvain(&out, 0);
        let nmi = metrics::nmi(det.labels(), &labels);
        assert!(nmi > 0.15, "nmi {nmi}");
    }
}
