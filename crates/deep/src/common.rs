//! Shared plumbing for the learning-based baselines.

use cpgan_graph::sampling::SubgraphSampler;
use cpgan_graph::{spectral, Graph, GraphBuilder, NodeId};
use cpgan_nn::{BlockDiagCsr, Matrix};
use rand::{Rng, RngCore};
use std::sync::Arc;

/// Hyper-parameters shared by all deep baselines. The paper uses each
/// baseline's original settings; these defaults scale them to CPU while
/// keeping the ratios.
#[derive(Debug, Clone)]
pub struct DeepConfig {
    /// Hidden width of encoders.
    pub hidden_dim: usize,
    /// Latent width.
    pub latent_dim: usize,
    /// Input spectral-feature dimension.
    pub feature_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Seed for init, sampling, and noise.
    pub seed: u64,
    /// Nodes per sampled training subgraph; `0` (the default) trains on the
    /// full observed graph every epoch, the historical behavior.
    pub sample_size: usize,
    /// Subgraphs per training step when `sample_size > 0`; the batch is
    /// packed block-diagonally ([`cpgan_nn::BlockDiagCsr`]) so one fused
    /// kernel call covers every subgraph.
    pub batch_size: usize,
}

impl Default for DeepConfig {
    fn default() -> Self {
        DeepConfig {
            hidden_dim: 32,
            latent_dim: 16,
            feature_dim: 16,
            epochs: 200,
            learning_rate: 5e-3,
            seed: 7,
            sample_size: 0,
            batch_size: 1,
        }
    }
}

impl DeepConfig {
    /// Light settings for unit tests.
    pub fn tiny() -> Self {
        DeepConfig {
            hidden_dim: 12,
            latent_dim: 6,
            epochs: 200,
            ..Default::default()
        }
    }
}

/// Spectral input features for a graph (the same default the paper uses for
/// featureless graphs, §III-C1). When the graph has fewer nodes than `dim`,
/// the embedding is zero-padded to the requested width so model layer
/// shapes stay fixed.
pub fn features(g: &Graph, dim: usize, seed: u64) -> Matrix {
    let d_eff = dim.min(g.n());
    let spec = spectral::spectral_embedding(g, d_eff, seed);
    Matrix::from_fn(g.n(), dim, |r, c| {
        if c < d_eff {
            spec[r * d_eff + c]
        } else {
            0.0
        }
    })
}

/// Dense adjacency target plus class-balancing BCE weights for an observed
/// graph (positives up-weighted by the negative/positive ratio, capped).
pub fn adjacency_target(g: &Graph) -> (Arc<Matrix>, Arc<Matrix>) {
    let n = g.n();
    let target = Arc::new(Matrix::from_vec(n, n, g.dense_adjacency()));
    let m = g.m() as f32;
    let pos_weight = (((n * n) as f32 - 2.0 * m) / (2.0 * m + 1.0)).clamp(1.0, 50.0);
    let weights = Arc::new(target.map(|t| if t > 0.5 { pos_weight } else { 1.0 }));
    (target, weights)
}

/// One block-diagonal training batch of sampled subgraphs (DESIGN §13).
///
/// The `b`-th subgraph occupies packed rows `ops.block_range(b)`; its rows
/// in `feats` were gathered from the full graph's feature matrix, so feature
/// semantics match the unbatched path exactly.
pub struct SubgraphBatch {
    /// Normalized adjacencies of every subgraph packed block-diagonally.
    pub ops: BlockDiagCsr,
    /// Input features for the packed node set (`total_rows x feature_dim`).
    pub feats: Matrix,
    /// Per-block dense reconstruction target + BCE weights.
    pub targets: Vec<(Arc<Matrix>, Arc<Matrix>)>,
    /// Per-block packed-row index lists, ready for `Var::gather_rows`.
    pub rows: Vec<Arc<Vec<usize>>>,
}

impl SubgraphBatch {
    /// Number of subgraphs in the batch.
    pub fn blocks(&self) -> usize {
        self.ops.blocks()
    }
}

/// Draws `batch` subgraphs of `ns` nodes from `sampler` (one seeded stream —
/// the batch size can never change the draw sequence, see
/// `cpgan_graph::sampling`) and packs them into a [`SubgraphBatch`]. Feature
/// rows are gathered from `full_feats` by the sampled original node ids.
pub fn sample_batch(
    g: &Graph,
    full_feats: &Matrix,
    sampler: &mut SubgraphSampler,
    ns: usize,
    batch: usize,
) -> SubgraphBatch {
    // Clamp to the graph size: deep baselines train whole-graph when the
    // configured sample size exceeds `n`, so an oversized `ns` is not an
    // error at this seam (the sampler itself rejects `k > n`).
    let draws = sampler
        .next_batch(g, ns.min(g.n()), batch)
        .unwrap_or_default();
    let dim = full_feats.cols();
    let total: usize = draws.iter().map(|(sub, _)| sub.n()).sum();
    let mut data = Vec::with_capacity(total * dim);
    for (_, ids) in &draws {
        for &id in ids {
            data.extend_from_slice(full_feats.row(id as usize));
        }
    }
    let feats = Matrix::from_vec(total, dim, data);
    let graphs: Vec<&Graph> = draws.iter().map(|(sub, _)| sub).collect();
    let ops = BlockDiagCsr::from_graphs(graphs.iter().copied());
    let targets = draws.iter().map(|(sub, _)| adjacency_target(sub)).collect();
    let rows = (0..draws.len())
        .map(|b| Arc::new(ops.block_range(b).collect::<Vec<usize>>()))
        .collect();
    SubgraphBatch {
        ops,
        feats,
        targets,
        rows,
    }
}

/// Assembles a graph with exactly `m` edges (or as many as possible) from a
/// symmetric link-probability matrix: one categorical edge per row first
/// (so low-degree nodes survive), then global top-k.
pub fn assemble_from_probs(probs: &Matrix, m: usize, rng: &mut dyn RngCore) -> Graph {
    let n = probs.rows();
    assert_eq!(probs.cols(), n, "probability matrix must be square");
    let mut chosen = std::collections::HashSet::with_capacity(2 * m);
    let insert = |u: usize, v: usize, set: &mut std::collections::HashSet<(u32, u32)>| {
        if u == v {
            return false;
        }
        let key = if u < v {
            (u as u32, v as u32)
        } else {
            (v as u32, u as u32)
        };
        set.insert(key)
    };
    // Step 1: one categorical draw per row.
    for i in 0..n {
        if chosen.len() >= m {
            break;
        }
        let row = probs.row(i);
        let total: f32 = row
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &p)| p)
            .sum();
        if total <= 0.0 {
            continue;
        }
        let mut x = rng.gen::<f32>() * total;
        for (j, &p) in row.iter().enumerate() {
            if j == i {
                continue;
            }
            x -= p;
            if x <= 0.0 {
                insert(i, j, &mut chosen);
                break;
            }
        }
    }
    // Step 2: top-k fill.
    if chosen.len() < m {
        let mut entries: Vec<(f32, usize, usize)> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                entries.push((probs.get(i, j), i, j));
            }
        }
        entries.sort_by(|a, b| b.0.total_cmp(&a.0));
        for (_, i, j) in entries {
            if chosen.len() >= m {
                break;
            }
            insert(i, j, &mut chosen);
        }
    }
    // Sorted drain: `GraphBuilder::build` canonicalizes anyway, but the
    // push order must not depend on the per-process hash seed (§8).
    let mut edges: Vec<(NodeId, NodeId)> = chosen.into_iter().collect();
    edges.sort_unstable();
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.push_edge(u, v);
    }
    b.build()
}

/// Deterministic two-community test fixture shared by the baseline tests:
/// two dense blocks of `size` nodes joined by one bridge edge. Returns the
/// graph and the planted labels.
pub fn two_block_fixture(size: usize) -> (Graph, Vec<usize>) {
    let n = 2 * size;
    let mut edges = Vec::new();
    for c in 0..2u32 {
        let base = c * size as u32;
        for a in 0..size as u32 {
            for b in (a + 1)..size as u32 {
                if (a + b) % 2 == 0 || b == a + 1 {
                    edges.push((base + a, base + b));
                }
            }
        }
    }
    edges.push((0, size as u32));
    let labels = (0..n).map(|v| (v >= size) as usize).collect();
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.push_edge(u, v);
    }
    (b.build(), labels)
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn assemble_hits_target() {
        let n = 10;
        let probs = Matrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { 0.3 });
        let mut rng = StdRng::seed_from_u64(0);
        let g = assemble_from_probs(&probs, 12, &mut rng);
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 12);
    }

    #[test]
    fn adjacency_target_weights_balance() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2)]).unwrap();
        let (t, w) = adjacency_target(&g);
        assert_eq!(t.get(0, 1), 1.0);
        assert_eq!(t.get(1, 0), 1.0);
        assert!(w.get(0, 1) > w.get(0, 3));
    }

    #[test]
    fn features_shape() {
        let g = Graph::from_edges(6, [(0, 1), (2, 3), (4, 5)]).unwrap();
        let f = features(&g, 3, 1);
        assert_eq!(f.shape(), (6, 3));
    }
}
