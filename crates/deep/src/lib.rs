#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Learning-based baseline graph generators (paper §II-B2).
//!
//! Reimplementations of the six deep baselines the paper compares against,
//! built on the `cpgan-nn` substrate:
//!
//! * [`vgae::Vgae`] — variational graph autoencoder (Kipf & Welling 2016),
//! * [`graphite::Graphite`] — iterative VAE decoder refinement (Grover 2019),
//! * [`sbmgnn::SbmGnn`] — overlapping-SBM parameters inferred by a GNN
//!   (Mehta et al. 2019),
//! * [`graphrnn::GraphRnnS`] — the simplified sequential GraphRNN variant
//!   the paper selects (You et al. 2018),
//! * [`netgan::NetGan`] — random-walk GAN (Bojchevski et al. 2018),
//! * [`condgen::CondGenR`] — the reduced CondGen variant (Yang et al. 2019).
//!
//! Each model exposes `fit(&Graph, &DeepConfig) -> Self` and implements
//! [`cpgan_generators::GraphGenerator`], so the evaluation harness treats
//! them interchangeably with the traditional baselines and CPGAN.

pub mod common;
pub mod condgen;
pub mod graphite;
pub mod graphrnn;
pub mod netgan;
pub mod sbmgnn;
pub mod vgae;

pub use common::DeepConfig;
