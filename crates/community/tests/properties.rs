//! Property-based tests for community detection and partition metrics.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach; panicking is the right
// failure mode in test code.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_community::{louvain, metrics, modularity, Partition};
use cpgan_graph::Graph;
use proptest::prelude::*;

fn arb_labels(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..k, n)
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..80)
            .prop_map(move |edges| Graph::from_edges(n, edges).unwrap())
    })
}

proptest! {
    #[test]
    fn ari_symmetric(x in arb_labels(12, 4), y in arb_labels(12, 4)) {
        let a = metrics::adjusted_rand_index(&x, &y);
        let b = metrics::adjusted_rand_index(&y, &x);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn nmi_symmetric_and_bounded(x in arb_labels(12, 4), y in arb_labels(12, 4)) {
        let a = metrics::nmi(&x, &y);
        let b = metrics::nmi(&y, &x);
        prop_assert!((a - b).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn self_similarity_is_one(x in arb_labels(15, 5)) {
        prop_assert!((metrics::adjusted_rand_index(&x, &x) - 1.0).abs() < 1e-9);
        prop_assert!((metrics::nmi(&x, &x) - 1.0).abs() < 1e-9);
        prop_assert!((metrics::rand_index(&x, &x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn relabelling_invariance(x in arb_labels(15, 4)) {
        // Apply a fixed permutation to the label alphabet.
        let relabel: Vec<usize> = x.iter().map(|&l| [3, 0, 2, 1][l]).collect();
        prop_assert!((metrics::adjusted_rand_index(&x, &relabel) - 1.0).abs() < 1e-9);
        prop_assert!((metrics::nmi(&x, &relabel) - 1.0).abs() < 1e-9);
        prop_assert!(metrics::same_partition(&x, &relabel));
    }

    #[test]
    fn rand_index_in_unit_interval(x in arb_labels(10, 3), y in arb_labels(10, 3)) {
        let r = metrics::rand_index(&x, &y);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn mutual_information_bounded_by_entropies(x in arb_labels(14, 4), y in arb_labels(14, 4)) {
        let mi = metrics::mutual_information(&x, &y);
        prop_assert!(mi <= metrics::entropy(&x) + 1e-9);
        prop_assert!(mi <= metrics::entropy(&y) + 1e-9);
    }

    #[test]
    fn louvain_labels_cover_all_nodes(g in arb_graph()) {
        let p = louvain::louvain(&g, 11);
        prop_assert_eq!(p.len(), g.n());
        prop_assert!(p.community_count() >= 1);
        prop_assert!(p.community_count() <= g.n());
    }

    #[test]
    fn louvain_never_beaten_by_trivial_partition(g in arb_graph()) {
        let p = louvain::louvain(&g, 5);
        let q = modularity::modularity(&g, p.labels());
        let all_one = modularity::modularity(&g, &vec![0; g.n()]);
        prop_assert!(q >= all_one - 1e-9, "louvain {q} < trivial {all_one}");
    }

    #[test]
    fn louvain_hierarchy_composes(g in arb_graph()) {
        let levels = louvain::louvain_hierarchy(&g, 3);
        // Modularity should be non-decreasing through the hierarchy.
        let qs: Vec<f64> = levels
            .iter()
            .map(|p| modularity::modularity(&g, p.labels()))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9, "hierarchy modularity decreased: {qs:?}");
        }
    }

    #[test]
    fn partition_roundtrip(x in arb_labels(10, 6)) {
        let p = Partition::from_labels(&x);
        prop_assert!((metrics::nmi(p.labels(), &x) - 1.0).abs() < 1e-9);
        let sizes = p.community_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), x.len());
        prop_assert!(sizes.iter().all(|&s| s > 0));
    }
}
