//! Golden regression tests for the community metrics and detectors whose
//! determinism PR 6 made structural (BTreeMap iteration in `entropy` and
//! label propagation): outputs are pinned bit-for-bit with `f64::to_bits`
//! hex constants, mirroring `crates/graph/tests/golden.rs`.
//!
//! After an *intended* numerical change, regenerate the constants with:
//!
//! ```text
//! cargo test -p cpgan-community --test golden -- --ignored regenerate --nocapture
//! ```

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_community::label_propagation::label_propagation;
use cpgan_community::metrics::{entropy, mutual_information, nmi};
use cpgan_graph::Graph;

/// Skewed three-community labels: sizes 30 / 20 / 10.
fn labels_x() -> Vec<usize> {
    (0..60)
        .map(|i| {
            if i < 30 {
                0
            } else if i < 50 {
                1
            } else {
                2
            }
        })
        .collect()
}

/// A coarser two-community view of the same nodes: sizes 30 / 30.
fn labels_y() -> Vec<usize> {
    (0..60).map(|i| usize::from(i >= 30)).collect()
}

/// Two dense 8-cliques joined by one bridge edge — unambiguous communities
/// so label propagation converges to the planted split at any seed.
fn two_clique_graph() -> Graph {
    let size = 8u32;
    let mut edges = Vec::new();
    for block in 0..2u32 {
        let base = block * size;
        for i in 0..size {
            for j in (i + 1)..size {
                edges.push((base + i, base + j));
            }
        }
    }
    edges.push((size - 1, size)); // bridge
    Graph::from_edges(2 * size as usize, edges).unwrap()
}

/// `f64::to_bits` pins for the metric values (see module docs).
const ENTROPY_X_BITS: u64 = 0x3ff02eb63cff3f7f;
const ENTROPY_Y_BITS: u64 = 0x3fe62e42fefa39ef;
const MI_XY_BITS: u64 = 0x3fe62e42fefa39ef;
const NMI_XY_BITS: u64 = 0x3fea067866a22993;

#[test]
fn entropy_bits_are_pinned() {
    assert_eq!(
        entropy(&labels_x()).to_bits(),
        ENTROPY_X_BITS,
        "entropy(x) drifted: got {:016x} ({})",
        entropy(&labels_x()).to_bits(),
        entropy(&labels_x())
    );
    assert_eq!(
        entropy(&labels_y()).to_bits(),
        ENTROPY_Y_BITS,
        "entropy(y) drifted: got {:016x} ({})",
        entropy(&labels_y()).to_bits(),
        entropy(&labels_y())
    );
}

#[test]
fn mutual_information_and_nmi_bits_are_pinned() {
    let (x, y) = (labels_x(), labels_y());
    assert_eq!(
        mutual_information(&x, &y).to_bits(),
        MI_XY_BITS,
        "MI drifted: got {:016x} ({})",
        mutual_information(&x, &y).to_bits(),
        mutual_information(&x, &y)
    );
    assert_eq!(
        nmi(&x, &y).to_bits(),
        NMI_XY_BITS,
        "NMI drifted: got {:016x} ({})",
        nmi(&x, &y).to_bits(),
        nmi(&x, &y)
    );
}

#[test]
fn label_propagation_output_is_pinned() {
    let g = two_clique_graph();
    let p = label_propagation(&g, 7);
    // The planted two-clique split, in canonical (first-seen) relabeling.
    let expected: Vec<usize> = (0..16).map(|i| usize::from(i >= 8)).collect();
    assert_eq!(p.labels(), &expected[..], "label propagation drifted");
    // Same seed, second run: bit-identical partition (determinism
    // contract, DESIGN.md §8).
    assert_eq!(p.labels(), label_propagation(&g, 7).labels());
}

#[test]
fn entropy_is_invariant_under_label_order() {
    // Permuting the *input order* must not change a single bit: the sum
    // runs in ascending label order regardless of encounter order.
    let x = labels_x();
    let mut reversed = x.clone();
    reversed.reverse();
    assert_eq!(entropy(&x).to_bits(), entropy(&reversed).to_bits());
}

#[test]
#[ignore = "prints current bits; run after an intended numerical change"]
fn regenerate() {
    let (x, y) = (labels_x(), labels_y());
    println!("ENTROPY_X_BITS: u64 = 0x{:016x};", entropy(&x).to_bits());
    println!("ENTROPY_Y_BITS: u64 = 0x{:016x};", entropy(&y).to_bits());
    println!(
        "MI_XY_BITS: u64 = 0x{:016x};",
        mutual_information(&x, &y).to_bits()
    );
    println!("NMI_XY_BITS: u64 = 0x{:016x};", nmi(&x, &y).to_bits());
    println!(
        "label_propagation labels: {:?}",
        label_propagation(&two_clique_graph(), 7).labels()
    );
}
