//! Label propagation community detection (Raghavan et al. 2007).
//!
//! A second, independent detector used to cross-check Louvain results in the
//! evaluation: each node repeatedly adopts the most frequent label among its
//! neighbors until no label changes. Near-linear time, no resolution
//! parameter.

use crate::Partition;
use cpgan_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Runs synchronous-free (sequential, shuffled-order) label propagation.
/// Deterministic for a given `(g, seed)`; ties break toward the smallest
/// label for stability.
pub fn label_propagation(g: &Graph, seed: u64) -> Partition {
    let n = g.n();
    let mut labels: Vec<usize> = (0..n).collect();
    if n == 0 {
        return Partition::from_labels(&labels);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    // BTreeMap, not HashMap: the max below is already order-independent
    // (total tiebreak), but deterministic iteration keeps the detector
    // inside the DESIGN.md §8 contract by construction.
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    // Bounded sweeps; label propagation almost always converges in < 10.
    for _ in 0..32 {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &v in &order {
            let neigh = g.neighbors(v);
            if neigh.is_empty() {
                continue;
            }
            counts.clear();
            for &w in neigh {
                *counts.entry(labels[w as usize]).or_insert(0) += 1;
            }
            // Most frequent neighbor label; smallest label on ties. The
            // fallback never fires (`neigh` is nonempty here) but keeps
            // this loop panic-free.
            let best = counts
                .iter()
                .map(|(&l, &c)| (c, std::cmp::Reverse(l)))
                .max()
                .map(|(_, std::cmp::Reverse(l))| l)
                .unwrap_or(labels[v as usize]);
            if best != labels[v as usize] {
                labels[v as usize] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Partition::from_labels(&labels)
}

/// Conductance of one community: cut edges / min(vol, 2m - vol). Lower is
/// better-separated. Returns `None` for empty or whole-graph communities.
pub fn conductance(g: &Graph, labels: &[usize], community: usize) -> Option<f64> {
    assert_eq!(labels.len(), g.n());
    let mut cut = 0usize;
    let mut vol = 0usize;
    for v in 0..g.n() {
        if labels[v] != community {
            continue;
        }
        vol += g.degree(v as NodeId);
        for &w in g.neighbors(v as NodeId) {
            if labels[w as usize] != community {
                cut += 1;
            }
        }
    }
    let total = 2 * g.m();
    if vol == 0 || vol == total {
        return None;
    }
    Some(cut as f64 / vol.min(total - vol) as f64)
}

/// Mean conductance over all communities that have one (lower = crisper
/// community structure).
pub fn mean_conductance(g: &Graph, labels: &[usize]) -> f64 {
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let values: Vec<f64> = (0..k).filter_map(|c| conductance(g, labels, c)).collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn two_cliques_bridge() -> (Graph, Vec<usize>) {
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
                edges.push((u + 8, v + 8));
            }
        }
        edges.push((0, 8));
        (
            Graph::from_edges(16, edges).unwrap(),
            (0..16).map(|v| (v >= 8) as usize).collect(),
        )
    }

    #[test]
    fn detects_planted_cliques() {
        let (g, truth) = two_cliques_bridge();
        let p = label_propagation(&g, 1);
        let nmi = metrics::nmi(p.labels(), &truth);
        assert!(nmi > 0.9, "nmi {nmi}");
    }

    #[test]
    fn agrees_with_louvain_on_clear_structure() {
        let (g, _) = two_cliques_bridge();
        let lp = label_propagation(&g, 2);
        let lv = crate::louvain::louvain(&g, 2);
        let nmi = metrics::nmi(lp.labels(), lv.labels());
        assert!(nmi > 0.9, "detectors disagree: nmi {nmi}");
    }

    #[test]
    fn conductance_of_cliques_low() {
        let (g, truth) = two_cliques_bridge();
        let c = conductance(&g, &truth, 0).unwrap();
        // One cut edge over volume 57.
        assert!(c < 0.05, "conductance {c}");
        let mc = mean_conductance(&g, &truth);
        assert!(mc < 0.05);
    }

    #[test]
    fn conductance_of_random_split_high() {
        let (g, _) = two_cliques_bridge();
        let alternating: Vec<usize> = (0..16).map(|v| v % 2).collect();
        assert!(mean_conductance(&g, &alternating) > 0.5);
    }

    #[test]
    fn whole_graph_community_has_no_conductance() {
        let (g, _) = two_cliques_bridge();
        assert!(conductance(&g, &[0; 16], 0).is_none());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert_eq!(label_propagation(&g, 0).len(), 0);
    }
}
