//! Modularity `Q` (paper Eq. 20).

use cpgan_graph::Graph;

/// Newman modularity of a labelling:
/// `Q = 1/(2m) * sum_{ij} [A_ij - d_i d_j / (2m)] delta(c_i, c_j)`.
///
/// Computed community-wise in `O(m + n)`:
/// `Q = sum_c (e_c / m - (d_c / (2m))^2)` where `e_c` is the number of
/// intra-community edges and `d_c` the total degree of community `c`.
/// Returns 0 for the edgeless graph.
pub fn modularity(g: &Graph, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), g.n(), "labels must cover every node");
    let m = g.m() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let k = labels.iter().copied().max().map_or(0, |x| x + 1);
    let mut intra = vec![0usize; k];
    let mut deg_total = vec![0f64; k];
    for &(u, v) in g.edges() {
        if labels[u as usize] == labels[v as usize] {
            intra[labels[u as usize]] += 1;
        }
    }
    for v in 0..g.n() {
        deg_total[labels[v]] += g.degree(v as u32) as f64;
    }
    (0..k)
        .map(|c| intra[c] as f64 / m - (deg_total[c] / (2.0 * m)).powi(2))
        .sum()
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn two_triangles_bridge() -> Graph {
        Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn good_partition_beats_bad() {
        let g = two_triangles_bridge();
        let good = modularity(&g, &[0, 0, 0, 1, 1, 1]);
        let bad = modularity(&g, &[0, 1, 0, 1, 0, 1]);
        assert!(good > bad);
        assert!(good > 0.3);
    }

    #[test]
    fn all_in_one_community_is_zero() {
        let g = two_triangles_bridge();
        let q = modularity(&g, &[0; 6]);
        assert!(q.abs() < 1e-12);
    }

    #[test]
    fn known_value_two_cliques_no_bridge() {
        // Two disjoint triangles, perfect split: Q = 2*(3/6 - (6/12)^2) = 0.5.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let q = modularity(&g, &[0, 0, 0, 1, 1, 1]);
        assert!((q - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_zero() {
        let g = Graph::from_edges(3, []).unwrap();
        assert_eq!(modularity(&g, &[0, 1, 2]), 0.0);
    }
}
