//! Node partitions (community assignments).

/// A partition of `n` nodes into communities, stored as a label per node.
///
/// Labels are kept *compact*: they form a contiguous range `0..k` where `k`
/// is the community count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    labels: Vec<usize>,
    k: usize,
}

impl Partition {
    /// Builds a partition from raw labels, renumbering them to `0..k` in
    /// order of first appearance.
    pub fn from_labels(raw: &[usize]) -> Self {
        let mut map = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(raw.len());
        for &l in raw {
            let next = map.len();
            let id = *map.entry(l).or_insert(next);
            labels.push(id);
        }
        Partition {
            labels,
            k: map.len(),
        }
    }

    /// The trivial partition placing every node in its own community.
    pub fn singletons(n: usize) -> Self {
        Partition {
            labels: (0..n).collect(),
            k: n,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the partition covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Community label of each node.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.k
    }

    /// Size of each community, indexed by label.
    pub fn community_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Members of each community, indexed by label.
    pub fn communities(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.k];
        for (v, &l) in self.labels.iter().enumerate() {
            out[l].push(v as u32);
        }
        out
    }

    /// Composes this partition with a coarser one defined *on its
    /// communities*: node `v` gets label `coarser[self.labels[v]]`.
    pub fn compose(&self, coarser: &[usize]) -> Partition {
        assert_eq!(
            coarser.len(),
            self.k,
            "coarser partition must label every community"
        );
        let raw: Vec<usize> = self.labels.iter().map(|&l| coarser[l]).collect();
        Partition::from_labels(&raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renumbers_compactly() {
        let p = Partition::from_labels(&[7, 7, 3, 9, 3]);
        assert_eq!(p.labels(), &[0, 0, 1, 2, 1]);
        assert_eq!(p.community_count(), 3);
        assert_eq!(p.community_sizes(), vec![2, 2, 1]);
    }

    #[test]
    fn communities_listed() {
        let p = Partition::from_labels(&[0, 1, 0]);
        assert_eq!(p.communities(), vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn compose_coarsens() {
        let fine = Partition::from_labels(&[0, 0, 1, 1, 2, 2]);
        let coarse = fine.compose(&[0, 0, 1]);
        assert_eq!(coarse.labels(), &[0, 0, 0, 0, 1, 1]);
        assert_eq!(coarse.community_count(), 2);
    }

    #[test]
    fn singletons_partition() {
        let p = Partition::singletons(3);
        assert_eq!(p.community_count(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.len(), 3);
    }
}
