//! Contingency tables between two partitions (paper Fig. 2).

/// The contingency table of two labellings over the same node set:
/// `counts[i][j]` = number of nodes in community `i` of the first labelling
/// and community `j` of the second (paper's `n_ij`), with row sums `a_i` and
/// column sums `b_j`.
#[derive(Debug, Clone)]
pub struct Contingency {
    /// `n_ij` counts, `rows x cols`.
    pub counts: Vec<Vec<usize>>,
    /// Row sums `a_i`.
    pub row_sums: Vec<usize>,
    /// Column sums `b_j`.
    pub col_sums: Vec<usize>,
    /// Total number of nodes `N`.
    pub n: usize,
}

impl Contingency {
    /// Builds the table from two label vectors (must be equal length).
    /// Labels need not be compact; they are renumbered internally.
    pub fn new(x: &[usize], y: &[usize]) -> Self {
        assert_eq!(x.len(), y.len(), "labellings must cover the same nodes");
        let compact = |v: &[usize]| -> (Vec<usize>, usize) {
            let mut map = std::collections::HashMap::new();
            let out = v
                .iter()
                .map(|&l| {
                    let next = map.len();
                    *map.entry(l).or_insert(next)
                })
                .collect();
            (out, map.len())
        };
        let (xs, r) = compact(x);
        let (ys, c) = compact(y);
        let mut counts = vec![vec![0usize; c]; r];
        for (&i, &j) in xs.iter().zip(&ys) {
            counts[i][j] += 1;
        }
        let row_sums: Vec<usize> = counts.iter().map(|row| row.iter().sum()).collect();
        let mut col_sums = vec![0usize; c];
        for row in &counts {
            for (j, &v) in row.iter().enumerate() {
                col_sums[j] += v;
            }
        }
        Contingency {
            counts,
            row_sums,
            col_sums,
            n: x.len(),
        }
    }

    /// Sum over cells of `C(n_ij, 2)` — the "agreeing pairs" term in ARI.
    pub fn pair_sum_cells(&self) -> f64 {
        self.counts.iter().flatten().map(|&v| choose2(v)).sum()
    }

    /// Sum over rows of `C(a_i, 2)`.
    pub fn pair_sum_rows(&self) -> f64 {
        self.row_sums.iter().map(|&v| choose2(v)).sum()
    }

    /// Sum over columns of `C(b_j, 2)`.
    pub fn pair_sum_cols(&self) -> f64 {
        self.col_sums.iter().map(|&v| choose2(v)).sum()
    }
}

/// `C(n, 2)` as f64.
pub fn choose2(n: usize) -> f64 {
    n as f64 * (n as f64 - 1.0) / 2.0
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn table_counts() {
        let x = [0, 0, 1, 1];
        let y = [0, 1, 1, 1];
        let t = Contingency::new(&x, &y);
        assert_eq!(t.counts, vec![vec![1, 1], vec![0, 2]]);
        assert_eq!(t.row_sums, vec![2, 2]);
        assert_eq!(t.col_sums, vec![1, 3]);
        assert_eq!(t.n, 4);
    }

    #[test]
    fn pair_sums() {
        let x = [0, 0, 0, 1];
        let t = Contingency::new(&x, &x);
        assert_eq!(t.pair_sum_cells(), 3.0); // C(3,2) + C(1,2)
        assert_eq!(t.pair_sum_rows(), 3.0);
        assert_eq!(t.pair_sum_cols(), 3.0);
    }

    #[test]
    fn non_compact_labels_ok() {
        let t = Contingency::new(&[5, 5, 9], &[2, 7, 7]);
        assert_eq!(t.counts.len(), 2);
        assert_eq!(t.counts[0].len(), 2);
    }
}
