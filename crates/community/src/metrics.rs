//! Partition-similarity metrics: RI (Eq. 1), ARI (Eq. 2), MI (Eq. 3), NMI.

use crate::contingency::{choose2, Contingency};

/// Rand Index (paper Eq. 1): fraction of node pairs on which the two
/// labellings agree (same-same or different-different).
pub fn rand_index(x: &[usize], y: &[usize]) -> f64 {
    let t = Contingency::new(x, y);
    let total = choose2(t.n);
    if total == 0.0 {
        return 1.0;
    }
    let tp = t.pair_sum_cells();
    let fp = t.pair_sum_rows() - tp;
    let fn_ = t.pair_sum_cols() - tp;
    let tn = total - tp - fp - fn_;
    (tp + tn) / total
}

/// Adjusted Rand Index (paper Eq. 2): the Rand Index corrected for chance.
/// 1 for identical partitions, ~0 for independent ones; can be negative.
pub fn adjusted_rand_index(x: &[usize], y: &[usize]) -> f64 {
    let t = Contingency::new(x, y);
    let total = choose2(t.n);
    if total == 0.0 {
        return 1.0;
    }
    let sum_cells = t.pair_sum_cells();
    let sum_rows = t.pair_sum_rows();
    let sum_cols = t.pair_sum_cols();
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-12 {
        // Both partitions trivial (all-one-cluster or all-singletons):
        // define ARI = 1 iff identical agreement, matching scikit-learn.
        return if (sum_cells - expected).abs() < 1e-12 {
            1.0
        } else {
            0.0
        };
    }
    (sum_cells - expected) / (max_index - expected)
}

/// Mutual information in nats (paper Eq. 3).
pub fn mutual_information(x: &[usize], y: &[usize]) -> f64 {
    let t = Contingency::new(x, y);
    let n = t.n as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for (i, row) in t.counts.iter().enumerate() {
        for (j, &nij) in row.iter().enumerate() {
            if nij == 0 {
                continue;
            }
            let nij = nij as f64;
            mi += nij / n * ((n * nij) / (t.row_sums[i] as f64 * t.col_sums[j] as f64)).ln();
        }
    }
    mi.max(0.0)
}

/// Shannon entropy (nats) of a labelling.
pub fn entropy(x: &[usize]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    // BTreeMap sums in ascending label order directly — bit-identical to
    // the previous collect-and-sort, with the determinism (float addition
    // is order-sensitive in the low bits) now structural (DESIGN.md §8).
    let mut counts = std::collections::BTreeMap::new();
    for &l in x {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    let n = x.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Normalized Mutual Information with arithmetic-mean normalization
/// (scikit-learn's default, which the paper's evaluation scripts use):
/// `NMI = 2 MI / (H(x) + H(y))`. Two trivial partitions score 1 if
/// identical, 0 otherwise.
pub fn nmi(x: &[usize], y: &[usize]) -> f64 {
    let hx = entropy(x);
    let hy = entropy(y);
    if hx == 0.0 && hy == 0.0 {
        return if x == y || same_partition(x, y) {
            1.0
        } else {
            0.0
        };
    }
    if hx == 0.0 || hy == 0.0 {
        return 0.0;
    }
    (2.0 * mutual_information(x, y) / (hx + hy)).clamp(0.0, 1.0)
}

/// Whether two labellings induce the same partition (up to label renaming).
pub fn same_partition(x: &[usize], y: &[usize]) -> bool {
    if x.len() != y.len() {
        return false;
    }
    let t = Contingency::new(x, y);
    // Same partition iff every row and column of the table has exactly one
    // nonzero cell.
    t.counts
        .iter()
        .all(|row| row.iter().filter(|&&v| v > 0).count() == 1)
        && t.col_sums.iter().all(|&c| c > 0)
        && t.counts.len() == t.col_sums.len()
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let x = [0, 0, 1, 1, 2, 2];
        assert!((rand_index(&x, &x) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&x, &x) - 1.0).abs() < 1e-12);
        assert!((nmi(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabelled_partitions_score_one() {
        let x = [0, 0, 1, 1];
        let y = [5, 5, 3, 3];
        assert!((adjusted_rand_index(&x, &y) - 1.0).abs() < 1e-12);
        assert!((nmi(&x, &y) - 1.0).abs() < 1e-12);
        assert!(same_partition(&x, &y));
    }

    #[test]
    fn sklearn_reference_values() {
        // Values derived by hand from Eq. 2-3 and cross-checked against
        // scikit-learn's adjusted_rand_score / normalized_mutual_info_score
        // (arithmetic mean): ARI = 4/7, NMI = 2*ln2 / (ln2 + 1.5*ln2... ) = 0.8.
        let x = [0, 0, 1, 1];
        let y = [0, 0, 1, 2];
        assert!((adjusted_rand_index(&x, &y) - 0.5714285714285715).abs() < 1e-9);
        assert!((nmi(&x, &y) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn independent_partitions_near_zero_ari() {
        // Perfectly crossed partitions.
        let x = [0, 0, 1, 1];
        let y = [0, 1, 0, 1];
        let ari = adjusted_rand_index(&x, &y);
        assert!(ari <= 0.0 + 1e-9, "ari {ari}");
    }

    #[test]
    fn mi_of_independent_is_zero() {
        let x = [0, 0, 1, 1];
        let y = [0, 1, 0, 1];
        assert!(mutual_information(&x, &y) < 1e-12);
        assert!(nmi(&x, &y) < 1e-12);
    }

    #[test]
    fn rand_index_manual_case() {
        // x = {01}{23}, y = {012}{3}: pairs (6 total):
        // (0,1): same/same agree; (2,3): same/diff disagree;
        // (0,2),(1,2): diff/same disagree; (0,3),(1,3): diff/diff agree.
        let x = [0, 0, 1, 1];
        let y = [0, 0, 0, 1];
        assert!((rand_index(&x, &y) - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_partitions() {
        let ones = [0, 0, 0];
        let singles = [0, 1, 2];
        assert!((nmi(&ones, &ones) - 1.0).abs() < 1e-12);
        assert_eq!(nmi(&ones, &singles), 0.0);
        assert!((adjusted_rand_index(&ones, &ones) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_values() {
        assert!(entropy(&[]).abs() < 1e-12);
        assert!(entropy(&[1, 1, 1]).abs() < 1e-12);
        assert!((entropy(&[0, 1]) - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
