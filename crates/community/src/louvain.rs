//! Louvain community detection (Blondel et al. 2008).
//!
//! The paper uses Louvain to obtain hierarchical ground-truth community
//! partitions for the clustering-consistency loss (§III-F2) and as the
//! community detector underlying the NMI/ARI evaluation (§IV-A). Louvain
//! alternates a local-moving phase that greedily maximizes modularity with a
//! graph-aggregation phase, producing one partition per hierarchy level in
//! `O(m + n)` per pass.

use crate::modularity::modularity;
use crate::Partition;
use cpgan_graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Weighted multigraph used between aggregation rounds.
struct LevelGraph {
    n: usize,
    /// Adjacency: for each node, (neighbor, weight) with no self entries.
    adj: Vec<Vec<(usize, f64)>>,
    /// Self-loop weight per node (full loop weight, counted once).
    self_w: Vec<f64>,
    /// Total edge weight `W` (each undirected edge once, self-loops once).
    total_w: f64,
}

impl LevelGraph {
    fn from_graph(g: &Graph) -> Self {
        let mut adj = vec![Vec::new(); g.n()];
        for &(u, v) in g.edges() {
            adj[u as usize].push((v as usize, 1.0));
            adj[v as usize].push((u as usize, 1.0));
        }
        LevelGraph {
            n: g.n(),
            adj,
            self_w: vec![0.0; g.n()],
            total_w: g.m() as f64,
        }
    }

    /// Weighted degree of node `i` (self-loops count twice, as in modularity).
    fn degree(&self, i: usize) -> f64 {
        self.adj[i].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self.self_w[i]
    }
}

/// One local-moving phase. Returns the node->community assignment (compact)
/// and whether any node moved.
fn local_moving(lg: &LevelGraph, rng: &mut StdRng) -> (Vec<usize>, bool) {
    let _span = cpgan_obs::span("community.local_moving");
    let n = lg.n;
    let two_w = 2.0 * lg.total_w;
    let mut comm: Vec<usize> = (0..n).collect();
    let mut sum_tot: Vec<f64> = (0..n).map(|i| lg.degree(i)).collect();
    let k: Vec<f64> = sum_tot.clone();

    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    let mut improved_ever = false;
    // weights_to[c] = total edge weight from the current node into community c.
    let mut weights_to: Vec<f64> = vec![0.0; n];
    let mut touched: Vec<usize> = Vec::new();
    loop {
        cpgan_obs::counter_add("community.local_move_passes", 1);
        let mut moved = false;
        for &i in &order {
            let ci = comm[i];
            // Collect neighbor-community weights.
            for &(j, w) in &lg.adj[i] {
                let cj = comm[j];
                if weights_to[cj] == 0.0 {
                    touched.push(cj);
                }
                weights_to[cj] += w;
            }
            // Remove i from its community.
            sum_tot[ci] -= k[i];
            let base_gain = weights_to[ci] - k[i] * sum_tot[ci] / two_w;
            let mut best_c = ci;
            let mut best_gain = base_gain;
            for &c in &touched {
                if c == ci {
                    continue;
                }
                let gain = weights_to[c] - k[i] * sum_tot[c] / two_w;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_c = c;
                }
            }
            sum_tot[best_c] += k[i];
            if best_c != ci {
                comm[i] = best_c;
                moved = true;
                improved_ever = true;
            }
            for &c in &touched {
                weights_to[c] = 0.0;
            }
            touched.clear();
        }
        if !moved {
            break;
        }
    }
    (comm, improved_ever)
}

/// Aggregates `lg` by the assignment, producing the coarser graph.
fn aggregate(lg: &LevelGraph, comm: &[usize], k: usize) -> LevelGraph {
    let _span = cpgan_obs::span("community.aggregate");
    let mut self_w = vec![0.0f64; k];
    let mut maps: Vec<std::collections::HashMap<usize, f64>> =
        vec![std::collections::HashMap::new(); k];
    for i in 0..lg.n {
        let ci = comm[i];
        self_w[ci] += lg.self_w[i];
        for &(j, w) in &lg.adj[i] {
            let cj = comm[j];
            if ci == cj {
                // Each intra edge visited from both endpoints: half each.
                self_w[ci] += w / 2.0;
            } else {
                *maps[ci].entry(cj).or_insert(0.0) += w;
            }
        }
    }
    // HashMap iteration order is seeded per process; sort so the aggregated
    // graph (and thus local-move tie-breaking) is run-to-run deterministic.
    let adj: Vec<Vec<(usize, f64)>> = maps
        .into_iter()
        .map(|m| {
            let mut edges: Vec<(usize, f64)> = m.into_iter().collect();
            edges.sort_unstable_by_key(|&(c, _)| c);
            edges
        })
        .collect();
    let total_w = self_w.iter().sum::<f64>()
        + adj
            .iter()
            .flat_map(|v| v.iter().map(|&(_, w)| w))
            .sum::<f64>()
            / 2.0;
    LevelGraph {
        n: k,
        adj,
        self_w,
        total_w,
    }
}

/// Runs Louvain and returns **all hierarchy levels**, finest first, each
/// expressed over the original nodes. The last entry is the final (highest
/// modularity) partition. Deterministic for a given `(g, seed)`.
pub fn louvain_hierarchy(g: &Graph, seed: u64) -> Vec<Partition> {
    let _span = cpgan_obs::span("community.louvain");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut levels: Vec<Partition> = Vec::new();
    if g.n() == 0 {
        return levels;
    }
    if g.m() == 0 {
        return vec![Partition::singletons(g.n())];
    }
    let mut lg = LevelGraph::from_graph(g);
    let mut current = Partition::singletons(g.n());
    loop {
        let _level_span = cpgan_obs::span("community.level");
        cpgan_obs::counter_add("community.levels", 1);
        let (comm, improved) = local_moving(&lg, &mut rng);
        let level = Partition::from_labels(&comm);
        let composed = current.compose(level.labels());
        if !improved {
            if levels.is_empty() {
                levels.push(composed);
            }
            break;
        }
        levels.push(composed.clone());
        let k = level.community_count();
        if k == lg.n {
            break;
        }
        lg = aggregate(&lg, level.labels(), k);
        current = composed;
    }
    levels
}

/// Runs Louvain and returns the final partition (coarsest level).
pub fn louvain(g: &Graph, seed: u64) -> Partition {
    louvain_hierarchy(g, seed)
        .pop()
        .unwrap_or_else(|| Partition::singletons(g.n()))
}

/// Convenience: final partition plus its modularity.
pub fn louvain_with_modularity(g: &Graph, seed: u64) -> (Partition, f64) {
    let p = louvain(g, seed);
    let q = modularity(g, p.labels());
    (p, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted(k: usize, size: usize, p_in_deg: usize) -> Graph {
        // Deterministic "cliquey" planted graph: k cliques of `size`, ring of
        // bridges between consecutive cliques.
        let n = k * size;
        let mut edges = Vec::new();
        for c in 0..k {
            let base = (c * size) as u32;
            for a in 0..size as u32 {
                for b in (a + 1)..size as u32 {
                    if ((a + b) as usize % size) < p_in_deg {
                        edges.push((base + a, base + b));
                    }
                }
            }
            let next = ((c + 1) % k * size) as u32;
            edges.push((base, next));
        }
        Graph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn two_triangles_detected() {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]).unwrap();
        let p = louvain(&g, 1);
        assert_eq!(p.community_count(), 2);
        assert_eq!(p.labels()[0], p.labels()[1]);
        assert_eq!(p.labels()[1], p.labels()[2]);
        assert_eq!(p.labels()[3], p.labels()[4]);
        assert_ne!(p.labels()[0], p.labels()[3]);
    }

    #[test]
    fn planted_cliques_recovered() {
        let g = planted(4, 8, 8);
        let p = louvain(&g, 7);
        assert_eq!(p.community_count(), 4);
        // Every clique is one community.
        for c in 0..4 {
            let l = p.labels()[c * 8];
            for v in 0..8 {
                assert_eq!(p.labels()[c * 8 + v], l);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = planted(3, 6, 6);
        assert_eq!(louvain(&g, 9).labels(), louvain(&g, 9).labels());
    }

    #[test]
    fn modularity_nonnegative_on_structured_graph() {
        let g = planted(4, 8, 8);
        let (_, q) = louvain_with_modularity(&g, 3);
        assert!(q > 0.4, "modularity {q}");
    }

    #[test]
    fn hierarchy_is_nested_coarsening() {
        let g = planted(6, 6, 6);
        let levels = louvain_hierarchy(&g, 5);
        assert!(!levels.is_empty());
        for w in levels.windows(2) {
            assert!(w[0].community_count() >= w[1].community_count());
            // Coarser level must refine-respect the finer: nodes together at
            // a finer level stay together later.
            let fine = w[0].labels();
            let coarse = w[1].labels();
            let mut map = std::collections::HashMap::new();
            for i in 0..fine.len() {
                let entry = map.entry(fine[i]).or_insert(coarse[i]);
                assert_eq!(*entry, coarse[i]);
            }
        }
    }

    #[test]
    fn edgeless_graph_singletons() {
        let g = Graph::from_edges(4, []).unwrap();
        let p = louvain(&g, 0);
        assert_eq!(p.community_count(), 4);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert!(louvain_hierarchy(&g, 0).is_empty());
        assert_eq!(louvain(&g, 0).len(), 0);
    }
}
