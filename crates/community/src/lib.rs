#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Community substrate for the CPGAN reproduction.
//!
//! Implements the Louvain community detection algorithm (used by the paper
//! both to obtain ground-truth hierarchical community labels, §III-F2, and to
//! evaluate community preservation, §IV-A), modularity `Q` (paper Eq. 20),
//! and the partition-similarity metrics Rand Index (Eq. 1), Adjusted Rand
//! Index (Eq. 2), Mutual Information (Eq. 3) and NMI.
//!
//! # Example
//!
//! ```
//! use cpgan_graph::Graph;
//! use cpgan_community::{louvain, metrics};
//!
//! // Two triangles joined by a single bridge: Louvain finds 2 communities.
//! let g = Graph::from_edges(6, [(0,1),(1,2),(2,0),(3,4),(4,5),(5,3),(2,3)]).unwrap();
//! let part = louvain::louvain(&g, 42);
//! assert_eq!(part.community_count(), 2);
//! let nmi = metrics::nmi(part.labels(), &[0, 0, 0, 1, 1, 1]);
//! assert!((nmi - 1.0).abs() < 1e-9);
//! ```

pub mod contingency;
pub mod label_propagation;
pub mod louvain;
pub mod metrics;
pub mod modularity;
pub mod partition;

pub use partition::Partition;
