//! Adam optimizer (Kingma & Ba), the workspace default — the paper trains
//! every learnable model with Adam at lr 0.001 (§IV-A).

use crate::optim::Optimizer;
use crate::params::ParamStore;
use crate::Matrix;
use std::collections::BTreeMap;

struct Moments {
    m: Matrix,
    v: Matrix,
}

/// Adam with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    // BTreeMap so any future iteration over optimizer state (checkpoint
    // serialization, telemetry) is deterministic by construction (§8).
    state: BTreeMap<usize, Moments>,
}

impl Adam {
    /// Creates Adam with custom hyper-parameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            state: BTreeMap::new(),
        }
    }

    /// Adam with the standard defaults `(beta1, beta2, eps) = (0.9, 0.999, 1e-8)`.
    pub fn with_lr(lr: f32) -> Self {
        Adam::new(lr, 0.9, 0.999, 1e-8)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &ParamStore) {
        let _span = cpgan_obs::span("nn.optim.adam_step");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for p in params.params() {
            let id = p.id();
            let mut data = p.lock();
            let (rows, cols) = data.value.shape();
            let moments = self.state.entry(id).or_insert_with(|| Moments {
                m: Matrix::zeros(rows, cols),
                v: Matrix::zeros(rows, cols),
            });
            let d = &mut *data;
            for i in 0..d.value.len() {
                let g = d.grad.as_slice()[i];
                let m = &mut moments.m.as_mut_slice()[i];
                let v = &mut moments.v.as_mut_slice()[i];
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                d.value.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            d.grad.fill_zero();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use crate::tape::Tape;
    use std::sync::Arc;

    #[test]
    fn minimizes_quadratic_fast() {
        let mut store = ParamStore::new();
        let p = store.register(Matrix::from_vec(1, 2, vec![3.0, -4.0]));
        let mut opt = Adam::with_lr(0.1);
        for _ in 0..200 {
            let t = Tape::new();
            let x = t.param(&p);
            x.mul(&x).sum_all().backward();
            opt.step(&store);
        }
        for &v in p.value().as_slice() {
            assert!(v.abs() < 1e-2, "failed to converge: {v}");
        }
    }

    #[test]
    fn fits_linear_regression() {
        // y = 2x - 1 over a few points; a Linear layer must recover it.
        use crate::layers::Linear;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(&mut store, &mut rng, 1, 1, true);
        let xs = Matrix::from_vec(8, 1, (0..8).map(|i| i as f32 / 4.0).collect());
        let ys = Arc::new(Matrix::from_vec(
            8,
            1,
            (0..8).map(|i| 2.0 * (i as f32 / 4.0) - 1.0).collect(),
        ));
        let mut opt = Adam::with_lr(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..500 {
            let t = Tape::new();
            let x = t.constant(xs.clone());
            let pred = layer.forward(&t, &x);
            let loss = pred.mse_mean(&ys);
            last = loss.item();
            loss.backward();
            opt.step(&store);
        }
        assert!(last < 1e-4, "final loss {last}");
    }

    #[test]
    fn learning_rate_mutable() {
        let mut opt = Adam::with_lr(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
        opt.set_learning_rate(0.0003);
        assert_eq!(opt.learning_rate(), 0.0003);
    }
}
