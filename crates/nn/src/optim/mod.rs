//! Optimizers.

mod adam;
mod sgd;

pub use adam::Adam;
pub use sgd::Sgd;

use crate::params::ParamStore;

/// A first-order optimizer over a [`ParamStore`].
pub trait Optimizer {
    /// Applies one update step from the accumulated gradients, then zeroes
    /// them.
    fn step(&mut self, params: &ParamStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by decay schedules; the paper's
    /// training protocol decays by 0.3 every 400 epochs, §IV-B).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Multiplicative step-decay schedule: `lr = lr0 * decay^(epoch / every)`.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Initial learning rate.
    pub lr0: f32,
    /// Multiplicative factor per period.
    pub decay: f32,
    /// Period length in epochs.
    pub every: usize,
}

impl StepDecay {
    /// Learning rate at `epoch`.
    pub fn at(&self, epoch: usize) -> f32 {
        self.lr0 * self.decay.powi((epoch / self.every.max(1)) as i32)
    }
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn decay_schedule() {
        let s = StepDecay {
            lr0: 0.001,
            decay: 0.3,
            every: 400,
        };
        assert_eq!(s.at(0), 0.001);
        assert_eq!(s.at(399), 0.001);
        assert!((s.at(400) - 0.0003).abs() < 1e-9);
        assert!((s.at(800) - 0.00009).abs() < 1e-9);
    }
}
