//! Stochastic gradient descent with optional momentum.

use crate::optim::Optimizer;
use crate::params::ParamStore;
use crate::Matrix;
use std::collections::BTreeMap;

/// Plain SGD: `theta -= lr * g`, optionally with momentum `v = mu v + g`.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    // BTreeMap so any future iteration over optimizer state (checkpoint
    // serialization, telemetry) is deterministic by construction (§8).
    velocity: BTreeMap<usize, Matrix>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum (`0` disables).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: BTreeMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &ParamStore) {
        let _span = cpgan_obs::span("nn.optim.sgd_step");
        for p in params.params() {
            let id = p.id();
            let mut data = p.lock();
            if self.momentum > 0.0 {
                let momentum = self.momentum;
                let lr = self.lr;
                let v = self
                    .velocity
                    .entry(id)
                    .or_insert_with(|| Matrix::zeros(data.value.rows(), data.value.cols()));
                for (vi, &gi) in v.as_mut_slice().iter_mut().zip(data.grad.as_slice()) {
                    *vi = momentum * *vi + gi;
                }
                for (t, &vi) in data.value.as_mut_slice().iter_mut().zip(v.as_slice()) {
                    *t -= lr * vi;
                }
            } else {
                let lr = self.lr;
                let (value, grad) = {
                    let d = &mut *data;
                    (&mut d.value, &d.grad)
                };
                for (t, &gi) in value.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                    *t -= lr * gi;
                }
            }
            data.grad.fill_zero();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use crate::tape::Tape;

    #[test]
    fn minimizes_quadratic() {
        let mut store = ParamStore::new();
        let p = store.register(Matrix::scalar(5.0));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            let t = Tape::new();
            let x = t.param(&p);
            x.mul(&x).sum_all().backward();
            opt.step(&store);
        }
        assert!(p.value().item().abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let mut store = ParamStore::new();
            let p = store.register(Matrix::scalar(5.0));
            let mut opt = Sgd::new(0.01, momentum);
            for _ in 0..50 {
                let t = Tape::new();
                let x = t.param(&p);
                x.mul(&x).sum_all().backward();
                opt.step(&store);
            }
            p.value().item().abs()
        };
        assert!(run(0.9) < run(0.0));
    }
}
