//! Typed errors for tensor and autodiff operations.
//!
//! Every shape-checked operation in this crate has a fallible `try_*` entry
//! point returning [`NnError`]; the original panicking methods are thin
//! wrappers over them. Callers that can recover (model construction,
//! deserialized inputs) use the `try_*` forms; hot inner loops keep the
//! panicking forms, whose failure is always a programming error.

use std::fmt;

/// A shape mismatch between tensor operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Operation that rejected the operands (e.g. `"matmul"`).
    pub op: &'static str,
    /// What the operation required, in human-readable form.
    pub expected: String,
    /// What it was given.
    pub got: String,
}

impl ShapeError {
    /// Builds a shape error for `op`.
    pub fn new(op: &'static str, expected: impl Into<String>, got: impl Into<String>) -> Self {
        ShapeError {
            op,
            expected: expected.into(),
            got: got.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shape mismatch: expected {}, got {}",
            self.op, self.expected, self.got
        )
    }
}

impl std::error::Error for ShapeError {}

/// Errors produced by `cpgan-nn` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Operand shapes are incompatible.
    Shape(ShapeError),
    /// Two [`crate::Var`]s from different tapes were combined.
    TapeMismatch {
        /// Operation that was attempted across tapes.
        op: &'static str,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Shape(e) => e.fmt(f),
            NnError::TapeMismatch { op } => {
                write!(f, "{op}: variables belong to different tapes")
            }
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Shape(e) => Some(e),
            NnError::TapeMismatch { .. } => None,
        }
    }
}

impl From<ShapeError> for NnError {
    fn from(e: ShapeError) -> Self {
        NnError::Shape(e)
    }
}

/// The one sanctioned panic site for the panicking wrapper APIs: keeps the
/// cold path out of inlined op bodies and concentrates the lint exemption.
#[cold]
#[inline(never)]
#[allow(clippy::panic)]
pub(crate) fn nn_panic(err: NnError) -> ! {
    panic!("{err}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_error_message_names_op_and_shapes() {
        let e = ShapeError::new("matmul", "lhs.cols == rhs.rows", "(2, 3) x (4, 5)");
        let msg = e.to_string();
        assert!(msg.contains("matmul shape mismatch"), "{msg}");
        assert!(msg.contains("(2, 3) x (4, 5)"), "{msg}");
    }

    #[test]
    fn tape_mismatch_message() {
        let e = NnError::TapeMismatch { op: "add" };
        assert!(e.to_string().contains("different tapes"));
    }

    #[test]
    fn error_source_chain() {
        use std::error::Error as _;
        let e: NnError = ShapeError::new("zip", "equal shapes", "(1, 1) vs (2, 2)").into();
        assert!(e.source().is_some());
        assert!(NnError::TapeMismatch { op: "mul" }.source().is_none());
    }
}
