//! Tensor memory accounting and the workspace buffer pool.
//!
//! # Accounting
//!
//! The paper's Table IX reports *peak GPU memory during training*. This
//! reproduction runs on CPU, so we track the same quantity — the live byte
//! footprint of tensor allocations — with global atomic counters updated by
//! every [`crate::Matrix`] allocation and drop. Experiments call
//! [`reset_peak`] before a training run and [`peak_bytes`] after, and may set
//! a budget with [`set_budget`] so that over-budget models report "OOM"
//! exactly like the paper's 24 GB GPU does.
//!
//! # Buffer pool
//!
//! Tape-based training allocates a fresh buffer for every forward/backward
//! op and drops the whole arena each step — a perfect recycling workload.
//! The pool is a **size-bucketed free list**: when a [`crate::Matrix`]
//! drops, its buffer is checked in under its element count; the next
//! same-sized allocation checks it out instead of hitting the allocator.
//! Free lists are **thread-local** (no locks; the tape runs on one thread,
//! so the hot path is uncontended and its hit/miss sequence deterministic).
//!
//! The pool's interaction with the accounting is deliberate (DESIGN.md §10):
//! a checked-in (idle) buffer is **not** live — [`on_dealloc`] runs before
//! check-in and [`on_alloc`] after check-out — so pooled-but-idle bytes
//! never inflate `live_bytes`/`peak_bytes` and Table IX stays honest. Idle
//! bytes are observable separately via [`pool_idle_bytes`].
//!
//! Enabled by default; `CPGAN_POOL=0` or [`set_pool_enabled`]`(false)`
//! disables it (every allocation then counts as a [`pool_misses`] miss,
//! which is how the pooled-vs-unpooled allocation benchmark measures).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static BUDGET: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Registers an allocation of `bytes`.
#[inline]
pub fn on_alloc(bytes: usize) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

/// Registers a deallocation of `bytes`.
#[inline]
pub fn on_dealloc(bytes: usize) {
    LIVE.fetch_sub(bytes, Ordering::Relaxed);
}

/// Currently live tensor bytes (idle pooled buffers excluded).
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live tensor bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live footprint.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Sets the simulated device budget in bytes (`usize::MAX` = unlimited).
pub fn set_budget(bytes: usize) {
    BUDGET.store(bytes, Ordering::Relaxed);
}

/// The configured budget in bytes.
pub fn budget() -> usize {
    BUDGET.load(Ordering::Relaxed)
}

/// Whether the peak footprint has exceeded the configured budget — the
/// reproduction's "OOM" signal for Tables III/IV/VII–IX.
pub fn over_budget() -> bool {
    peak_bytes() > budget()
}

// ---------------------------------------------------------------------------
// Buffer pool
// ---------------------------------------------------------------------------

/// Max buffers retained per size bucket (per thread).
const POOL_BUCKET_CAP: usize = 8;
/// Max idle bytes retained per thread before check-ins fall through to the
/// allocator.
const POOL_IDLE_CAP_BYTES: usize = 256 << 20;

/// Tri-state pool flag: 0 = unresolved, 1 = off, 2 = on.
static POOL_ENABLED: AtomicU8 = AtomicU8::new(0);
/// Allocations served from a free list.
static POOL_HITS: AtomicU64 = AtomicU64::new(0);
/// Allocations that went to the allocator (includes all allocations while
/// the pool is disabled).
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);
/// Idle bytes currently parked in free lists (all threads).
static POOL_IDLE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's free lists, keyed by buffer element count.
    static FREE_LISTS: RefCell<HashMap<usize, Vec<Vec<f32>>>> =
        RefCell::new(HashMap::new());
    /// This thread's share of [`POOL_IDLE`], for the per-thread cap.
    static IDLE_LOCAL: RefCell<usize> = const { RefCell::new(0) };
}

/// Whether the buffer pool is on (default: yes; `CPGAN_POOL=0` disables).
#[inline]
pub fn pool_enabled() -> bool {
    match POOL_ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => resolve_pool_enabled(),
    }
}

/// First-call resolution from the `CPGAN_POOL` environment variable.
#[cold]
fn resolve_pool_enabled() -> bool {
    let off = std::env::var("CPGAN_POOL")
        .map(|v| v.trim() == "0")
        .unwrap_or(false);
    POOL_ENABLED.store(if off { 1 } else { 2 }, Ordering::Relaxed);
    !off
}

/// Turns the pool on or off programmatically (wins over `CPGAN_POOL`).
/// Disabling does not drop already-idle buffers; call [`pool_clear`] too
/// when measuring a pool-free baseline.
pub fn set_pool_enabled(on: bool) {
    POOL_ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Allocations served from a free list since the last [`reset_pool_stats`].
pub fn pool_hits() -> u64 {
    POOL_HITS.load(Ordering::Relaxed)
}

/// Fresh heap allocations since the last [`reset_pool_stats`] (every tensor
/// allocation counts as a miss while the pool is disabled).
pub fn pool_misses() -> u64 {
    POOL_MISSES.load(Ordering::Relaxed)
}

/// Zeroes the hit/miss counters.
pub fn reset_pool_stats() {
    POOL_HITS.store(0, Ordering::Relaxed);
    POOL_MISSES.store(0, Ordering::Relaxed);
}

/// Bytes currently parked in free lists across all threads (not live).
pub fn pool_idle_bytes() -> usize {
    POOL_IDLE.load(Ordering::Relaxed)
}

/// Drops every idle buffer owned by the *calling thread's* free lists.
pub fn pool_clear() {
    FREE_LISTS.with(|fl| fl.borrow_mut().clear());
    IDLE_LOCAL.with(|b| {
        let mut b = b.borrow_mut();
        POOL_IDLE.fetch_sub(*b, Ordering::Relaxed);
        *b = 0;
    });
}

/// Checks a buffer of exactly `len` elements out of this thread's free
/// list. Returns `None` (a pool miss) when the pool is off, the bucket is
/// empty, or the thread-local storage is gone (thread teardown). Contents
/// of a returned buffer are arbitrary. Counts the hit/miss either way.
fn take_buffer(len: usize) -> Option<Vec<f32>> {
    let took = if pool_enabled() && len > 0 {
        FREE_LISTS
            .try_with(|fl| fl.borrow_mut().get_mut(&len).and_then(Vec::pop))
            .ok()
            .flatten()
    } else {
        None
    };
    match took {
        Some(buf) => {
            POOL_HITS.fetch_add(1, Ordering::Relaxed);
            cpgan_obs::counter_add("nn.pool.hit", 1);
            let bytes = len * std::mem::size_of::<f32>();
            POOL_IDLE.fetch_sub(bytes, Ordering::Relaxed);
            let _ = IDLE_LOCAL.try_with(|b| *b.borrow_mut() -= bytes);
            Some(buf)
        }
        None => {
            POOL_MISSES.fetch_add(1, Ordering::Relaxed);
            cpgan_obs::counter_add("nn.pool.miss", 1);
            None
        }
    }
}

/// Checks `buf` into this thread's free list, unless the pool is off, the
/// bucket is full, or the per-thread idle cap would be exceeded (then the
/// buffer just drops). Call [`on_dealloc`] *before* this: idle pooled bytes
/// are not live.
pub(crate) fn recycle_buffer(buf: Vec<f32>) {
    let len = buf.len();
    let bytes = len * std::mem::size_of::<f32>();
    if !pool_enabled() || len == 0 {
        return;
    }
    let over_cap = IDLE_LOCAL
        .try_with(|b| *b.borrow() + bytes > POOL_IDLE_CAP_BYTES)
        .unwrap_or(true);
    if over_cap {
        return;
    }
    let kept = FREE_LISTS
        .try_with(|fl| {
            let mut fl = fl.borrow_mut();
            let bucket = fl.entry(len).or_default();
            if bucket.len() < POOL_BUCKET_CAP {
                bucket.push(buf);
                true
            } else {
                false
            }
        })
        .unwrap_or(false);
    if kept {
        POOL_IDLE.fetch_add(bytes, Ordering::Relaxed);
        let _ = IDLE_LOCAL.try_with(|b| *b.borrow_mut() += bytes);
        cpgan_obs::gauge_set("nn.pool.idle_bytes", pool_idle_bytes() as f64);
    }
}

/// A `len`-element buffer with arbitrary contents (pooled) or zeroed
/// (fresh). For outputs every element of which the caller overwrites.
/// Registers the allocation with the accounting.
pub(crate) fn buffer_uninit(len: usize) -> Vec<f32> {
    on_alloc(len * std::mem::size_of::<f32>());
    take_buffer(len).unwrap_or_else(|| vec![0.0; len])
}

/// A zeroed `len`-element buffer. Registers the allocation.
pub(crate) fn buffer_filled(len: usize, value: f32) -> Vec<f32> {
    on_alloc(len * std::mem::size_of::<f32>());
    match take_buffer(len) {
        Some(mut buf) => {
            buf.fill(value);
            buf
        }
        None => vec![value; len],
    }
}

/// A pooled (or fresh) copy of `src`. Registers the allocation.
pub(crate) fn buffer_copied(src: &[f32]) -> Vec<f32> {
    on_alloc(std::mem::size_of_val(src));
    match take_buffer(src.len()) {
        Some(mut buf) => {
            buf.copy_from_slice(src);
            buf
        }
        None => src.to_vec(),
    }
}

/// Releases a matrix buffer: unregisters it from the accounting, then
/// offers it to the pool.
pub(crate) fn release_buffer(buf: Vec<f32>) {
    on_dealloc(buf.len() * std::mem::size_of::<f32>());
    recycle_buffer(buf);
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn tracks_alloc_and_peak() {
        // Other tests may allocate concurrently, so assert deltas only.
        reset_peak();
        let before = live_bytes();
        let m = Matrix::zeros(64, 64);
        assert!(live_bytes() >= before + 64 * 64 * 4);
        assert!(peak_bytes() >= before + 64 * 64 * 4);
        drop(m);
        assert!(live_bytes() <= peak_bytes());
    }

    #[test]
    fn budget_signalling() {
        let old = budget();
        set_budget(usize::MAX);
        assert!(!over_budget());
        set_budget(old);
    }

    #[test]
    fn pooled_buffers_round_trip_on_one_thread() {
        // A dedicated odd size no other test uses, so this thread's bucket
        // is fully under our control (free lists are thread-local).
        let before_idle = pool_idle_bytes();
        let m = Matrix::zeros(977, 3);
        drop(m); // checked in (pool is on by default)
        if pool_enabled() {
            assert!(pool_idle_bytes() >= before_idle);
            let hits_before = pool_hits();
            let m2 = Matrix::zeros(977, 3);
            assert!(pool_hits() > hits_before, "re-allocation must hit the pool");
            assert!(m2.as_slice().iter().all(|&v| v == 0.0));
            drop(m2);
        }
        pool_clear();
    }
}
