//! Tensor memory accounting.
//!
//! The paper's Table IX reports *peak GPU memory during training*. This
//! reproduction runs on CPU, so we track the same quantity — the live byte
//! footprint of tensor allocations — with global atomic counters updated by
//! every [`crate::Matrix`] allocation and drop. Experiments call
//! [`reset_peak`] before a training run and [`peak_bytes`] after, and may set
//! a budget with [`set_budget`] so that over-budget models report "OOM"
//! exactly like the paper's 24 GB GPU does.

use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static BUDGET: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Registers an allocation of `bytes`.
#[inline]
pub fn on_alloc(bytes: usize) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

/// Registers a deallocation of `bytes`.
#[inline]
pub fn on_dealloc(bytes: usize) {
    LIVE.fetch_sub(bytes, Ordering::Relaxed);
}

/// Currently live tensor bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live tensor bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live footprint.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Sets the simulated device budget in bytes (`usize::MAX` = unlimited).
pub fn set_budget(bytes: usize) {
    BUDGET.store(bytes, Ordering::Relaxed);
}

/// The configured budget in bytes.
pub fn budget() -> usize {
    BUDGET.load(Ordering::Relaxed)
}

/// Whether the peak footprint has exceeded the configured budget — the
/// reproduction's "OOM" signal for Tables III/IV/VII–IX.
pub fn over_budget() -> bool {
    peak_bytes() > budget()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn tracks_alloc_and_peak() {
        // Other tests may allocate concurrently, so assert deltas only.
        reset_peak();
        let before = live_bytes();
        let m = Matrix::zeros(64, 64);
        assert!(live_bytes() >= before + 64 * 64 * 4);
        assert!(peak_bytes() >= before + 64 * 64 * 4);
        drop(m);
        assert!(live_bytes() <= peak_bytes());
    }

    #[test]
    fn budget_signalling() {
        let old = budget();
        set_budget(usize::MAX);
        assert!(!over_budget());
        set_budget(old);
    }
}
