//! Weight initialization.

use crate::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The default for linear and GCN
/// weights throughout the workspace.
pub fn xavier_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..a))
}

/// He/Kaiming uniform initialization for ReLU networks:
/// `U(-a, a)` with `a = sqrt(6 / fan_in)`.
pub fn he_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / fan_in as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..a))
}

/// Standard normal matrix (used for VAE prior samples and noise inputs).
pub fn standard_normal<R: Rng>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    use rand_distr::{Distribution, StandardNormal};
    Matrix::from_fn(rows, cols, |_, _| StandardNormal.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(&mut rng, 64, 32);
        let a = (6.0f32 / 96.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v > -a && v < a));
        assert_eq!(w.shape(), (64, 32));
    }

    #[test]
    fn normal_has_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = standard_normal(&mut rng, 100, 100);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / 10_000.0;
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
