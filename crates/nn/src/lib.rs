#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Deep-learning substrate for the CPGAN reproduction.
//!
//! The paper's models are built on PyTorch + CUDA; this crate replaces that
//! stack with a self-contained CPU implementation:
//!
//! * [`Matrix`] — dense row-major `f32` tensors with allocation accounting
//!   and pooled buffers ([`memory`]),
//! * [`kernels`] — cache-blocked, register-tiled dense matmul microkernels,
//! * [`sparse::Csr`] — sparse graph operators for `O(m + n)` convolutions,
//! * [`tape::Tape`] / [`tape::Var`] — reverse-mode automatic differentiation,
//! * [`layers`] — `Linear`, `Mlp`, `GcnConv` (Eq. 6), `GruCell` (Eq. 13),
//!   `PairNorm` (§III-C2),
//! * [`optim`] — SGD and Adam with the paper's step-decay schedule,
//! * [`loss`] — GAN and VAE losses (Eq. 16–19),
//! * [`memory`] — peak tensor-memory tracking standing in for the paper's
//!   "peak GPU memory" measurements (Table IX).
//!
//! # Example: fitting a tiny network
//!
//! ```
//! use cpgan_nn::{layers::{Mlp, Activation}, optim::{Adam, Optimizer}, ParamStore, Tape, Matrix};
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::sync::Arc;
//!
//! let mut store = ParamStore::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let mlp = Mlp::new(&mut store, &mut rng, &[2, 8, 1], Activation::Tanh);
//! let x = Matrix::from_vec(4, 2, vec![0.,0., 0.,1., 1.,0., 1.,1.]);
//! let y = Arc::new(Matrix::from_vec(4, 1, vec![0., 1., 1., 0.])); // XOR
//! let mut opt = Adam::with_lr(0.05);
//! let mut loss_val = f32::INFINITY;
//! for _ in 0..800 {
//!     let tape = Tape::new();
//!     let input = tape.constant(x.clone());
//!     let pred = mlp.forward(&tape, &input).sigmoid();
//!     let loss = pred.mse_mean(&y);
//!     loss_val = loss.item();
//!     loss.backward();
//!     opt.step(&store);
//! }
//! assert!(loss_val < 0.05, "XOR not learned: {loss_val}");
//! ```

pub mod error;
pub mod init;
pub mod kernels;
pub mod layers;
pub mod loss;
mod matrix;
pub mod memory;
pub mod optim;
mod params;
pub mod sparse;
pub mod tape;

pub use error::{NnError, ShapeError};
pub use kernels::FusedAct;
pub use matrix::Matrix;
pub use params::{Param, ParamData, ParamStore};
pub use sparse::{BlockDiagCsr, Csr};
pub use tape::{Tape, Var};
