//! Graph convolution (paper Eq. 6).

use crate::kernels::FusedAct;
use crate::layers::Linear;
use crate::params::ParamStore;
use crate::sparse::{BlockDiagCsr, Csr};
use crate::tape::{Tape, Var};
use rand::Rng;
use std::sync::Arc;

/// A graph convolution layer `Z = Â X W` where `Â` is a normalized adjacency
/// operator supplied per forward call (sparse for the input graph, dense
/// variable for pooled graphs).
#[derive(Debug, Clone)]
pub struct GcnConv {
    linear: Linear,
}

impl GcnConv {
    /// Creates the layer (no bias, following Kipf & Welling's formulation
    /// used in the paper).
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, fan_in: usize, fan_out: usize) -> Self {
        GcnConv {
            linear: Linear::new(store, rng, fan_in, fan_out, false),
        }
    }

    /// Creates the layer with a bias row, applied inside the fused
    /// spmm+bias+activation op: `act(Â (X W) + b)`.
    pub fn new_with_bias<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        fan_in: usize,
        fan_out: usize,
    ) -> Self {
        GcnConv {
            linear: Linear::new(store, rng, fan_in, fan_out, true),
        }
    }

    /// Forward with a *constant sparse* operator (the input graph's
    /// `D̃^{-1/2} Ã D̃^{-1/2}`): `Â (X W)`. The activation is applied by the
    /// caller.
    pub fn forward_sparse(&self, tape: &Tape, adj: &Arc<Csr>, x: &Var) -> Var {
        self.linear.forward(tape, x).spmm(adj)
    }

    /// Forward with a *dense variable* operator (coarsened adjacencies from
    /// DiffPool are differentiable): `Â (X W)`.
    pub fn forward_dense(&self, tape: &Tape, adj: &Var, x: &Var) -> Var {
        adj.matmul(&self.linear.forward(tape, x))
    }

    /// Fused forward with a constant sparse operator:
    /// `act(Â (X W) + b)` as one spmm+bias+activation tape node —
    /// bit-identical to `forward_sparse(..)` followed by the bias add and
    /// activation, in one pass over the output.
    pub fn forward_sparse_fused(&self, tape: &Tape, adj: &Arc<Csr>, x: &Var, act: FusedAct) -> Var {
        let h = self.linear.forward_weight(tape, x);
        let bias = self.linear.bias().map(|b| tape.param(b));
        h.spmm_bias_act(adj, bias.as_ref(), act)
    }

    /// Fused forward over a whole batch of subgraphs packed block-diagonally:
    /// one kernel call covers every block (see [`BlockDiagCsr`]).
    pub fn forward_batched(
        &self,
        tape: &Tape,
        batch: &BlockDiagCsr,
        x: &Var,
        act: FusedAct,
    ) -> Var {
        let h = self.linear.forward_weight(tape, x);
        let bias = self.linear.bias().map(|b| tape.param(b));
        h.spmm_bias_act_batched(batch, bias.as_ref(), act)
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.linear.fan_out()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use cpgan_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sparse_and_dense_paths_agree() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let adj = Arc::new(Csr::normalized_adjacency(&g));
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = GcnConv::new(&mut store, &mut rng, 3, 2);

        let tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.5));
        let sparse_out = conv.forward_sparse(&tape, &adj, &x).value();

        // Dense adjacency as a constant Var.
        let mut dense = Matrix::zeros(4, 4);
        for r in 0..4 {
            for (c, v) in adj.row_iter(r) {
                dense.set(r, c as usize, v);
            }
        }
        let adj_var = tape.constant(dense);
        let dense_out = conv.forward_dense(&tape, &adj_var, &x).value();

        for (a, b) in sparse_out.as_slice().iter().zip(dense_out.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn message_passing_mixes_neighbors() {
        // One-hot features: after a GCN layer, connected nodes share signal.
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let adj = Arc::new(Csr::normalized_adjacency(&g));
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = GcnConv::new(&mut store, &mut rng, 3, 3);
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(3, 3, |r, c| (r == c) as u8 as f32));
        let out = conv.forward_sparse(&tape, &adj, &x).value();
        // Node 2 is isolated: its output must differ from node 0's, which has
        // a neighbor contribution.
        assert!(out.row(0) != out.row(2));
    }
}
