//! Gated recurrent unit cell (paper Eq. 13).

use crate::layers::Linear;
use crate::params::ParamStore;
use crate::tape::{Tape, Var};
use rand::Rng;

/// A GRU cell over row-batched states: given input `x` (`n x d_in`) and
/// hidden `h` (`n x d_h`), produces the next hidden state.
///
/// `z = sigma(x Wz + h Uz + bz)`,
/// `r = sigma(x Wr + h Ur + br)`,
/// `h~ = tanh(x Wh + (r . h) Uh + bh)`,
/// `h' = (1 - z) . h + z . h~`.
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: Linear,
    uz: Linear,
    wr: Linear,
    ur: Linear,
    wh: Linear,
    uh: Linear,
    hidden: usize,
}

impl GruCell {
    /// Creates the cell; `W*` carry the biases, `U*` are bias-free.
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, d_in: usize, d_hidden: usize) -> Self {
        GruCell {
            wz: Linear::new(store, rng, d_in, d_hidden, true),
            uz: Linear::new(store, rng, d_hidden, d_hidden, false),
            wr: Linear::new(store, rng, d_in, d_hidden, true),
            ur: Linear::new(store, rng, d_hidden, d_hidden, false),
            wh: Linear::new(store, rng, d_in, d_hidden, true),
            uh: Linear::new(store, rng, d_hidden, d_hidden, false),
            hidden: d_hidden,
        }
    }

    /// One step.
    pub fn forward(&self, tape: &Tape, x: &Var, h: &Var) -> Var {
        let z = self
            .wz
            .forward(tape, x)
            .add(&self.uz.forward(tape, h))
            .sigmoid();
        let r = self
            .wr
            .forward(tape, x)
            .add(&self.ur.forward(tape, h))
            .sigmoid();
        let h_cand = self
            .wh
            .forward(tape, x)
            .add(&self.uh.forward(tape, &r.mul(h)))
            .tanh();
        // (1 - z) . h + z . h~  ==  h + z . (h~ - h).
        h.add(&z.mul(&h_cand.sub(h)))
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cell = GruCell::new(&mut store, &mut rng, 4, 6);
        let tape = Tape::new();
        let x = tape.constant(Matrix::zeros(3, 4));
        let h = tape.constant(Matrix::zeros(3, 6));
        assert_eq!(cell.forward(&tape, &x, &h).shape(), (3, 6));
        assert_eq!(cell.hidden_size(), 6);
    }

    #[test]
    fn state_in_tanh_range_after_steps() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = GruCell::new(&mut store, &mut rng, 2, 3);
        let tape = Tape::new();
        let mut h = tape.constant(Matrix::zeros(2, 3));
        for step in 0..5 {
            let x = tape.constant(Matrix::from_fn(2, 2, |r, c| (r + c + step) as f32));
            h = cell.forward(&tape, &x, &h);
        }
        for &v in h.value().as_slice() {
            assert!(v.abs() <= 1.0 + 1e-5, "state escaped tanh range: {v}");
        }
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let cell = GruCell::new(&mut store, &mut rng, 3, 3);
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(2, 3, |r, c| 0.3 * (r as f32 - c as f32)));
        let h0 = tape.constant(Matrix::from_fn(2, 3, |_, c| 0.1 * c as f32));
        let h1 = cell.forward(&tape, &x, &h0);
        let h2 = cell.forward(&tape, &x, &h1);
        h2.sum_all().backward();
        for p in store.params() {
            assert!(
                p.lock().grad.frobenius_norm() > 0.0,
                "a GRU parameter received no gradient"
            );
        }
    }
}
