//! Fully-connected layer.

use crate::params::{Param, ParamStore};
use crate::tape::{Tape, Var};
use crate::{init, Matrix};
use rand::Rng;

/// `y = x W + b` (bias optional).
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
}

impl Linear {
    /// Creates a Xavier-initialized linear layer and registers its
    /// parameters in `store`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        fan_in: usize,
        fan_out: usize,
        bias: bool,
    ) -> Self {
        let weight = store.register(init::xavier_uniform(rng, fan_in, fan_out));
        let bias = bias.then(|| store.register(Matrix::zeros(1, fan_out)));
        Linear { weight, bias }
    }

    /// Forward pass on `tape`.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let w = tape.param(&self.weight);
        let y = x.matmul(&w);
        match &self.bias {
            Some(b) => y.add_row_broadcast(&tape.param(b)),
            None => y,
        }
    }

    /// `x W` only, leaving the bias (if any) for a fused downstream op to
    /// apply (see [`crate::Var::spmm_bias_act`]).
    pub fn forward_weight(&self, tape: &Tape, x: &Var) -> Var {
        x.matmul(&tape.param(&self.weight))
    }

    /// The bias parameter, if this layer has one.
    pub fn bias(&self) -> Option<&Param> {
        self.bias.as_ref()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.weight.shape().1
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.weight.shape().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_grad() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(&mut store, &mut rng, 3, 2, true);
        assert_eq!(store.params().len(), 2);
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(4, 3, |r, c| (r + c) as f32));
        let y = layer.forward(&tape, &x);
        assert_eq!(y.shape(), (4, 2));
        y.sum_all().backward();
        // Both weight and bias received gradients.
        for p in store.params() {
            assert!(p.lock().grad.frobenius_norm() > 0.0);
        }
    }

    #[test]
    fn no_bias_variant() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(&mut store, &mut rng, 5, 4, false);
        assert_eq!(store.params().len(), 1);
        assert_eq!(layer.fan_in(), 5);
        assert_eq!(layer.fan_out(), 4);
    }
}
