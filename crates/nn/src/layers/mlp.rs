//! Multi-layer perceptron.

use crate::layers::Linear;
use crate::params::ParamStore;
use crate::tape::{Tape, Var};
use rand::Rng;

/// Hidden-layer activation of an [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit (the paper's default, §III-C).
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    fn apply(self, v: &Var) -> Var {
        match self {
            Activation::Relu => v.relu(),
            Activation::Tanh => v.tanh(),
            Activation::Sigmoid => v.sigmoid(),
            Activation::Identity => v.clone(),
        }
    }
}

/// A stack of [`Linear`] layers with an activation between them (the final
/// layer's output is linear; apply an output nonlinearity at the call site).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP through the widths `dims = [in, h1, ..., out]`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        dims: &[usize],
        activation: Activation,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(store, rng, w[0], w[1], true))
            .collect();
        Mlp { layers, activation }
    }

    /// Forward pass: activation after every layer except the last.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, &h);
            if i + 1 < self.layers.len() {
                h = self.activation.apply(&h);
            }
        }
        h
    }

    /// Output width (0 for the degenerate zero-layer MLP, which
    /// [`Mlp::new`] never constructs).
    pub fn fan_out(&self) -> usize {
        self.layers.last().map_or(0, |l| l.fan_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_layer_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&mut store, &mut rng, &[4, 8, 2], Activation::Relu);
        assert_eq!(store.params().len(), 4); // 2 weights + 2 biases
        let tape = Tape::new();
        let x = tape.constant(Matrix::zeros(5, 4));
        assert_eq!(mlp.forward(&tape, &x).shape(), (5, 2));
        assert_eq!(mlp.fan_out(), 2);
    }

    #[test]
    fn gradients_flow_to_all_layers() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&mut store, &mut rng, &[3, 6, 6, 1], Activation::Tanh);
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 * 0.1));
        mlp.forward(&tape, &x).sum_all().backward();
        for p in store.params() {
            assert!(p.lock().grad.frobenius_norm() > 0.0, "dead gradient");
        }
    }
}
