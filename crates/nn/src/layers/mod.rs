//! Neural layers used by CPGAN and the learning-based baselines.

mod gcn;
mod gru;
mod linear;
mod mlp;
mod pairnorm;

pub use gcn::GcnConv;
pub use gru::GruCell;
pub use linear::Linear;
pub use mlp::{Activation, Mlp};
pub use pairnorm::PairNorm;
