//! PairNorm (Zhao & Akoglu, ICLR 2020), the paper's anti-over-smoothing
//! trick applied after every GCN in the ladder encoder (§III-C2).

use crate::tape::{Tape, Var};

/// PairNorm in "scale-individually" mode: center the feature matrix
/// column-wise, then rescale every row to L2 norm `s`.
#[derive(Debug, Clone, Copy)]
pub struct PairNorm {
    /// Target row norm (the PairNorm paper's `s`, default 1).
    pub scale: f32,
}

impl Default for PairNorm {
    fn default() -> Self {
        PairNorm { scale: 1.0 }
    }
}

impl PairNorm {
    /// Creates a PairNorm with the given scale.
    pub fn new(scale: f32) -> Self {
        PairNorm { scale }
    }

    /// Applies PairNorm to an `n x d` variable.
    pub fn forward(&self, _tape: &Tape, x: &Var) -> Var {
        let n = x.shape().0;
        let centered = x.sub(&x.mean_rows().broadcast_row(n));
        centered.row_l2_normalize(self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matrix, Param};

    #[test]
    fn rows_have_unit_norm_and_columns_centered() {
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32));
        let y = PairNorm::default().forward(&tape, &x).value();
        for r in 0..4 {
            let norm: f32 = y.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5, "row {r} norm {norm}");
        }
    }

    #[test]
    fn differentiable() {
        let tape = Tape::new();
        let p = Param::new(Matrix::from_fn(3, 2, |r, c| (r + c) as f32 + 0.5));
        let x = tape.param(&p);
        PairNorm::new(2.0).forward(&tape, &x).sum_all().backward();
        assert!(p.lock().grad.as_slice().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn scale_respected() {
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32));
        let y = PairNorm::new(3.0).forward(&tape, &x).value();
        for r in 0..2 {
            let norm: f32 = y.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 3.0).abs() < 1e-4);
        }
    }
}
