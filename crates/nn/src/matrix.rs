//! Dense row-major `f32` matrices.
//!
//! All tensor data in the workspace flows through [`Matrix`]. Allocations are
//! registered with [`crate::memory`] so experiments can report peak tensor
//! memory (the reproduction's stand-in for the paper's "peak GPU memory",
//! Table IX).

use crate::memory;
use std::fmt;

/// A dense row-major `f32` matrix.
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Allocates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        memory::on_alloc(rows * cols * std::mem::size_of::<f32>());
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Allocates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        memory::on_alloc(rows * cols * std::mem::size_of::<f32>());
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wraps an existing buffer (`data.len()` must equal `rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        memory::on_alloc(data.len() * std::mem::size_of::<f32>());
        Matrix { rows, cols, data }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// A 1x1 matrix holding a scalar.
    pub fn scalar(v: f32) -> Self {
        Matrix::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a 1x1 matrix.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 matrix");
        self.data[0]
    }

    /// Matrix product `self * other` with a cache-friendly i-k-j loop.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (n, m) = (self.rows, other.cols);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * m..(i + 1) * m];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * m..(kk + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T * other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        for kk in 0..k {
            let a_row = self.row(kk);
            let b_row = other.row(kk);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * m..(i + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * other^T` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * m..(i + 1) * m];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        for v in out.data.iter_mut() {
            *v = f(*v);
        }
        out
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two same-shape matrices.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(&other.data) {
            *o = f(*o, b);
        }
        out
    }

    /// `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (o, &b) in self.data.iter_mut().zip(&other.data) {
            *o += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sets all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        memory::on_alloc(self.data.len() * std::mem::size_of::<f32>());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        memory::on_dealloc(self.data.len() * std::mem::size_of::<f32>());
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl serde::Serialize for Matrix {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut s = serializer.serialize_struct("Matrix", 3)?;
        s.serialize_field("rows", &self.rows)?;
        s.serialize_field("cols", &self.cols)?;
        s.serialize_field("data", &self.data)?;
        s.end()
    }
}

impl<'de> serde::Deserialize<'de> for Matrix {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Raw {
            rows: usize,
            cols: usize,
            data: Vec<f32>,
        }
        let raw = Raw::deserialize(deserializer)?;
        if raw.data.len() != raw.rows * raw.cols {
            return Err(serde::de::Error::custom(format!(
                "matrix buffer size {} does not match {}x{}",
                raw.data.len(),
                raw.rows,
                raw.cols
            )));
        }
        // Route through from_vec so the memory accounting stays consistent.
        Ok(Matrix::from_vec(raw.rows, raw.cols, raw.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        let expect = a.transpose().matmul(&b);
        assert_eq!(a.matmul_tn(&b), expect);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, vec![1., 0., 0., 0., 1., 0., 0., 0., 1., 1., 1., 1.]);
        let expect = a.matmul(&b.transpose());
        assert_eq!(a.matmul_nt(&b), expect);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn map_zip_axpy() {
        let a = Matrix::from_vec(1, 3, vec![1., -2., 3.]);
        let b = a.map(|v| v.abs());
        assert_eq!(b.as_slice(), &[1., 2., 3.]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.as_slice(), &[2., 0., 6.]);
        let mut d = a.clone();
        d.axpy(2.0, &b);
        assert_eq!(d.as_slice(), &[3., 2., 9.]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Matrix::scalar(2.5).item(), 2.5);
    }
}
