//! Dense row-major `f32` matrices.
//!
//! All tensor data in the workspace flows through [`Matrix`]. Allocations are
//! registered with [`crate::memory`] so experiments can report peak tensor
//! memory (the reproduction's stand-in for the paper's "peak GPU memory",
//! Table IX).

use crate::error::{nn_panic, NnError, ShapeError};
use crate::memory;
use cpgan_parallel::{par_chunks_mut, par_reduce};
use std::fmt;

/// Target number of `f32` elements per parallel chunk. Chunk boundaries
/// depend only on the matrix shape — never on the thread count — which is
/// what keeps every kernel bit-identical across `CPGAN_THREADS` settings
/// (see DESIGN.md §8).
const PAR_GRAIN: usize = 4096;

/// Fixed rows-per-chunk for a row-blocked kernel over `cols`-wide rows.
#[inline]
fn rows_per_chunk(cols: usize) -> usize {
    (PAR_GRAIN / cols.max(1)).max(1)
}

/// Runs `f(row_index, out_row)` over every row of `out`, in parallel over
/// fixed row blocks. Each row is written exactly once, so results are
/// independent of the thread count.
fn par_rows(out: &mut Matrix, f: impl Fn(usize, &mut [f32]) + Sync) {
    let cols = out.cols;
    if cols == 0 {
        return;
    }
    let block = rows_per_chunk(cols);
    par_chunks_mut(&mut out.data, block * cols, |ci, chunk| {
        for (local, row) in chunk.chunks_mut(cols).enumerate() {
            f(ci * block + local, row);
        }
    });
}

/// A dense row-major `f32` matrix.
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Allocates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        memory::on_alloc(rows * cols * std::mem::size_of::<f32>());
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Allocates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        memory::on_alloc(rows * cols * std::mem::size_of::<f32>());
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wraps an existing buffer (`data.len()` must equal `rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        Matrix::try_from_vec(rows, cols, data).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::from_vec`]: rejects a buffer whose length is not
    /// `rows * cols`.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, NnError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(
                "from_vec buffer",
                format!("{rows}x{cols} = {} elements", rows * cols),
                format!("{} elements", data.len()),
            )
            .into());
        }
        memory::on_alloc(data.len() * std::mem::size_of::<f32>());
        Ok(Matrix { rows, cols, data })
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// A 1x1 matrix holding a scalar.
    pub fn scalar(v: f32) -> Self {
        Matrix::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a 1x1 matrix.
    pub fn item(&self) -> f32 {
        self.try_item().unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::item`]: rejects non-1x1 matrices.
    pub fn try_item(&self) -> Result<f32, NnError> {
        if self.shape() != (1, 1) {
            return Err(ShapeError::new("item", "1x1", format!("{:?}", self.shape())).into());
        }
        Ok(self.data[0])
    }

    /// Matrix product `self * other` with a cache-friendly i-k-j loop.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.try_matmul(other).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::matmul`]: rejects inner-dimension mismatches.
    pub fn try_matmul(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != other.rows {
            return Err(ShapeError::new(
                "matmul",
                "lhs.cols == rhs.rows",
                format!("{:?} x {:?}", self.shape(), other.shape()),
            )
            .into());
        }
        let _span = cpgan_obs::span("nn.matmul");
        cpgan_obs::hist_record(
            "nn.matmul.flops",
            2.0 * self.rows as f64 * self.cols as f64 * other.cols as f64,
        );
        let m = other.cols;
        let mut out = Matrix::zeros(self.rows, m);
        par_rows(&mut out, |i, out_row| {
            let a_row = self.row(i);
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * m..(kk + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        });
        Ok(out)
    }

    /// `self^T * other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        self.try_matmul_tn(other).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::matmul_tn`]: rejects row-count mismatches.
    pub fn try_matmul_tn(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.rows != other.rows {
            return Err(ShapeError::new(
                "matmul_tn",
                "lhs.rows == rhs.rows",
                format!("{:?} x {:?}", self.shape(), other.shape()),
            )
            .into());
        }
        let _span = cpgan_obs::span("nn.matmul_tn");
        cpgan_obs::hist_record(
            "nn.matmul.flops",
            2.0 * self.rows as f64 * self.cols as f64 * other.cols as f64,
        );
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        // Row-blocked over the *output* (each out row i reads column i of
        // self); the k-ascending accumulation order per element matches the
        // previous kk-outer loop bit for bit.
        par_rows(&mut out, |i, out_row| {
            for kk in 0..k {
                let a = self.data[kk * n + i];
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(kk);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        });
        Ok(out)
    }

    /// `self * other^T` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        self.try_matmul_nt(other).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::matmul_nt`]: rejects column-count mismatches.
    pub fn try_matmul_nt(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != other.cols {
            return Err(ShapeError::new(
                "matmul_nt",
                "lhs.cols == rhs.cols",
                format!("{:?} x {:?}", self.shape(), other.shape()),
            )
            .into());
        }
        let _span = cpgan_obs::span("nn.matmul_nt");
        cpgan_obs::hist_record(
            "nn.matmul.flops",
            2.0 * self.rows as f64 * self.cols as f64 * other.rows as f64,
        );
        let (k, m) = (self.cols, other.rows);
        let mut out = Matrix::zeros(self.rows, m);
        par_rows(&mut out, |i, out_row| {
            let a_row = self.row(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        });
        Ok(out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        par_chunks_mut(&mut self.data, PAR_GRAIN, |_, chunk| {
            for v in chunk.iter_mut() {
                *v = f(*v);
            }
        });
    }

    /// Elementwise combination of two same-shape matrices.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        self.try_zip(other, f).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::zip`]: rejects shape mismatches.
    pub fn try_zip(
        &self,
        other: &Matrix,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Result<Matrix, NnError> {
        same_shape("zip", self, other)?;
        let mut out = self.clone();
        par_chunks_mut(&mut out.data, PAR_GRAIN, |ci, chunk| {
            let base = ci * PAR_GRAIN;
            for (k, o) in chunk.iter_mut().enumerate() {
                *o = f(*o, other.data[base + k]);
            }
        });
        Ok(out)
    }

    /// `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        self.try_axpy(alpha, other).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::axpy`]: rejects shape mismatches.
    pub fn try_axpy(&mut self, alpha: f32, other: &Matrix) -> Result<(), NnError> {
        same_shape("axpy", self, other)?;
        par_chunks_mut(&mut self.data, PAR_GRAIN, |ci, chunk| {
            let base = ci * PAR_GRAIN;
            for (k, o) in chunk.iter_mut().enumerate() {
                *o += alpha * other.data[base + k];
            }
        });
        Ok(())
    }

    /// Sum of all elements, accumulated over fixed chunks combined in index
    /// order (bit-identical for every thread count).
    pub fn sum(&self) -> f32 {
        par_reduce(
            self.data.len(),
            PAR_GRAIN,
            |r| self.data[r].iter().sum::<f32>(),
            |a, b| a + b,
        )
        .unwrap_or(0.0)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        par_reduce(
            self.data.len(),
            PAR_GRAIN,
            |r| self.data[r].iter().map(|v| v * v).sum::<f32>(),
            |a, b| a + b,
        )
        .unwrap_or(0.0)
        .sqrt()
    }

    /// Sets all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

/// Checks that two matrices share a shape, for elementwise ops.
fn same_shape(op: &'static str, a: &Matrix, b: &Matrix) -> Result<(), NnError> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new(
            op,
            "equal shapes",
            format!("{:?} vs {:?}", a.shape(), b.shape()),
        )
        .into());
    }
    Ok(())
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        memory::on_alloc(self.data.len() * std::mem::size_of::<f32>());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        memory::on_dealloc(self.data.len() * std::mem::size_of::<f32>());
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl serde::Serialize for Matrix {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("rows".to_string(), self.rows.to_value()),
            ("cols".to_string(), self.cols.to_value()),
            ("data".to_string(), self.data.to_value()),
        ])
    }
}

impl serde::Deserialize for Matrix {
    fn from_value(value: &serde::Value) -> Result<Self, serde::de::Error> {
        let field = |name: &str| value.get(name).unwrap_or(&serde::Value::Null);
        let rows = usize::from_value(field("rows"))?;
        let cols = usize::from_value(field("cols"))?;
        let data = Vec::<f32>::from_value(field("data"))?;
        if data.len() != rows * cols {
            return Err(serde::de::Error::custom(format!(
                "matrix buffer size {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        // Route through from_vec so the memory accounting stays consistent.
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        let expect = a.transpose().matmul(&b);
        assert_eq!(a.matmul_tn(&b), expect);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, vec![1., 0., 0., 0., 1., 0., 0., 0., 1., 1., 1., 1.]);
        let expect = a.matmul(&b.transpose());
        assert_eq!(a.matmul_nt(&b), expect);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn map_zip_axpy() {
        let a = Matrix::from_vec(1, 3, vec![1., -2., 3.]);
        let b = a.map(|v| v.abs());
        assert_eq!(b.as_slice(), &[1., 2., 3.]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.as_slice(), &[2., 0., 6.]);
        let mut d = a.clone();
        d.axpy(2.0, &b);
        assert_eq!(d.as_slice(), &[3., 2., 9.]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Matrix::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn try_ops_report_typed_shape_errors() {
        use crate::error::NnError;
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        match a.try_matmul(&b) {
            Err(NnError::Shape(e)) => {
                assert_eq!(e.op, "matmul");
                assert!(e.got.contains("(2, 3)"), "{e}");
            }
            other => panic!("expected shape error, got {other:?}"),
        }
        assert!(a.try_matmul_tn(&Matrix::zeros(3, 2)).is_err());
        assert!(a.try_matmul_nt(&Matrix::zeros(3, 4)).is_err());
        assert!(a.try_zip(&Matrix::zeros(3, 2), |x, _| x).is_err());
        assert!(a.try_item().is_err());
        assert!(Matrix::try_from_vec(2, 2, vec![0.0; 3]).is_err());
        let mut c = Matrix::zeros(2, 3);
        assert!(c.try_axpy(1.0, &Matrix::zeros(1, 1)).is_err());
        // The Ok paths agree with the panicking wrappers.
        let x = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let y = Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]);
        assert_eq!(x.try_matmul(&y).unwrap(), x.matmul(&y));
    }
}
