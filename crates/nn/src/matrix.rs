//! Dense row-major `f32` matrices.
//!
//! All tensor data in the workspace flows through [`Matrix`]. Buffers are
//! checked out of the [`crate::memory`] workspace pool (falling back to the
//! allocator on a miss) and registered with its live/peak accounting so
//! experiments can report peak tensor memory (the reproduction's stand-in
//! for the paper's "peak GPU memory", Table IX).
//!
//! The three dense products delegate to the cache-blocked, register-tiled
//! microkernels in [`crate::kernels`]; this module only owns the shape
//! checks, the fixed row-block parallel split, and the obs instrumentation.

use crate::error::{nn_panic, NnError, ShapeError};
use crate::kernels;
use crate::memory;
use cpgan_parallel::{grain_rows, par_chunks_mut, par_reduce};
use std::fmt;

/// Target number of `f32` elements per parallel chunk for elementwise ops.
/// Chunk boundaries depend only on the matrix shape — never on the thread
/// count — which is what keeps every kernel bit-identical across
/// `CPGAN_THREADS` settings (see DESIGN.md §8).
const PAR_GRAIN: usize = 4096;

/// Target output elements per parallel row block for the blocked matmul
/// kernels — larger than [`PAR_GRAIN`] so each block amortizes its panel
/// traffic through the KC×NC cache blocking (DESIGN.md §10).
const MM_GRAIN: usize = 32 * 1024;

/// Reports a kernel's achieved GFLOP/s (= flops per nanosecond) when
/// observability is on; `sw` is `None` (and nothing is recorded) when it is
/// off, so the disabled-mode cost is one branch.
#[inline]
fn gflops_gauge(name: &'static str, flops: f64, sw: Option<cpgan_obs::Stopwatch>) {
    if let Some(sw) = sw {
        cpgan_obs::gauge_set(name, flops / sw.elapsed_ns().max(1) as f64);
    }
}

/// A dense row-major `f32` matrix.
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Allocates a zero matrix (from the buffer pool when possible).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: memory::buffer_filled(rows * cols, 0.0),
        }
    }

    /// Allocates a matrix filled with `value` (from the buffer pool when
    /// possible).
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: memory::buffer_filled(rows * cols, value),
        }
    }

    /// A matrix whose contents are arbitrary (pooled garbage or zeros) —
    /// for kernel outputs that overwrite every element before the matrix
    /// escapes. Crate-private so uninitialized values can never leak out.
    fn uninit(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: memory::buffer_uninit(rows * cols),
        }
    }

    /// Wraps an existing buffer (`data.len()` must equal `rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        Matrix::try_from_vec(rows, cols, data).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::from_vec`]: rejects a buffer whose length is not
    /// `rows * cols`.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, NnError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(
                "from_vec buffer",
                format!("{rows}x{cols} = {} elements", rows * cols),
                format!("{} elements", data.len()),
            )
            .into());
        }
        memory::on_alloc(data.len() * std::mem::size_of::<f32>());
        Ok(Matrix { rows, cols, data })
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Stacks matrices vertically (all parts must share a column count;
    /// zero-row parts are fine). Used to pack per-subgraph feature blocks
    /// alongside [`crate::BlockDiagCsr`].
    pub fn vstack(parts: &[&Matrix]) -> Self {
        let cols = parts.first().map_or(0, |p| p.cols());
        let rows: usize = parts.iter().map(|p| p.rows()).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut r0 = 0;
        for p in parts {
            assert_eq!(p.cols(), cols, "vstack: column mismatch");
            for r in 0..p.rows() {
                out.row_mut(r0 + r).copy_from_slice(p.row(r));
            }
            r0 += p.rows();
        }
        out
    }

    /// A 1x1 matrix holding a scalar.
    pub fn scalar(v: f32) -> Self {
        Matrix::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a 1x1 matrix.
    pub fn item(&self) -> f32 {
        self.try_item().unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::item`]: rejects non-1x1 matrices.
    pub fn try_item(&self) -> Result<f32, NnError> {
        if self.shape() != (1, 1) {
            return Err(ShapeError::new("item", "1x1", format!("{:?}", self.shape())).into());
        }
        Ok(self.data[0])
    }

    /// Matrix product `self * other` via the cache-blocked, register-tiled
    /// microkernel ([`crate::kernels::gemm_nn`]).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.try_matmul(other).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::matmul`]: rejects inner-dimension mismatches.
    pub fn try_matmul(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != other.rows {
            return Err(ShapeError::new(
                "matmul",
                "lhs.cols == rhs.rows",
                format!("{:?} x {:?}", self.shape(), other.shape()),
            )
            .into());
        }
        let _span = cpgan_obs::span("nn.matmul");
        let flops = 2.0 * self.rows as f64 * self.cols as f64 * other.cols as f64;
        cpgan_obs::hist_record("nn.matmul.flops", flops);
        let sw = cpgan_obs::enabled().then(cpgan_obs::Stopwatch::start);
        let (k, n) = (self.cols, other.cols);
        let mut out = Matrix::uninit(self.rows, n);
        let block = grain_rows(MM_GRAIN, n);
        par_chunks_mut(&mut out.data, block * n, |ci, chunk| {
            let r0 = ci * block;
            let rb = chunk.len() / n;
            kernels::gemm_nn(
                &self.data[r0 * k..(r0 + rb) * k],
                &other.data,
                chunk,
                rb,
                k,
                n,
            );
        });
        gflops_gauge("nn.matmul.gflops", flops, sw);
        Ok(out)
    }

    /// `self^T * other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        self.try_matmul_tn(other).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::matmul_tn`]: rejects row-count mismatches.
    pub fn try_matmul_tn(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.rows != other.rows {
            return Err(ShapeError::new(
                "matmul_tn",
                "lhs.rows == rhs.rows",
                format!("{:?} x {:?}", self.shape(), other.shape()),
            )
            .into());
        }
        let _span = cpgan_obs::span("nn.matmul_tn");
        let flops = 2.0 * self.rows as f64 * self.cols as f64 * other.cols as f64;
        cpgan_obs::hist_record("nn.matmul.flops", flops);
        let sw = cpgan_obs::enabled().then(cpgan_obs::Stopwatch::start);
        // Row-blocked over the *output* (out row i reads column i of self);
        // the blocked kernel keeps the k-ascending accumulation order.
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::uninit(n, m);
        let block = grain_rows(MM_GRAIN, m);
        par_chunks_mut(&mut out.data, block * m, |ci, chunk| {
            let r0 = ci * block;
            let rb = chunk.len() / m;
            kernels::gemm_tn(&self.data, &other.data, chunk, r0, rb, k, n, m);
        });
        gflops_gauge("nn.matmul_tn.gflops", flops, sw);
        Ok(out)
    }

    /// `self * other^T` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        self.try_matmul_nt(other).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::matmul_nt`]: rejects column-count mismatches.
    pub fn try_matmul_nt(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != other.cols {
            return Err(ShapeError::new(
                "matmul_nt",
                "lhs.cols == rhs.cols",
                format!("{:?} x {:?}", self.shape(), other.shape()),
            )
            .into());
        }
        let _span = cpgan_obs::span("nn.matmul_nt");
        let flops = 2.0 * self.rows as f64 * self.cols as f64 * other.rows as f64;
        cpgan_obs::hist_record("nn.matmul.flops", flops);
        let sw = cpgan_obs::enabled().then(cpgan_obs::Stopwatch::start);
        let (k, m) = (self.cols, other.rows);
        let mut out = Matrix::uninit(self.rows, m);
        let block = grain_rows(MM_GRAIN, m);
        par_chunks_mut(&mut out.data, block * m, |ci, chunk| {
            let r0 = ci * block;
            let rb = chunk.len() / m;
            kernels::gemm_nt(
                &self.data[r0 * k..(r0 + rb) * k],
                &other.data,
                chunk,
                rb,
                k,
                m,
            );
        });
        gflops_gauge("nn.matmul_nt.gflops", flops, sw);
        Ok(out)
    }

    /// Transposed copy, cache-blocked in 32×32 tiles so both the read and
    /// the write side stay within a few cache lines per tile.
    pub fn transpose(&self) -> Matrix {
        const TB: usize = 32;
        let (nr, nc) = (self.rows, self.cols);
        let mut out = Matrix::uninit(nc, nr);
        let mut r0 = 0;
        while r0 < nr {
            let rb = TB.min(nr - r0);
            let mut c0 = 0;
            while c0 < nc {
                let cb = TB.min(nc - c0);
                for r in r0..r0 + rb {
                    for c in c0..c0 + cb {
                        out.data[c * nr + r] = self.data[r * nc + c];
                    }
                }
                c0 += cb;
            }
            r0 += rb;
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        par_chunks_mut(&mut self.data, PAR_GRAIN, |_, chunk| {
            for v in chunk.iter_mut() {
                *v = f(*v);
            }
        });
    }

    /// Elementwise combination of two same-shape matrices.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        self.try_zip(other, f).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::zip`]: rejects shape mismatches.
    pub fn try_zip(
        &self,
        other: &Matrix,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Result<Matrix, NnError> {
        same_shape("zip", self, other)?;
        let mut out = self.clone();
        par_chunks_mut(&mut out.data, PAR_GRAIN, |ci, chunk| {
            let base = ci * PAR_GRAIN;
            for (k, o) in chunk.iter_mut().enumerate() {
                *o = f(*o, other.data[base + k]);
            }
        });
        Ok(out)
    }

    /// `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        self.try_axpy(alpha, other).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Matrix::axpy`]: rejects shape mismatches.
    pub fn try_axpy(&mut self, alpha: f32, other: &Matrix) -> Result<(), NnError> {
        same_shape("axpy", self, other)?;
        par_chunks_mut(&mut self.data, PAR_GRAIN, |ci, chunk| {
            let base = ci * PAR_GRAIN;
            crate::kernels::axpy_lanes(alpha, &other.data[base..base + chunk.len()], chunk);
        });
        Ok(())
    }

    /// Sum of all elements, accumulated over fixed chunks combined in index
    /// order (bit-identical for every thread count). Within a chunk the
    /// reduction uses the fixed 8-lane split of
    /// [`crate::kernels::sum_lanes`] — shape-determined, never
    /// thread-dependent.
    pub fn sum(&self) -> f32 {
        par_reduce(
            self.data.len(),
            PAR_GRAIN,
            |r| crate::kernels::sum_lanes(&self.data[r]),
            |a, b| a + b,
        )
        .unwrap_or(0.0)
    }

    /// Frobenius norm (per-chunk 8-lane sum of squares, chunks combined in
    /// index order).
    pub fn frobenius_norm(&self) -> f32 {
        par_reduce(
            self.data.len(),
            PAR_GRAIN,
            |r| crate::kernels::sumsq_lanes(&self.data[r]),
            |a, b| a + b,
        )
        .unwrap_or(0.0)
        .sqrt()
    }

    /// Sets all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

/// Checks that two matrices share a shape, for elementwise ops.
fn same_shape(op: &'static str, a: &Matrix, b: &Matrix) -> Result<(), NnError> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new(
            op,
            "equal shapes",
            format!("{:?} vs {:?}", a.shape(), b.shape()),
        )
        .into());
    }
    Ok(())
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: memory::buffer_copied(&self.data),
        }
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        // Unregisters from the live/peak accounting and offers the buffer
        // to the thread-local pool for the next same-sized allocation.
        memory::release_buffer(std::mem::take(&mut self.data));
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl serde::Serialize for Matrix {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("rows".to_string(), self.rows.to_value()),
            ("cols".to_string(), self.cols.to_value()),
            ("data".to_string(), self.data.to_value()),
        ])
    }
}

impl serde::Deserialize for Matrix {
    fn from_value(value: &serde::Value) -> Result<Self, serde::de::Error> {
        let field = |name: &str| value.get(name).unwrap_or(&serde::Value::Null);
        let rows = usize::from_value(field("rows"))?;
        let cols = usize::from_value(field("cols"))?;
        let data = Vec::<f32>::from_value(field("data"))?;
        if data.len() != rows * cols {
            return Err(serde::de::Error::custom(format!(
                "matrix buffer size {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        // Route through from_vec so the memory accounting stays consistent.
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        let expect = a.transpose().matmul(&b);
        assert_eq!(a.matmul_tn(&b), expect);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, vec![1., 0., 0., 0., 1., 0., 0., 0., 1., 1., 1., 1.]);
        let expect = a.matmul(&b.transpose());
        assert_eq!(a.matmul_nt(&b), expect);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn map_zip_axpy() {
        let a = Matrix::from_vec(1, 3, vec![1., -2., 3.]);
        let b = a.map(|v| v.abs());
        assert_eq!(b.as_slice(), &[1., 2., 3.]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.as_slice(), &[2., 0., 6.]);
        let mut d = a.clone();
        d.axpy(2.0, &b);
        assert_eq!(d.as_slice(), &[3., 2., 9.]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Matrix::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn try_ops_report_typed_shape_errors() {
        use crate::error::NnError;
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        match a.try_matmul(&b) {
            Err(NnError::Shape(e)) => {
                assert_eq!(e.op, "matmul");
                assert!(e.got.contains("(2, 3)"), "{e}");
            }
            other => panic!("expected shape error, got {other:?}"),
        }
        assert!(a.try_matmul_tn(&Matrix::zeros(3, 2)).is_err());
        assert!(a.try_matmul_nt(&Matrix::zeros(3, 4)).is_err());
        assert!(a.try_zip(&Matrix::zeros(3, 2), |x, _| x).is_err());
        assert!(a.try_item().is_err());
        assert!(Matrix::try_from_vec(2, 2, vec![0.0; 3]).is_err());
        let mut c = Matrix::zeros(2, 3);
        assert!(c.try_axpy(1.0, &Matrix::zeros(1, 1)).is_err());
        // The Ok paths agree with the panicking wrappers.
        let x = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let y = Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]);
        assert_eq!(x.try_matmul(&y).unwrap(), x.matmul(&y));
    }
}
