//! Composite losses shared by CPGAN and the baselines.

use crate::tape::Var;

/// KL divergence `KL(N(mu, sigma^2) || N(0, I))` summed over all entries and
/// averaged over rows:
/// `-0.5 / n * sum(1 + log sigma^2 - mu^2 - sigma^2)`.
///
/// `logvar` parameterizes `log sigma^2`, the standard VAE trick (paper
/// Eq. 19's `L_prior`).
pub fn gaussian_kl(mu: &Var, logvar: &Var) -> Var {
    let n = mu.shape().0.max(1) as f32;
    let term = logvar.add_scalar(1.0).sub(&mu.square()).sub(&logvar.exp());
    term.sum_all().scale(-0.5 / n)
}

/// The non-saturating generator loss `-log D(G(z))` given discriminator
/// logits on fake samples (standard GAN practice; gradients match maximizing
/// `log D(G(z))`).
pub fn generator_nonsaturating(fake_logits: &Var) -> Var {
    let target = std::sync::Arc::new(crate::Matrix::full(
        fake_logits.shape().0,
        fake_logits.shape().1,
        1.0,
    ));
    fake_logits.bce_with_logits_mean(&target, None)
}

/// Discriminator loss `-log D(real) - log(1 - D(fake))` from logits.
pub fn discriminator_loss(real_logits: &Var, fake_logits: &Var) -> Var {
    let ones = std::sync::Arc::new(crate::Matrix::full(
        real_logits.shape().0,
        real_logits.shape().1,
        1.0,
    ));
    let zeros = std::sync::Arc::new(crate::Matrix::zeros(
        fake_logits.shape().0,
        fake_logits.shape().1,
    ));
    let real = real_logits.bce_with_logits_mean(&ones, None);
    let fake = fake_logits.bce_with_logits_mean(&zeros, None);
    real.add(&fake)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use crate::{Matrix, Param};

    #[test]
    fn kl_zero_at_standard_normal() {
        let t = Tape::new();
        let mu = t.constant(Matrix::zeros(3, 2));
        let logvar = t.constant(Matrix::zeros(3, 2));
        let kl = gaussian_kl(&mu, &logvar);
        assert!(kl.item().abs() < 1e-6);
    }

    #[test]
    fn kl_positive_away_from_prior() {
        let t = Tape::new();
        let mu = t.constant(Matrix::full(2, 2, 1.5));
        let logvar = t.constant(Matrix::full(2, 2, -1.0));
        assert!(gaussian_kl(&mu, &logvar).item() > 0.0);
    }

    #[test]
    fn kl_gradient_pulls_towards_prior() {
        let t = Tape::new();
        let p_mu = Param::new(Matrix::full(1, 2, 2.0));
        let p_lv = Param::new(Matrix::full(1, 2, 1.0));
        let mu = t.param(&p_mu);
        let lv = t.param(&p_lv);
        gaussian_kl(&mu, &lv).backward();
        // dKL/dmu = mu > 0; dKL/dlogvar = 0.5(exp(lv) - 1) > 0 for lv > 0.
        assert!(p_mu.lock().grad.as_slice().iter().all(|&g| g > 0.0));
        assert!(p_lv.lock().grad.as_slice().iter().all(|&g| g > 0.0));
    }

    #[test]
    fn gan_losses_oppose() {
        let t = Tape::new();
        let logits = t.constant(Matrix::from_vec(2, 1, vec![2.0, -1.0]));
        let g = generator_nonsaturating(&logits);
        let zeros = t.constant(Matrix::zeros(2, 1));
        let d = discriminator_loss(&zeros, &logits);
        assert!(g.item() > 0.0);
        assert!(d.item() > 0.0);
    }
}
