//! Compressed sparse row matrices for graph operators.
//!
//! The encoder's message passing (paper Eq. 6) multiplies the symmetric
//! normalized adjacency `D̃^{-1/2} Ã D̃^{-1/2}` by dense feature matrices.
//! Keeping the adjacency sparse gives the `O(m + n)` per-layer cost the
//! paper's complexity analysis relies on.

use crate::kernels::FusedAct;
use crate::Matrix;
use cpgan_graph::Graph;
use std::sync::{Arc, OnceLock};

/// A CSR sparse `f32` matrix.
#[derive(Debug, Clone)]
pub struct Csr {
    rows: usize,
    cols: usize,
    offsets: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
    /// Lazily memoized transpose (see [`Csr::transpose_cached`]). Not part
    /// of the matrix's value: equality and serialization ignore it.
    cached_t: OnceLock<Arc<Csr>>,
}

impl PartialEq for Csr {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.offsets == other.offsets
            && self.indices == other.indices
            && self.values == other.values
    }
}

impl Csr {
    /// Builds from row-major triplets `(row, col, value)`; triplets must be
    /// sorted by `(row, col)` with no duplicates.
    pub fn from_sorted_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f32)>,
    ) -> Self {
        let mut offsets = vec![0usize; rows + 1];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet out of bounds");
            if let Some(prev) = last {
                assert!(prev < (r, c), "triplets must be sorted and unique");
            }
            last = Some((r, c));
            offsets[r + 1] += 1;
            indices.push(c as u32);
            values.push(v);
        }
        for r in 0..rows {
            offsets[r + 1] += offsets[r];
        }
        Csr {
            rows,
            cols,
            offsets,
            indices,
            values,
            cached_t: OnceLock::new(),
        }
    }

    /// The symmetric normalized adjacency with self-loops of `g`:
    /// `Â = D̃^{-1/2} (A + I) D̃^{-1/2}` (paper Eq. 6).
    pub fn normalized_adjacency(g: &Graph) -> Self {
        let n = g.n();
        let inv_sqrt: Vec<f32> = (0..n)
            .map(|v| 1.0 / ((g.degree(v as u32) as f32) + 1.0).sqrt())
            .collect();
        let mut triplets = Vec::with_capacity(2 * g.m() + n);
        for u in 0..n {
            let du = inv_sqrt[u];
            // Merge sorted neighbors with the diagonal entry.
            let mut placed_diag = false;
            for &w in g.neighbors(u as u32) {
                let w = w as usize;
                if !placed_diag && w > u {
                    triplets.push((u, u, du * du));
                    placed_diag = true;
                }
                triplets.push((u, w, du * inv_sqrt[w]));
            }
            if !placed_diag {
                triplets.push((u, u, du * du));
            }
        }
        Csr::from_sorted_triplets(n, n, triplets)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Whether this matrix is square and symmetric (entry-wise).
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                match self.get(c as usize, r) {
                    Some(w) if (w - v).abs() <= 1e-6 * v.abs().max(1.0) => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// Value at `(r, c)` if stored.
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        let range = self.offsets[r]..self.offsets[r + 1];
        let row = &self.indices[range.clone()];
        row.binary_search(&(c as u32))
            .ok()
            .map(|i| self.values[range.start + i])
    }

    /// Iterator over `(col, value)` of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let range = self.offsets[r]..self.offsets[r + 1];
        self.indices[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Sparse x dense product `self * x`, row-blocked across the pool.
    ///
    /// Each output row accumulates its own CSR row in index order, so the
    /// result is bit-identical for every `CPGAN_THREADS` setting.
    pub fn matmul_dense(&self, x: &Matrix) -> Matrix {
        assert_eq!(self.cols, x.rows(), "spmm shape mismatch");
        let _span = cpgan_obs::span("nn.spmm");
        cpgan_obs::hist_record("nn.spmm.nnz", self.nnz() as f64);
        cpgan_obs::hist_record("nn.spmm.flops", 2.0 * self.nnz() as f64 * x.cols() as f64);
        let d = x.cols();
        let mut out = Matrix::zeros(self.rows, d);
        if d == 0 {
            return out;
        }
        // Fixed row blocks (~4096 output elements each), independent of the
        // thread count.
        let block = cpgan_parallel::grain_rows(4096, d);
        cpgan_parallel::par_chunks_mut(out.as_mut_slice(), block * d, |ci, chunk| {
            for (local, out_row) in chunk.chunks_mut(d).enumerate() {
                let r = ci * block + local;
                for i in self.offsets[r]..self.offsets[r + 1] {
                    let c = self.indices[i] as usize;
                    let v = self.values[i];
                    let x_row = &x.as_slice()[c * d..(c + 1) * d];
                    for (o, &xv) in out_row.iter_mut().zip(x_row) {
                        *o += v * xv;
                    }
                }
            }
        });
        out
    }

    /// Fused `act(self * x + bias)` in one pass over the output.
    ///
    /// Identical accumulation to [`matmul_dense`](Self::matmul_dense)
    /// followed, per output row while it is still cache-hot, by the row
    /// bias add and the activation map. Per element the float ops and their
    /// order are exactly the composed `spmm → add_row_broadcast → act`
    /// sequence, so the result is bit-identical to the unfused op chain —
    /// and, because row blocks are shape-determined, bit-identical at every
    /// thread count.
    ///
    /// `bias` is a `1 × x.cols()` row (or `None` for no bias).
    pub fn matmul_dense_bias_act(
        &self,
        x: &Matrix,
        bias: Option<&Matrix>,
        act: FusedAct,
    ) -> Matrix {
        assert_eq!(self.cols, x.rows(), "spmm shape mismatch");
        if let Some(b) = bias {
            assert_eq!(b.shape(), (1, x.cols()), "fused bias must be 1 x cols");
        }
        let _span = cpgan_obs::span("nn.spmm_fused");
        cpgan_obs::hist_record("nn.spmm.nnz", self.nnz() as f64);
        cpgan_obs::hist_record("nn.spmm.flops", 2.0 * self.nnz() as f64 * x.cols() as f64);
        let d = x.cols();
        let mut out = Matrix::zeros(self.rows, d);
        if d == 0 {
            return out;
        }
        let block = cpgan_parallel::grain_rows(4096, d);
        cpgan_parallel::par_chunks_mut(out.as_mut_slice(), block * d, |ci, chunk| {
            for (local, out_row) in chunk.chunks_mut(d).enumerate() {
                let r = ci * block + local;
                for i in self.offsets[r]..self.offsets[r + 1] {
                    let c = self.indices[i] as usize;
                    let v = self.values[i];
                    let x_row = &x.as_slice()[c * d..(c + 1) * d];
                    for (o, &xv) in out_row.iter_mut().zip(x_row) {
                        *o += v * xv;
                    }
                }
                if let Some(b) = bias {
                    for (o, &bv) in out_row.iter_mut().zip(b.row(0)) {
                        *o += bv;
                    }
                }
                if act != FusedAct::Identity {
                    for o in out_row.iter_mut() {
                        *o = act.apply(*o);
                    }
                }
            }
        });
        out
    }

    /// Transposed copy (used by autograd for non-symmetric operators).
    ///
    /// Two-pass counting transpose: pass one histograms the column indices
    /// into the output row offsets, pass two scatters each entry to its
    /// slot. `O(nnz + rows + cols)` with no sort and no per-entry tuple
    /// materialization; scanning the source in row-major order leaves every
    /// output row sorted by column, preserving the CSR invariant.
    pub fn transpose(&self) -> Csr {
        let mut offsets = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            offsets[c as usize + 1] += 1;
        }
        for c in 0..self.cols {
            offsets[c + 1] += offsets[c];
        }
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        // Per-output-row write cursors, advanced as entries scatter in.
        let mut next = offsets[..self.cols].to_vec();
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                let dst = next[c as usize];
                indices[dst] = r as u32;
                values[dst] = v;
                next[c as usize] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            offsets,
            indices,
            values,
            cached_t: OnceLock::new(),
        }
    }

    /// The transpose, computed once per matrix and memoized.
    ///
    /// Training hits the same adjacency operator's transpose on every
    /// backward pass (`Op::SpMM` / `Op::SpmmBiasAct` hold it per tape node);
    /// before this cache each forward call rebuilt it from scratch. The
    /// cache is keyed on `&self`, so clones recompute independently, and it
    /// is invisible to `PartialEq`.
    pub fn transpose_cached(&self) -> Arc<Csr> {
        Arc::clone(self.cached_t.get_or_init(|| Arc::new(self.transpose())))
    }
}

/// `k` square sparse operators packed into one block-diagonal CSR, so one
/// fused spmm call covers a whole batch of sampled subgraphs.
///
/// Block `b` occupies rows and columns `offsets[b]..offsets[b + 1]` of the
/// packed operator; feature matrices are stacked the same way
/// ([`Matrix::vstack`]). Because blocks share no columns, each packed
/// output row accumulates exactly the entries the standalone per-block
/// spmm would, in the same index order — packed results are bit-identical
/// to `k` independent calls. Empty (0-node) and single-node blocks are
/// legal; they simply contribute zero or one row.
///
/// The transpose is computed once at construction and shared (`Arc`), so
/// the tape's fused op does not re-transpose per call the way the
/// standalone spmm path does.
#[derive(Debug, Clone)]
pub struct BlockDiagCsr {
    op: Arc<Csr>,
    op_t: Arc<Csr>,
    /// Node offsets, length `k + 1`: block `b` is rows `offsets[b]..offsets[b+1]`.
    offsets: Arc<Vec<usize>>,
}

impl BlockDiagCsr {
    /// Packs square blocks into one block-diagonal operator.
    pub fn from_blocks(blocks: &[Csr]) -> Self {
        let mut offsets = Vec::with_capacity(blocks.len() + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        let mut nnz = 0usize;
        for b in blocks {
            assert_eq!(b.rows(), b.cols(), "block-diagonal blocks must be square");
            total += b.rows();
            nnz += b.nnz();
            offsets.push(total);
        }
        let mut triplets = Vec::with_capacity(nnz);
        for (bi, b) in blocks.iter().enumerate() {
            let base = offsets[bi];
            for r in 0..b.rows() {
                for (c, v) in b.row_iter(r) {
                    triplets.push((base + r, base + c as usize, v));
                }
            }
        }
        let op = Csr::from_sorted_triplets(total, total, triplets);
        // Seed the packed operator's memoized transpose so the tape and any
        // direct `transpose_cached` caller share the same Arc.
        let op_t = op.transpose_cached();
        BlockDiagCsr {
            op: Arc::new(op),
            op_t,
            offsets: Arc::new(offsets),
        }
    }

    /// Packs the normalized adjacencies (paper Eq. 6) of a batch of graphs.
    pub fn from_graphs<'a>(graphs: impl IntoIterator<Item = &'a Graph>) -> Self {
        let blocks: Vec<Csr> = graphs.into_iter().map(Csr::normalized_adjacency).collect();
        BlockDiagCsr::from_blocks(&blocks)
    }

    /// Number of blocks `k`.
    pub fn blocks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total packed rows (sum of block sizes).
    pub fn total_rows(&self) -> usize {
        self.op.rows()
    }

    /// Packed row range of block `b`.
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        self.offsets[b]..self.offsets[b + 1]
    }

    /// The packed operator.
    pub fn op(&self) -> &Arc<Csr> {
        &self.op
    }

    /// The packed operator's transpose (cached at construction).
    pub fn op_t(&self) -> &Arc<Csr> {
        &self.op_t
    }

    /// The shared node-offset table (length `k + 1`).
    pub fn offsets(&self) -> &Arc<Vec<usize>> {
        &self.offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3_adj() -> Csr {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        Csr::normalized_adjacency(&g)
    }

    #[test]
    fn normalized_adjacency_rows_structure() {
        let a = path3_adj();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.nnz(), 7); // 4 off-diagonal + 3 diagonal
                                // deg+1: node0 -> 2, node1 -> 3, node2 -> 2.
        let d00 = a.get(0, 0).unwrap();
        assert!((d00 - 0.5).abs() < 1e-6);
        let d01 = a.get(0, 1).unwrap();
        assert!((d01 - 1.0 / (2.0f32.sqrt() * 3.0f32.sqrt())).abs() < 1e-6);
    }

    #[test]
    fn transpose_cached_memoizes_and_matches() {
        let a = path3_adj();
        let t1 = a.transpose_cached();
        let t2 = a.transpose_cached();
        assert!(Arc::ptr_eq(&t1, &t2), "repeated calls share one transpose");
        assert_eq!(*t1, a.transpose(), "cached transpose equals a fresh one");
        // The cache is not part of the value: a clone is equal but rebuilds
        // its own transpose independently.
        let b = a.clone();
        assert_eq!(a, b);
        // BlockDiagCsr's construction-time transpose is the packed
        // operator's memoized one.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let batch = BlockDiagCsr::from_graphs([&g]);
        assert!(Arc::ptr_eq(batch.op_t(), &batch.op().transpose_cached()));
    }

    #[test]
    fn symmetric() {
        assert!(path3_adj().is_symmetric());
    }

    #[test]
    fn spmm_matches_dense() {
        let a = path3_adj();
        let x = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 + 1.0);
        let y = a.matmul_dense(&x);
        // Dense reference.
        let mut dense = Matrix::zeros(3, 3);
        for r in 0..3 {
            for (c, v) in a.row_iter(r) {
                dense.set(r, c as usize, v);
            }
        }
        let expect = dense.matmul(&x);
        for (u, v) in y.as_slice().iter().zip(expect.as_slice()) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_involution() {
        let t = Csr::from_sorted_triplets(2, 3, [(0, 1, 2.0), (1, 0, 3.0), (1, 2, 4.0)]);
        assert_eq!(t.transpose().transpose(), t);
        assert_eq!(t.transpose().get(1, 0), Some(2.0));
    }

    #[test]
    fn fused_spmm_matches_composed_bitwise() {
        let a = path3_adj();
        let x = Matrix::from_fn(3, 4, |r, c| ((r * 4 + c) as f32 * 0.37).sin());
        let b = Matrix::from_fn(1, 4, |_, c| (c as f32 * 0.91).cos() * 0.3);
        for act in FusedAct::ALL {
            let fused = a.matmul_dense_bias_act(&x, Some(&b), act);
            let mut composed = a.matmul_dense(&x);
            for r in 0..composed.rows() {
                for c in 0..composed.cols() {
                    let v = composed.get(r, c) + b.get(0, c);
                    composed.set(r, c, act.apply(v));
                }
            }
            for (i, (u, v)) in fused.as_slice().iter().zip(composed.as_slice()).enumerate() {
                assert_eq!(u.to_bits(), v.to_bits(), "{} [{i}]", act.name());
            }
        }
    }

    #[test]
    fn block_diag_packs_and_matches_per_block() {
        let g1 = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let g2 = Graph::from_edges(1, []).unwrap(); // single node
        let g3 = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let batch = BlockDiagCsr::from_graphs([&g1, &g2, &g3]);
        assert_eq!(batch.blocks(), 3);
        assert_eq!(batch.total_rows(), 8);
        assert_eq!(batch.block_range(1), 3..4);
        let d = 5;
        let x = Matrix::from_fn(8, d, |r, c| ((r * d + c) as f32 * 0.13).sin());
        let packed = batch.op().matmul_dense(&x);
        for (bi, g) in [&g1, &g2, &g3].iter().enumerate() {
            let adj = Csr::normalized_adjacency(g);
            let range = batch.block_range(bi);
            let xb = Matrix::from_fn(range.len(), d, |r, c| x.get(range.start + r, c));
            let yb = adj.matmul_dense(&xb);
            for r in 0..range.len() {
                for c in 0..d {
                    assert_eq!(
                        packed.get(range.start + r, c).to_bits(),
                        yb.get(r, c).to_bits(),
                        "block {bi} ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn block_diag_empty_block_is_legal() {
        let e = Csr::from_sorted_triplets(0, 0, []);
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let batch = BlockDiagCsr::from_blocks(&[e, Csr::normalized_adjacency(&g)]);
        assert_eq!(batch.blocks(), 2);
        assert_eq!(batch.block_range(0), 0..0);
        assert_eq!(batch.total_rows(), 2);
        let y = batch
            .op()
            .matmul_dense(&Matrix::from_fn(2, 3, |r, c| (r + c) as f32));
        assert_eq!(y.shape(), (2, 3));
    }

    #[test]
    fn row_sums_of_normalized_adjacency_bounded() {
        // Spectral radius of the normalized adjacency is <= 1, and row sums
        // stay near 1 for regular-ish graphs.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let a = Csr::normalized_adjacency(&g);
        for r in 0..4 {
            let s: f32 = a.row_iter(r).map(|(_, v)| v).sum();
            assert!((s - 1.0).abs() < 1e-6); // 2-regular: exact
        }
    }
}
