//! Cache-blocked, register-tiled dense matmul microkernels.
//!
//! The three dense products ([`Matrix::matmul`](crate::Matrix::matmul) and
//! its fused-transpose variants) bottom out here. Each kernel processes a
//! contiguous *row block* of the output — the parallel tier in
//! `matrix.rs` hands out fixed, shape-determined row blocks — and within a
//! block runs an MC×KC×NC blocking scheme with an MR×NR register tile:
//!
//! * **MC** — the caller's row block (the parallel chunk),
//! * **KC** ([`KC`]) — the inner-dimension cache block; the `out` block is
//!   re-read/re-written once per KC slab so a `KC × NC` panel of `b` stays
//!   cache-resident,
//! * **NC** ([`NC`]) — the output-column cache block,
//! * **MR×NR** ([`MR`], [`NR`]) — the register tile: MR output rows by NR
//!   output columns accumulated in fixed-size local arrays, written as
//!   slice-chunk loops the compiler can autovectorize (8 lanes matches one
//!   AVX2 `f32` vector).
//!
//! # Determinism contract (DESIGN.md §10)
//!
//! Every output element accumulates its `k`-products in **ascending `k`
//! order**, regardless of block sizes, ragged edges, or which thread owns
//! the row block — so results are bit-identical at every thread count. For
//! [`gemm_nn`] / [`gemm_tn`] this order equals the classic scalar i-k-j
//! loop, so the blocked kernels are bit-identical to the retained seed
//! references ([`matmul_naive`], [`matmul_tn_naive`]) for inputs whose left
//! operand has no exact zeros (see their docs). [`gemm_nt`] reduces
//! each dot product in a fixed 8-lane split (lane `l` owns `k ≡ l mod 8`,
//! lanes summed in index order, then the ragged tail in ascending order) —
//! still fixed for a given shape, but intentionally *not* the scalar
//! order, so [`matmul_nt_naive`] comparisons are tolerance-based.
//!
//! There is deliberately no `a == 0.0` skip in the dense path: the branch
//! defeats autovectorization, and sparse operands route through
//! [`crate::Csr::matmul_dense`] instead.

use crate::Matrix;

/// Register-tile height: output rows accumulated together.
pub const MR: usize = 4;
/// Register-tile width / vector lanes: output columns per inner loop.
pub const NR: usize = 8;
/// Cache block over the inner (`k`) dimension.
pub const KC: usize = 256;
/// Cache block over the output-column (`n`) dimension.
pub const NC: usize = 1024;

/// `out = a * b` for a row block: `a` is `rb x k` (the block's rows of the
/// left operand), `b` is `k x n` (full), `out` is `rb x n`.
///
/// `out` is overwritten (it does not need to be zeroed first). Each element
/// accumulates in ascending-`k` order — bit-identical to [`matmul_naive`].
pub fn gemm_nn(a: &[f32], b: &[f32], out: &mut [f32], rb: usize, k: usize, n: usize) {
    assert_eq!(a.len(), rb * k, "gemm_nn: lhs block size");
    assert_eq!(out.len(), rb * n, "gemm_nn: out block size");
    assert!(b.len() >= k * n, "gemm_nn: rhs size");
    if rb == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let mut k0 = 0;
    while k0 < k {
        let kb = KC.min(k - k0);
        let first = k0 == 0;
        let mut j0 = 0;
        while j0 < n {
            let jb = NC.min(n - j0);
            let mut i0 = 0;
            while i0 < rb {
                let ib = MR.min(rb - i0);
                nn_tile(a, b, out, (i0, ib), (k0, kb), (j0, jb), k, n, first);
                i0 += ib;
            }
            j0 += jb;
        }
        k0 += kb;
    }
}

/// One MR-row strip of [`gemm_nn`]: rows `i0..i0+ib`, k-slab `k0..k0+kb`,
/// column panel `j0..j0+jb`. When `first`, accumulators start from zero;
/// otherwise they resume from the partial sums already in `out`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn nn_tile(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    (i0, ib): (usize, usize),
    (k0, kb): (usize, usize),
    (j0, jb): (usize, usize),
    k: usize,
    n: usize,
    first: bool,
) {
    let mut j = j0;
    if ib == MR {
        // Full-height fast path: every loop bound below is a compile-time
        // constant (MR/NR), so the accumulator tile unrolls into registers
        // and the per-k row loads come from pre-sliced, bounds-check-free
        // iterators.
        let ar: [&[f32]; MR] = std::array::from_fn(|r| {
            let base = (i0 + r) * k + k0;
            &a[base..base + kb]
        });
        let bp = &b[k0 * n..(k0 + kb) * n];
        while j + NR <= j0 + jb {
            let mut acc = [[0.0f32; NR]; MR];
            if !first {
                for (r, accr) in acc.iter_mut().enumerate() {
                    let base = (i0 + r) * n + j;
                    accr.copy_from_slice(&out[base..base + NR]);
                }
            }
            // k unrolled by two; within a pair the products still land in
            // ascending-k order, so bit-exactness holds.
            let mut pairs = bp.chunks_exact(2 * n);
            let mut kk = 0;
            for bpair in &mut pairs {
                let (brow0, brow1) = bpair.split_at(n);
                let mut bv0 = [0.0f32; NR];
                bv0.copy_from_slice(&brow0[j..j + NR]);
                let mut bv1 = [0.0f32; NR];
                bv1.copy_from_slice(&brow1[j..j + NR]);
                let av0: [f32; MR] = std::array::from_fn(|r| ar[r][kk]);
                let av1: [f32; MR] = std::array::from_fn(|r| ar[r][kk + 1]);
                for (r, accr) in acc.iter_mut().enumerate() {
                    for (l, o) in accr.iter_mut().enumerate() {
                        *o += av0[r] * bv0[l];
                        *o += av1[r] * bv1[l];
                    }
                }
                kk += 2;
            }
            for brow in pairs.remainder().chunks_exact(n) {
                let mut bv = [0.0f32; NR];
                bv.copy_from_slice(&brow[j..j + NR]);
                let av: [f32; MR] = std::array::from_fn(|r| ar[r][kk]);
                for (accr, &avr) in acc.iter_mut().zip(&av) {
                    for (o, &x) in accr.iter_mut().zip(&bv) {
                        *o += avr * x;
                    }
                }
                kk += 1;
            }
            for (r, accr) in acc.iter().enumerate() {
                let base = (i0 + r) * n + j;
                out[base..base + NR].copy_from_slice(accr);
            }
            j += NR;
        }
    }
    // Ragged row tail (ib < MR) and, after the fast path, nothing: the
    // runtime `take(ib)` bound keeps this generic but unregistered.
    while ib < MR && j + NR <= j0 + jb {
        let mut acc = [[0.0f32; NR]; MR];
        if !first {
            for (r, accr) in acc.iter_mut().enumerate().take(ib) {
                let base = (i0 + r) * n + j;
                accr.copy_from_slice(&out[base..base + NR]);
            }
        }
        for kk in k0..k0 + kb {
            let mut bv = [0.0f32; NR];
            bv.copy_from_slice(&b[kk * n + j..kk * n + j + NR]);
            for (r, accr) in acc.iter_mut().enumerate().take(ib) {
                let av = a[(i0 + r) * k + kk];
                for (o, &x) in accr.iter_mut().zip(&bv) {
                    *o += av * x;
                }
            }
        }
        for (r, accr) in acc.iter().enumerate().take(ib) {
            let base = (i0 + r) * n + j;
            out[base..base + NR].copy_from_slice(accr);
        }
        j += NR;
    }
    // Ragged column tail (< NR wide): scalar, same ascending-k order.
    for jj in j..j0 + jb {
        for r in 0..ib {
            let arow = &a[(i0 + r) * k + k0..(i0 + r) * k + k0 + kb];
            let mut s = if first { 0.0 } else { out[(i0 + r) * n + jj] };
            for (kk, &av) in arow.iter().enumerate() {
                s += av * b[(k0 + kk) * n + jj];
            }
            out[(i0 + r) * n + jj] = s;
        }
    }
}

/// `out = a^T * b` for a row block of the output: `a` is `k x m` (full),
/// `b` is `k x n` (full), `out` holds rows `row0..row0+rb` of the `m x n`
/// product (so `out.len() == rb * n`).
///
/// Output row `row0 + r` reads column `row0 + r` of `a`; per `k` the MR
/// needed elements `a[kk*m + row0+i0 ..]` are contiguous, so the tile loads
/// stay vector-friendly. Accumulation is ascending-`k`, bit-identical to
/// [`matmul_tn_naive`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row0: usize,
    rb: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    assert!(a.len() >= k * m, "gemm_tn: lhs size");
    assert!(b.len() >= k * n, "gemm_tn: rhs size");
    assert_eq!(out.len(), rb * n, "gemm_tn: out block size");
    assert!(row0 + rb <= m, "gemm_tn: row block in range");
    if rb == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let mut k0 = 0;
    while k0 < k {
        let kb = KC.min(k - k0);
        let first = k0 == 0;
        let mut j0 = 0;
        while j0 < n {
            let jb = NC.min(n - j0);
            let mut i0 = 0;
            while i0 < rb {
                let ib = MR.min(rb - i0);
                tn_tile(a, b, out, row0, (i0, ib), (k0, kb), (j0, jb), m, n, first);
                i0 += ib;
            }
            j0 += jb;
        }
        k0 += kb;
    }
}

/// One MR-row strip of [`gemm_tn`]; like [`nn_tile`] but the left operand
/// is read column-wise (`a[kk*m + row0 + i0 + r]`, contiguous in `r`).
#[inline]
#[allow(clippy::too_many_arguments)]
fn tn_tile(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row0: usize,
    (i0, ib): (usize, usize),
    (k0, kb): (usize, usize),
    (j0, jb): (usize, usize),
    m: usize,
    n: usize,
    first: bool,
) {
    let mut j = j0;
    if ib == MR {
        // Full-height fast path: constant MR/NR bounds keep the tile in
        // registers; the MR left-operand elements per `k` are contiguous
        // (`a[kk*m + row0+i0 ..]`) and load as one fixed-size copy.
        let ap = &a[k0 * m..(k0 + kb) * m];
        while j + NR <= j0 + jb {
            let mut acc = [[0.0f32; NR]; MR];
            if !first {
                for (r, accr) in acc.iter_mut().enumerate() {
                    let base = (i0 + r) * n + j;
                    accr.copy_from_slice(&out[base..base + NR]);
                }
            }
            let bp = &b[k0 * n..(k0 + kb) * n];
            for (arow, brow) in ap.chunks_exact(m).zip(bp.chunks_exact(n)) {
                let mut bv = [0.0f32; NR];
                bv.copy_from_slice(&brow[j..j + NR]);
                let mut av = [0.0f32; MR];
                av.copy_from_slice(&arow[row0 + i0..row0 + i0 + MR]);
                for (accr, &avr) in acc.iter_mut().zip(&av) {
                    for (o, &x) in accr.iter_mut().zip(&bv) {
                        *o += avr * x;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                let base = (i0 + r) * n + j;
                out[base..base + NR].copy_from_slice(accr);
            }
            j += NR;
        }
    }
    while ib < MR && j + NR <= j0 + jb {
        let mut acc = [[0.0f32; NR]; MR];
        if !first {
            for (r, accr) in acc.iter_mut().enumerate().take(ib) {
                let base = (i0 + r) * n + j;
                accr.copy_from_slice(&out[base..base + NR]);
            }
        }
        for kk in k0..k0 + kb {
            let mut bv = [0.0f32; NR];
            bv.copy_from_slice(&b[kk * n + j..kk * n + j + NR]);
            let abase = kk * m + row0 + i0;
            for (r, accr) in acc.iter_mut().enumerate().take(ib) {
                let av = a[abase + r];
                for (o, &x) in accr.iter_mut().zip(&bv) {
                    *o += av * x;
                }
            }
        }
        for (r, accr) in acc.iter().enumerate().take(ib) {
            let base = (i0 + r) * n + j;
            out[base..base + NR].copy_from_slice(accr);
        }
        j += NR;
    }
    for jj in j..j0 + jb {
        for r in 0..ib {
            let mut s = if first { 0.0 } else { out[(i0 + r) * n + jj] };
            for kk in k0..k0 + kb {
                s += a[kk * m + row0 + i0 + r] * b[kk * n + jj];
            }
            out[(i0 + r) * n + jj] = s;
        }
    }
}

/// `out = a * b^T` for a row block: `a` is `rb x k` (the block's rows),
/// `b` is `mb x k` (full), `out` is `rb x mb`.
///
/// Each element is an independent dot product reduced by [`dot_lanes`] —
/// fixed 8-lane split, deterministic for a given `k` at every thread count.
pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], rb: usize, k: usize, mb: usize) {
    assert_eq!(a.len(), rb * k, "gemm_nt: lhs block size");
    assert!(b.len() >= mb * k, "gemm_nt: rhs size");
    assert_eq!(out.len(), rb * mb, "gemm_nt: out block size");
    for i in 0..rb {
        let arow = &a[i * k..(i + 1) * k];
        for (j, o) in out[i * mb..(i + 1) * mb].iter_mut().enumerate() {
            *o = dot_lanes(arow, &b[j * k..(j + 1) * k]);
        }
    }
}

/// Dot product with a fixed 8-lane accumulation split: lane `l` sums the
/// elements at indices `≡ l (mod NR)` of the leading `NR`-aligned prefix,
/// lanes are combined in index order, and the ragged tail is added last in
/// ascending order. The split depends only on `a.len()`, never on threads.
#[inline]
pub fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; NR];
    let mut ca = a.chunks_exact(NR);
    let mut cb = b.chunks_exact(NR);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for ((o, &x), &y) in acc.iter_mut().zip(xa).zip(xb) {
            *o += x * y;
        }
    }
    let mut s: f32 = acc.iter().sum();
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

/// Sum with the same fixed 8-lane split as [`dot_lanes`]: lane `l` sums the
/// elements at indices `≡ l (mod NR)` of the `NR`-aligned prefix, lanes are
/// combined in index order, then the ragged tail is added in ascending
/// order. Depends only on `a.len()`, never on threads.
#[inline]
pub fn sum_lanes(a: &[f32]) -> f32 {
    let mut acc = [0.0f32; NR];
    let mut ca = a.chunks_exact(NR);
    for xa in &mut ca {
        for (o, &x) in acc.iter_mut().zip(xa) {
            *o += x;
        }
    }
    let mut s: f32 = acc.iter().sum();
    for &x in ca.remainder() {
        s += x;
    }
    s
}

/// Sum of squares with the [`dot_lanes`] lane split (see [`sum_lanes`] for
/// the order contract).
#[inline]
pub fn sumsq_lanes(a: &[f32]) -> f32 {
    let mut acc = [0.0f32; NR];
    let mut ca = a.chunks_exact(NR);
    for xa in &mut ca {
        for (o, &x) in acc.iter_mut().zip(xa) {
            *o += x * x;
        }
    }
    let mut s: f32 = acc.iter().sum();
    for &x in ca.remainder() {
        s += x * x;
    }
    s
}

/// Maximum with an 8-lane inner loop. `max` is order-insensitive up to the
/// sign of equal zeros (which no consumer observes — softmax subtracts the
/// max, and `x - ±0.0` is the same value), so this is safe wherever the
/// sequential fold was. Returns `-inf` for an empty slice.
#[inline]
pub fn max_lanes(a: &[f32]) -> f32 {
    let mut acc = [f32::NEG_INFINITY; NR];
    let mut ca = a.chunks_exact(NR);
    for xa in &mut ca {
        for (o, &x) in acc.iter_mut().zip(xa) {
            *o = o.max(x);
        }
    }
    let mut m = f32::NEG_INFINITY;
    for &l in &acc {
        m = m.max(l);
    }
    for &x in ca.remainder() {
        m = m.max(x);
    }
    m
}

/// `y += alpha * x`, processed in explicit NR-wide chunks. Purely
/// elementwise — bit-identical to the scalar loop at any width.
#[inline]
pub fn axpy_lanes(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cx = x.chunks_exact(NR);
    let mut cy = y.chunks_exact_mut(NR);
    for (xs, ys) in (&mut cx).zip(&mut cy) {
        for (o, &v) in ys.iter_mut().zip(xs) {
            *o += alpha * v;
        }
    }
    for (o, &v) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *o += alpha * v;
    }
}

/// In-place numerically-stable softmax over one row: max via [`max_lanes`],
/// `exp(v - max)` elementwise, then normalization by a [`sum_lanes`]
/// reduction. The lane split is shape-determined, so rows are bit-identical
/// at every thread count.
#[inline]
pub fn softmax_row(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = max_lanes(row);
    for v in row.iter_mut() {
        *v = (*v - max).exp();
    }
    let sum = sum_lanes(row);
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Activation fused into [`crate::Csr::matmul_dense_bias_act`] and the
/// tape's `spmm_bias_act` op. Forward applies `apply` per element *after*
/// the bias add; backward derives the input gradient from the **saved
/// output** `y` alone via [`grad_from_output`](FusedAct::grad_from_output)
/// (the "mask" is the output buffer itself — no extra saved state). Each
/// arm reproduces the corresponding standalone tape op bit for bit:
/// `relu` uses `y > 0` (equivalent to the pre-activation test `v > 0`
/// because `y = max(v, 0)` preserves strict positivity), `sigmoid` and
/// `tanh` are already output-form in `tape.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedAct {
    /// No activation: `y = v`.
    Identity,
    /// `y = max(v, 0)`.
    Relu,
    /// `y = 1 / (1 + e^{-v})`.
    Sigmoid,
    /// `y = tanh(v)`.
    Tanh,
}

impl FusedAct {
    /// Every variant, for exhaustive test sweeps and the DESIGN.md §13
    /// op-inventory sync test.
    pub const ALL: [FusedAct; 4] = [
        FusedAct::Identity,
        FusedAct::Relu,
        FusedAct::Sigmoid,
        FusedAct::Tanh,
    ];

    /// Stable name used in the DESIGN.md §13 inventory.
    pub fn name(self) -> &'static str {
        match self {
            FusedAct::Identity => "identity",
            FusedAct::Relu => "relu",
            FusedAct::Sigmoid => "sigmoid",
            FusedAct::Tanh => "tanh",
        }
    }

    /// Forward map, bit-identical to the standalone tape op for the same
    /// input.
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            FusedAct::Identity => v,
            FusedAct::Relu => v.max(0.0),
            FusedAct::Sigmoid => 1.0 / (1.0 + (-v).exp()),
            FusedAct::Tanh => v.tanh(),
        }
    }

    /// Backward: upstream gradient `g` through the activation, expressed in
    /// terms of the saved output `y`.
    #[inline]
    pub fn grad_from_output(self, y: f32, g: f32) -> f32 {
        match self {
            FusedAct::Identity => g,
            FusedAct::Relu => {
                if y > 0.0 {
                    g
                } else {
                    0.0
                }
            }
            FusedAct::Sigmoid => g * y * (1.0 - y),
            FusedAct::Tanh => g * (1.0 - y * y),
        }
    }
}

/// Reference `a * b`: the pre-blocking seed kernel, retained verbatim — the
/// serial i-k-j loop *with* the branchy `a == 0.0` skip that defeats
/// autovectorization. Ground truth for the property tests and the baseline
/// of the `bench matmul` speedup gate (the gate measures blocked kernels
/// against exactly the code they replaced).
///
/// Bit-identical to the blocked [`gemm_nn`] path whenever the left operand
/// contains no exact `±0.0` (the skip elides `+0.0` additions, which can
/// only matter for signed-zero or `0.0 * inf/NaN` corner cases).
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul_naive shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for kk in 0..k {
            let av = a.as_slice()[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b.as_slice()[kk * n..(kk + 1) * n];
            for (o, &bv) in out.row_mut(i).iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Reference `a^T * b`: the retained seed kernel (serial, ascending-`k`,
/// with the `a == 0.0` skip). Bit-identical to the blocked [`gemm_tn`] path
/// under the same no-exact-zero proviso as [`matmul_naive`].
pub fn matmul_tn_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn_naive shape mismatch");
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for kk in 0..k {
            let av = a.as_slice()[kk * m + i];
            if av == 0.0 {
                continue;
            }
            let brow = &b.as_slice()[kk * n..(kk + 1) * n];
            for (o, &bv) in out.row_mut(i).iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Reference scalar `a * b^T` (sequential ascending-`k` dot products).
/// The blocked [`gemm_nt`] uses a lane-split reduction, so comparisons
/// against this reference are tolerance-based, not bitwise.
pub fn matmul_nt_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt_naive shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = &b.as_slice()[j * k..(j + 1) * k];
            let mut s = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                s += x * y;
            }
            out.set(i, j, s);
        }
    }
    out
}

#[cfg(test)]
// Tests may assert exact float values (the determinism contract is bitwise).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn seed(rows: usize, cols: usize, offset: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * cols + c) as f32 * 0.371 + offset).sin() * 1.3
        })
    }

    #[test]
    fn gemm_nn_matches_naive_bitwise_across_blocks() {
        // k crosses two KC boundaries, n crosses NC; ragged everywhere.
        for &(m, k, n) in &[(5, 517, 1050), (3, 256, 8), (7, 37, 17), (1, 1, 1)] {
            let a = seed(m, k, 0.2);
            let b = seed(k, n, 0.9);
            let naive = matmul_naive(&a, &b);
            let mut out = vec![f32::NAN; m * n];
            gemm_nn(a.as_slice(), b.as_slice(), &mut out, m, k, n);
            assert_eq!(out, naive.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_tn_matches_naive_bitwise_with_row_offset() {
        let (k, m, n) = (300, 13, 29);
        let a = seed(k, m, 0.4);
        let b = seed(k, n, 0.1);
        let naive = matmul_tn_naive(&a, &b);
        // Compute rows 5..13 only, as the parallel tier would.
        let (row0, rb) = (5, 8);
        let mut out = vec![f32::NAN; rb * n];
        gemm_tn(a.as_slice(), b.as_slice(), &mut out, row0, rb, k, m, n);
        assert_eq!(out, &naive.as_slice()[row0 * n..(row0 + rb) * n]);
    }

    #[test]
    fn gemm_nt_matches_naive_within_tolerance() {
        let (m, k, n) = (9, 83, 11);
        let a = seed(m, k, 0.3);
        let b = seed(n, k, 0.6);
        let naive = matmul_nt_naive(&a, &b);
        let mut out = vec![f32::NAN; m * n];
        gemm_nt(a.as_slice(), b.as_slice(), &mut out, m, k, n);
        for (i, (x, y)) in out.iter().zip(naive.as_slice()).enumerate() {
            assert!((x - y).abs() < 1e-4 * (1.0 + y.abs()), "[{i}] {x} vs {y}");
        }
    }

    #[test]
    fn zero_k_zeroes_output() {
        let mut out = vec![f32::NAN; 6];
        gemm_nn(&[], &[], &mut out, 2, 0, 3);
        assert_eq!(out, vec![0.0; 6]);
        let mut out = vec![f32::NAN; 6];
        gemm_tn(&[], &[], &mut out, 0, 2, 0, 2, 3);
        assert_eq!(out, vec![0.0; 6]);
        let mut out = vec![f32::NAN; 6];
        gemm_nt(&[], &[], &mut out, 2, 0, 3);
        assert_eq!(out, vec![0.0; 6]);
    }

    #[test]
    fn empty_dims_are_fine() {
        let mut out = Vec::new();
        gemm_nn(&[], &[], &mut out, 0, 4, 0);
        gemm_tn(&[0.0; 8], &[], &mut out, 0, 0, 4, 2, 0);
        gemm_nt(&[], &[0.0; 12], &mut out, 0, 4, 3);
    }

    #[test]
    fn dot_lanes_handles_short_and_ragged() {
        assert_eq!(dot_lanes(&[], &[]), 0.0);
        assert_eq!(dot_lanes(&[2.0], &[3.0]), 6.0);
        let a: Vec<f32> = (0..19).map(|i| i as f32).collect();
        let b = vec![1.0f32; 19];
        assert_eq!(dot_lanes(&a, &b), (0..19).sum::<i32>() as f32);
    }

    #[test]
    fn sum_lanes_matches_dot_with_ones() {
        for len in [0usize, 1, 7, 8, 9, 19, 64, 100] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.31).sin()).collect();
            let ones = vec![1.0f32; len];
            assert_eq!(sum_lanes(&a), dot_lanes(&a, &ones), "len {len}");
        }
    }

    #[test]
    fn sumsq_lanes_matches_self_dot() {
        for len in [0usize, 1, 8, 23, 65] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).cos()).collect();
            assert_eq!(sumsq_lanes(&a), dot_lanes(&a, &a), "len {len}");
        }
    }

    #[test]
    fn max_lanes_matches_sequential_fold() {
        for len in [0usize, 1, 5, 8, 17, 40] {
            let a: Vec<f32> = (0..len).map(|i| ((i * 37 % 11) as f32) - 5.0).collect();
            let seq = a.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            assert_eq!(max_lanes(&a), seq, "len {len}");
        }
    }

    #[test]
    fn axpy_lanes_is_elementwise_exact() {
        for len in [0usize, 1, 8, 21] {
            let x: Vec<f32> = (0..len).map(|i| (i as f32 * 0.11).sin()).collect();
            let mut y: Vec<f32> = (0..len).map(|i| (i as f32 * 0.23).cos()).collect();
            let mut want = y.clone();
            for (o, &v) in want.iter_mut().zip(&x) {
                *o += 1.7 * v;
            }
            axpy_lanes(1.7, &x, &mut y);
            assert_eq!(y, want, "len {len}");
        }
    }

    #[test]
    fn softmax_row_normalizes_and_is_stable() {
        let mut row = vec![1000.0f32, 1001.0, 999.0];
        softmax_row(&mut row);
        let total: f32 = row.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(row.iter().all(|&p| p.is_finite() && p >= 0.0));
        assert!(row[1] > row[0] && row[0] > row[2]);
        let mut empty: Vec<f32> = Vec::new();
        softmax_row(&mut empty);
    }

    #[test]
    fn fused_act_matches_standalone_formulas() {
        for act in FusedAct::ALL {
            for &v in &[-2.0f32, -0.5, 0.0, 0.75, 3.0] {
                let y = act.apply(v);
                let want = match act {
                    FusedAct::Identity => v,
                    FusedAct::Relu => v.max(0.0),
                    FusedAct::Sigmoid => 1.0 / (1.0 + (-v).exp()),
                    FusedAct::Tanh => v.tanh(),
                };
                assert_eq!(y.to_bits(), want.to_bits(), "{} apply({v})", act.name());
            }
        }
        // Relu mask from output equals mask from input.
        for &v in &[-1.0f32, 0.0, 2.5] {
            let y = FusedAct::Relu.apply(v);
            let from_out = FusedAct::Relu.grad_from_output(y, 3.0);
            let from_in: f32 = if v > 0.0 { 3.0 } else { 0.0 };
            assert_eq!(from_out.to_bits(), from_in.to_bits());
        }
    }
}
