//! Trainable parameters.
//!
//! Parameters live *outside* the autograd tape so a fresh tape can be built
//! per forward pass (the GAN training loop builds several per iteration).
//! Backward accumulates gradients into the shared [`Param`] storage; an
//! optimizer then steps every parameter registered in a [`ParamStore`].

use crate::Matrix;
use parking_lot::Mutex;
use std::sync::Arc;

/// Value + accumulated gradient of one trainable tensor.
#[derive(Debug)]
pub struct ParamData {
    /// Current parameter value.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
}

/// A shared handle to one trainable tensor.
#[derive(Debug, Clone)]
pub struct Param {
    inner: Arc<Mutex<ParamData>>,
}

impl Param {
    /// Wraps an initial value.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Param {
            inner: Arc::new(Mutex::new(ParamData { value, grad })),
        }
    }

    /// Locks and returns the inner data.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, ParamData> {
        self.inner.lock()
    }

    /// Shape of the parameter.
    pub fn shape(&self) -> (usize, usize) {
        self.lock().value.shape()
    }

    /// Clones the current value.
    pub fn value(&self) -> Matrix {
        self.lock().value.clone()
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&self) {
        self.lock().grad.fill_zero();
    }

    /// Adds `g` into the accumulated gradient.
    pub fn accumulate_grad(&self, g: &Matrix) {
        self.lock().grad.axpy(1.0, g);
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.lock().value.len()
    }

    /// Identity for optimizer state keying.
    pub(crate) fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Whether two handles refer to the same parameter.
    pub fn same_as(&self, other: &Param) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// A registry of every trainable parameter of a model, in registration order.
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers and returns a new parameter with the given initial value.
    pub fn register(&mut self, value: Matrix) -> Param {
        let p = Param::new(value);
        self.params.push(p.clone());
        p
    }

    /// All registered parameters.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.params.iter().map(Param::param_count).sum()
    }

    /// Global L2 norm over every accumulated gradient, in f64 so the value
    /// does not depend on parameter registration chunking (training
    /// telemetry: `train.grad_norm_*` series).
    pub fn grad_norm(&self) -> f64 {
        let mut total = 0.0f64;
        for p in &self.params {
            for &g in p.lock().grad.as_slice() {
                total += f64::from(g) * f64::from(g);
            }
        }
        total.sqrt()
    }

    /// Zeroes every gradient.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Merges another store's parameters into this one (e.g. an encoder
    /// shared between generator and discriminator, §III-B).
    pub fn extend(&mut self, other: &ParamStore) {
        for p in &other.params {
            if !self.params.iter().any(|q| q.same_as(p)) {
                self.params.push(p.clone());
            }
        }
    }

    /// Snapshots every parameter value in registration order (model
    /// persistence).
    pub fn export_values(&self) -> Vec<Matrix> {
        self.params.iter().map(Param::value).collect()
    }

    /// Restores parameter values from a snapshot taken by
    /// [`export_values`](Self::export_values) on an identically-constructed
    /// store. Returns an error message on any count or shape mismatch.
    pub fn import_values(&self, values: Vec<Matrix>) -> Result<(), String> {
        if values.len() != self.params.len() {
            return Err(format!(
                "snapshot has {} tensors, model expects {} (was the snapshot \
                 written by a model with a different configuration?)",
                values.len(),
                self.params.len()
            ));
        }
        for (i, (p, v)) in self.params.iter().zip(&values).enumerate() {
            if p.shape() != v.shape() {
                let (er, ec) = p.shape();
                let (fr, fc) = v.shape();
                return Err(format!(
                    "parameter {i} of {}: expected shape {er}x{ec}, snapshot has {fr}x{fc}",
                    self.params.len()
                ));
            }
        }
        for (p, v) in self.params.iter().zip(values) {
            p.lock().value = v;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_count() {
        let mut store = ParamStore::new();
        let a = store.register(Matrix::zeros(2, 3));
        let _b = store.register(Matrix::zeros(4, 1));
        assert_eq!(store.param_count(), 10);
        assert_eq!(a.shape(), (2, 3));
    }

    #[test]
    fn grad_accumulates_and_zeroes() {
        let p = Param::new(Matrix::zeros(1, 2));
        p.accumulate_grad(&Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        p.accumulate_grad(&Matrix::from_vec(1, 2, vec![0.5, 0.5]));
        assert_eq!(p.lock().grad.as_slice(), &[1.5, 2.5]);
        p.zero_grad();
        assert_eq!(p.lock().grad.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn extend_dedups_shared_params() {
        let mut a = ParamStore::new();
        let shared = a.register(Matrix::zeros(1, 1));
        let mut b = ParamStore::new();
        b.params.push(shared.clone());
        b.register(Matrix::zeros(1, 1));
        a.extend(&b);
        assert_eq!(a.params().len(), 2);
    }
}
