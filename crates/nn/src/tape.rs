//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every forward operation as a node in a flat arena;
//! [`Var`] is a cheap handle into that arena. Calling [`Var::backward`] seeds
//! the output gradient and walks the arena in reverse, accumulating gradients
//! into parents and, for parameter leaves, into the shared [`Param`] storage
//! so optimizers can step them.
//!
//! The training loops in this workspace build a fresh tape per forward pass,
//! which keeps parameter lifetimes independent of any particular pass.

use crate::error::{nn_panic, NnError, ShapeError};
use crate::kernels::FusedAct;
use crate::params::Param;
use crate::sparse::{BlockDiagCsr, Csr};
use crate::Matrix;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Numerical floor used by `ln` / `sqrt` style ops.
const EPS: f32 = 1e-8;

enum Op {
    /// Constant leaf (no gradient flows past it).
    Leaf,
    /// Trainable parameter leaf; backward accumulates into the handle.
    Param(Param),
    MatMul(usize, usize),
    /// Sparse constant times dense variable; stores the operator and its
    /// transpose for the backward pass.
    SpMM(#[allow(dead_code)] Arc<Csr>, Arc<Csr>, usize),
    /// Fused `act(S·X + b)`: one node, one pass over the output
    /// (DESIGN.md §13). The saved output doubles as the activation mask for
    /// backward; `blocks` carries block-diagonal row offsets in the batched
    /// form so the bias gradient reduces per block (bitwise equal to `k`
    /// independent calls).
    SpmmBiasAct {
        op_t: Arc<Csr>,
        x: usize,
        bias: Option<usize>,
        act: FusedAct,
        blocks: Option<Arc<Vec<usize>>>,
    },
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    /// `X + broadcast(row)`: parent 0 is `n x d`, parent 1 is `1 x d`.
    AddRowBroadcast(usize, usize),
    /// `broadcast(row)` to `n` rows; parent is `1 x d`.
    BroadcastRow(usize),
    Scale(usize, f32),
    AddScalar(usize, #[allow(dead_code)] f32),
    Relu(usize),
    Sigmoid(usize),
    Tanh(usize),
    Exp(usize),
    Ln(usize),
    Sqrt(usize),
    SoftmaxRows(usize),
    Transpose(usize),
    ConcatCols(Vec<usize>),
    ConcatRows(Vec<usize>),
    /// Column-wise mean over rows, producing `1 x d`.
    MeanRows(usize),
    SumAll(usize),
    MeanAll(usize),
    GatherRows(usize, Arc<Vec<usize>>),
    /// Per-row L2 normalization scaled by `s` (PairNorm's scale-individually
    /// step).
    RowL2Normalize(usize, f32),
    /// Numerically stable mean binary cross-entropy with logits against a
    /// constant target, with optional per-element weights.
    BceWithLogitsMean(usize, Arc<Matrix>, Option<Arc<Matrix>>),
    /// Mean squared error against a constant target.
    MseMean(usize, Arc<Matrix>),
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// An autodiff recording arena. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Tape {
    nodes: Rc<RefCell<Vec<Node>>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Rc::new(RefCell::new(Vec::new())),
        }
    }

    fn push(&self, value: Matrix, op: Op) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var {
            tape: self.clone(),
            idx: nodes.len() - 1,
        }
    }

    /// Records a constant (gradient does not flow into it).
    pub fn constant(&self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Records a scalar constant as a 1x1 matrix.
    pub fn scalar(&self, v: f32) -> Var {
        self.constant(Matrix::scalar(v))
    }

    /// Records a trainable parameter; backward accumulates into `param`.
    pub fn param(&self, param: &Param) -> Var {
        let value = param.value();
        self.push(value, Op::Param(param.clone()))
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }
}

/// A handle to a node on a [`Tape`].
#[derive(Clone)]
pub struct Var {
    tape: Tape,
    idx: usize,
}

impl Var {
    /// Checks that `other` lives on the same tape as `self`.
    fn same_tape(&self, other: &Var, op: &'static str) -> Result<(), NnError> {
        if !Rc::ptr_eq(&self.tape.nodes, &other.tape.nodes) {
            return Err(NnError::TapeMismatch { op });
        }
        Ok(())
    }

    /// Clones the current value of this node.
    pub fn value(&self) -> Matrix {
        self.tape.nodes.borrow()[self.idx].value.clone()
    }

    /// Shape of this node's value.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.nodes.borrow()[self.idx].value.shape()
    }

    /// Scalar value of a 1x1 node.
    pub fn item(&self) -> f32 {
        self.tape.nodes.borrow()[self.idx].value.item()
    }

    /// Clones the accumulated gradient of this node (zeros if backward has
    /// not reached it).
    pub fn grad(&self) -> Matrix {
        let nodes = self.tape.nodes.borrow();
        let node = &nodes[self.idx];
        node.grad
            .as_ref()
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(node.value.rows(), node.value.cols()))
    }

    /// Matrix product.
    pub fn matmul(&self, other: &Var) -> Var {
        self.try_matmul(other).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Var::matmul`]: rejects cross-tape operands and
    /// inner-dimension mismatches.
    pub fn try_matmul(&self, other: &Var) -> Result<Var, NnError> {
        self.same_tape(other, "matmul")?;
        let value = {
            let nodes = self.tape.nodes.borrow();
            nodes[self.idx].value.try_matmul(&nodes[other.idx].value)?
        };
        Ok(self.tape.push(value, Op::MatMul(self.idx, other.idx)))
    }

    /// Sparse constant times this variable: `s * self`. The backward
    /// operator `sᵀ` comes from the matrix's memoized transpose
    /// ([`Csr::transpose_cached`]), so repeated forwards on the same
    /// adjacency share one transpose instead of rebuilding it per call.
    pub fn spmm(&self, s: &Arc<Csr>) -> Var {
        let st = s.transpose_cached();
        let value = {
            let nodes = self.tape.nodes.borrow();
            s.matmul_dense(&nodes[self.idx].value)
        };
        self.tape.push(value, Op::SpMM(Arc::clone(s), st, self.idx))
    }

    /// Fused `act(s * self + bias)` in a single tape node: the forward is
    /// one pass over the output ([`Csr::matmul_dense_bias_act`]), and the
    /// backward derives the activation mask from the saved output, so the
    /// op is bit-identical to the composed
    /// `spmm → add_row_broadcast → act` chain at every thread count.
    ///
    /// `bias` must be a `1 x cols` row on the same tape (or `None`).
    pub fn spmm_bias_act(&self, s: &Arc<Csr>, bias: Option<&Var>, act: FusedAct) -> Var {
        self.try_spmm_bias_act(s, bias, act)
            .unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Var::spmm_bias_act`]: rejects cross-tape or mis-shaped
    /// bias rows.
    pub fn try_spmm_bias_act(
        &self,
        s: &Arc<Csr>,
        bias: Option<&Var>,
        act: FusedAct,
    ) -> Result<Var, NnError> {
        let st = s.transpose_cached();
        self.spmm_bias_act_with(s, st, bias, act, None)
    }

    /// Batched [`Var::spmm_bias_act`] over a [`BlockDiagCsr`]: one fused
    /// call covers every block, reusing the batch's cached transpose, and
    /// the bias gradient reduces per block so results stay bitwise equal to
    /// `k` independent per-block calls.
    pub fn spmm_bias_act_batched(
        &self,
        batch: &BlockDiagCsr,
        bias: Option<&Var>,
        act: FusedAct,
    ) -> Var {
        self.try_spmm_bias_act_batched(batch, bias, act)
            .unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Var::spmm_bias_act_batched`].
    pub fn try_spmm_bias_act_batched(
        &self,
        batch: &BlockDiagCsr,
        bias: Option<&Var>,
        act: FusedAct,
    ) -> Result<Var, NnError> {
        self.spmm_bias_act_with(
            batch.op(),
            Arc::clone(batch.op_t()),
            bias,
            act,
            Some(Arc::clone(batch.offsets())),
        )
    }

    fn spmm_bias_act_with(
        &self,
        s: &Arc<Csr>,
        st: Arc<Csr>,
        bias: Option<&Var>,
        act: FusedAct,
        blocks: Option<Arc<Vec<usize>>>,
    ) -> Result<Var, NnError> {
        if let Some(b) = bias {
            self.same_tape(b, "spmm_bias_act")?;
        }
        let value = {
            let nodes = self.tape.nodes.borrow();
            let x = &nodes[self.idx].value;
            if let Some(b) = bias {
                let r = &nodes[b.idx].value;
                if r.rows() != 1 || r.cols() != x.cols() {
                    return Err(ShapeError::new(
                        "spmm_bias_act",
                        format!("1x{} bias row", x.cols()),
                        format!("{:?}", r.shape()),
                    )
                    .into());
                }
            }
            let bm = bias.map(|b| &nodes[b.idx].value);
            s.matmul_dense_bias_act(x, bm, act)
        };
        Ok(self.tape.push(
            value,
            Op::SpmmBiasAct {
                op_t: st,
                x: self.idx,
                bias: bias.map(|b| b.idx),
                act,
                blocks,
            },
        ))
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Var) -> Var {
        self.try_add(other).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Var::add`]: rejects cross-tape operands and shape mismatches.
    pub fn try_add(&self, other: &Var) -> Result<Var, NnError> {
        self.same_tape(other, "add")?;
        let value = {
            let nodes = self.tape.nodes.borrow();
            nodes[self.idx]
                .value
                .try_zip(&nodes[other.idx].value, |a, b| a + b)?
        };
        Ok(self.tape.push(value, Op::Add(self.idx, other.idx)))
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Var) -> Var {
        self.try_sub(other).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Var::sub`]: rejects cross-tape operands and shape mismatches.
    pub fn try_sub(&self, other: &Var) -> Result<Var, NnError> {
        self.same_tape(other, "sub")?;
        let value = {
            let nodes = self.tape.nodes.borrow();
            nodes[self.idx]
                .value
                .try_zip(&nodes[other.idx].value, |a, b| a - b)?
        };
        Ok(self.tape.push(value, Op::Sub(self.idx, other.idx)))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Var) -> Var {
        self.try_mul(other).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Var::mul`]: rejects cross-tape operands and shape mismatches.
    pub fn try_mul(&self, other: &Var) -> Result<Var, NnError> {
        self.same_tape(other, "mul")?;
        let value = {
            let nodes = self.tape.nodes.borrow();
            nodes[self.idx]
                .value
                .try_zip(&nodes[other.idx].value, |a, b| a * b)?
        };
        Ok(self.tape.push(value, Op::Mul(self.idx, other.idx)))
    }

    /// Adds a `1 x d` row vector to every row of this `n x d` variable.
    pub fn add_row_broadcast(&self, row: &Var) -> Var {
        self.try_add_row_broadcast(row)
            .unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Var::add_row_broadcast`]: `row` must be `1 x d` on the same
    /// tape, matching this variable's width.
    pub fn try_add_row_broadcast(&self, row: &Var) -> Result<Var, NnError> {
        self.same_tape(row, "add_row_broadcast")?;
        let value = {
            let nodes = self.tape.nodes.borrow();
            let x = &nodes[self.idx].value;
            let r = &nodes[row.idx].value;
            if r.rows() != 1 || r.cols() != x.cols() {
                return Err(ShapeError::new(
                    "add_row_broadcast",
                    format!("1x{} row vector", x.cols()),
                    format!("{:?}", r.shape()),
                )
                .into());
            }
            let mut out = x.clone();
            for i in 0..out.rows() {
                let or = out.row_mut(i);
                for (o, &b) in or.iter_mut().zip(r.row(0)) {
                    *o += b;
                }
            }
            out
        };
        Ok(self
            .tape
            .push(value, Op::AddRowBroadcast(self.idx, row.idx)))
    }

    /// Broadcasts this `1 x d` row vector to `n` rows.
    pub fn broadcast_row(&self, n: usize) -> Var {
        self.try_broadcast_row(n).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Var::broadcast_row`]: this variable must be a `1 x d` row
    /// vector.
    pub fn try_broadcast_row(&self, n: usize) -> Result<Var, NnError> {
        let value = {
            let nodes = self.tape.nodes.borrow();
            let r = &nodes[self.idx].value;
            if r.rows() != 1 {
                return Err(ShapeError::new(
                    "broadcast_row",
                    "a 1-row vector",
                    format!("{:?}", r.shape()),
                )
                .into());
            }
            let mut out = Matrix::zeros(n, r.cols());
            for i in 0..n {
                out.row_mut(i).copy_from_slice(r.row(0));
            }
            out
        };
        Ok(self.tape.push(value, Op::BroadcastRow(self.idx)))
    }

    /// Multiplies by a compile-time scalar.
    pub fn scale(&self, c: f32) -> Var {
        let value = self.tape.nodes.borrow()[self.idx].value.map(|v| v * c);
        self.tape.push(value, Op::Scale(self.idx, c))
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, c: f32) -> Var {
        let value = self.tape.nodes.borrow()[self.idx].value.map(|v| v + c);
        self.tape.push(value, Op::AddScalar(self.idx, c))
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let value = self.tape.nodes.borrow()[self.idx].value.map(|v| v.max(0.0));
        self.tape.push(value, Op::Relu(self.idx))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let value = self.tape.nodes.borrow()[self.idx]
            .value
            .map(|v| 1.0 / (1.0 + (-v).exp()));
        self.tape.push(value, Op::Sigmoid(self.idx))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let value = self.tape.nodes.borrow()[self.idx].value.map(f32::tanh);
        self.tape.push(value, Op::Tanh(self.idx))
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let value = self.tape.nodes.borrow()[self.idx].value.map(f32::exp);
        self.tape.push(value, Op::Exp(self.idx))
    }

    /// Elementwise natural log of `x + EPS`.
    pub fn ln(&self) -> Var {
        let value = self.tape.nodes.borrow()[self.idx]
            .value
            .map(|v| (v + EPS).ln());
        self.tape.push(value, Op::Ln(self.idx))
    }

    /// Elementwise square root of `max(x, EPS)`.
    pub fn sqrt(&self) -> Var {
        let value = self.tape.nodes.borrow()[self.idx]
            .value
            .map(|v| v.max(EPS).sqrt());
        self.tape.push(value, Op::Sqrt(self.idx))
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        self.mul(self)
    }

    /// Row-wise softmax, row-blocked across the pool (each row normalizes
    /// independently via the explicit 8-lane [`crate::kernels::softmax_row`]
    /// kernel, so the result is thread-count independent).
    pub fn softmax_rows(&self) -> Var {
        let value = {
            let nodes = self.tape.nodes.borrow();
            let x = &nodes[self.idx].value;
            let mut out = x.clone();
            let d = out.cols();
            if d > 0 {
                let block = cpgan_parallel::grain_rows(4096, d);
                cpgan_parallel::par_chunks_mut(out.as_mut_slice(), block * d, |_, chunk| {
                    for row in chunk.chunks_mut(d) {
                        crate::kernels::softmax_row(row);
                    }
                });
            }
            out
        };
        self.tape.push(value, Op::SoftmaxRows(self.idx))
    }

    /// Transpose.
    pub fn transpose(&self) -> Var {
        let value = self.tape.nodes.borrow()[self.idx].value.transpose();
        self.tape.push(value, Op::Transpose(self.idx))
    }

    /// Horizontal concatenation (same row counts).
    pub fn concat_cols(parts: &[Var]) -> Var {
        Var::try_concat_cols(parts).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Var::concat_cols`]: rejects zero parts, cross-tape parts
    /// and row-count mismatches.
    pub fn try_concat_cols(parts: &[Var]) -> Result<Var, NnError> {
        let Some(first) = parts.first() else {
            return Err(ShapeError::new("concat_cols", "at least one part", "0 parts").into());
        };
        let tape = first.tape.clone();
        for p in parts {
            first.same_tape(p, "concat_cols")?;
        }
        let value = {
            let nodes = tape.nodes.borrow();
            let rows = nodes[first.idx].value.rows();
            let total: usize = parts.iter().map(|p| nodes[p.idx].value.cols()).sum();
            let mut out = Matrix::zeros(rows, total);
            let mut col0 = 0;
            for p in parts {
                let v = &nodes[p.idx].value;
                if v.rows() != rows {
                    return Err(ShapeError::new(
                        "concat_cols",
                        format!("{rows} rows in every part"),
                        format!("{:?}", v.shape()),
                    )
                    .into());
                }
                for r in 0..rows {
                    out.row_mut(r)[col0..col0 + v.cols()].copy_from_slice(v.row(r));
                }
                col0 += v.cols();
            }
            out
        };
        Ok(tape.push(value, Op::ConcatCols(parts.iter().map(|p| p.idx).collect())))
    }

    /// Vertical concatenation (same column counts).
    pub fn concat_rows(parts: &[Var]) -> Var {
        Var::try_concat_rows(parts).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Var::concat_rows`]: rejects zero parts, cross-tape parts
    /// and column-count mismatches.
    pub fn try_concat_rows(parts: &[Var]) -> Result<Var, NnError> {
        let Some(first) = parts.first() else {
            return Err(ShapeError::new("concat_rows", "at least one part", "0 parts").into());
        };
        let tape = first.tape.clone();
        for p in parts {
            first.same_tape(p, "concat_rows")?;
        }
        let value = {
            let nodes = tape.nodes.borrow();
            let cols = nodes[first.idx].value.cols();
            let total: usize = parts.iter().map(|p| nodes[p.idx].value.rows()).sum();
            let mut out = Matrix::zeros(total, cols);
            let mut row0 = 0;
            for p in parts {
                let v = &nodes[p.idx].value;
                if v.cols() != cols {
                    return Err(ShapeError::new(
                        "concat_rows",
                        format!("{cols} cols in every part"),
                        format!("{:?}", v.shape()),
                    )
                    .into());
                }
                for r in 0..v.rows() {
                    out.row_mut(row0 + r).copy_from_slice(v.row(r));
                }
                row0 += v.rows();
            }
            out
        };
        Ok(tape.push(value, Op::ConcatRows(parts.iter().map(|p| p.idx).collect())))
    }

    /// Column-wise mean over rows (`n x d -> 1 x d`).
    pub fn mean_rows(&self) -> Var {
        let value = {
            let nodes = self.tape.nodes.borrow();
            let x = &nodes[self.idx].value;
            let n = x.rows().max(1);
            let mut out = Matrix::zeros(1, x.cols());
            for r in 0..x.rows() {
                for (o, &v) in out.row_mut(0).iter_mut().zip(x.row(r)) {
                    *o += v;
                }
            }
            for o in out.as_mut_slice() {
                *o /= n as f32;
            }
            out
        };
        self.tape.push(value, Op::MeanRows(self.idx))
    }

    /// Sum of all elements (scalar node).
    pub fn sum_all(&self) -> Var {
        let value = Matrix::scalar(self.tape.nodes.borrow()[self.idx].value.sum());
        self.tape.push(value, Op::SumAll(self.idx))
    }

    /// Mean of all elements (scalar node).
    pub fn mean_all(&self) -> Var {
        let value = {
            let nodes = self.tape.nodes.borrow();
            let x = &nodes[self.idx].value;
            Matrix::scalar(x.sum() / x.len().max(1) as f32)
        };
        self.tape.push(value, Op::MeanAll(self.idx))
    }

    /// Selects rows by index (duplicates allowed); backward scatter-adds.
    pub fn gather_rows(&self, indices: &Arc<Vec<usize>>) -> Var {
        let value = {
            let nodes = self.tape.nodes.borrow();
            let x = &nodes[self.idx].value;
            let mut out = Matrix::zeros(indices.len(), x.cols());
            for (r, &i) in indices.iter().enumerate() {
                out.row_mut(r).copy_from_slice(x.row(i));
            }
            out
        };
        self.tape
            .push(value, Op::GatherRows(self.idx, Arc::clone(indices)))
    }

    /// Per-row L2 normalization scaled by `s`: `y_i = s * x_i / ||x_i||`.
    pub fn row_l2_normalize(&self, s: f32) -> Var {
        let value = {
            let nodes = self.tape.nodes.borrow();
            let x = &nodes[self.idx].value;
            let mut out = x.clone();
            for r in 0..out.rows() {
                let row = out.row_mut(r);
                let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(EPS);
                for v in row.iter_mut() {
                    *v *= s / norm;
                }
            }
            out
        };
        self.tape.push(value, Op::RowL2Normalize(self.idx, s))
    }

    /// Mean binary cross-entropy with logits against a constant target,
    /// optionally weighted per element (weights need not be normalized).
    pub fn bce_with_logits_mean(&self, target: &Arc<Matrix>, weight: Option<&Arc<Matrix>>) -> Var {
        self.try_bce_with_logits_mean(target, weight)
            .unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Var::bce_with_logits_mean`]: the target (and weight, if
    /// given) must match this variable's shape.
    pub fn try_bce_with_logits_mean(
        &self,
        target: &Arc<Matrix>,
        weight: Option<&Arc<Matrix>>,
    ) -> Result<Var, NnError> {
        let value = {
            let nodes = self.tape.nodes.borrow();
            let z = &nodes[self.idx].value;
            if z.shape() != target.shape() {
                return Err(ShapeError::new(
                    "bce target",
                    format!("{:?}", z.shape()),
                    format!("{:?}", target.shape()),
                )
                .into());
            }
            if let Some(w) = weight {
                if z.shape() != w.shape() {
                    return Err(ShapeError::new(
                        "bce weight",
                        format!("{:?}", z.shape()),
                        format!("{:?}", w.shape()),
                    )
                    .into());
                }
            }
            let mut total = 0.0f64;
            let mut wsum = 0.0f64;
            for i in 0..z.len() {
                let zi = z.as_slice()[i];
                let ti = target.as_slice()[i];
                let wi = weight.map_or(1.0, |w| w.as_slice()[i]);
                // max(z, 0) - z t + ln(1 + exp(-|z|)), the stable form.
                let loss = zi.max(0.0) - zi * ti + (1.0 + (-zi.abs()).exp()).ln();
                total += (wi * loss) as f64;
                wsum += wi as f64;
            }
            Matrix::scalar((total / wsum.max(EPS as f64)) as f32)
        };
        Ok(self.tape.push(
            value,
            Op::BceWithLogitsMean(self.idx, Arc::clone(target), weight.map(Arc::clone)),
        ))
    }

    /// Mean squared error against a constant target (scalar node).
    pub fn mse_mean(&self, target: &Arc<Matrix>) -> Var {
        self.try_mse_mean(target).unwrap_or_else(|e| nn_panic(e))
    }

    /// Fallible [`Var::mse_mean`]: the target must match this variable's
    /// shape.
    pub fn try_mse_mean(&self, target: &Arc<Matrix>) -> Result<Var, NnError> {
        let value = {
            let nodes = self.tape.nodes.borrow();
            let x = &nodes[self.idx].value;
            if x.shape() != target.shape() {
                return Err(ShapeError::new(
                    "mse target",
                    format!("{:?}", x.shape()),
                    format!("{:?}", target.shape()),
                )
                .into());
            }
            let mut total = 0.0f64;
            for (a, b) in x.as_slice().iter().zip(target.as_slice()) {
                let d = a - b;
                total += (d * d) as f64;
            }
            Matrix::scalar((total / x.len().max(1) as f64) as f32)
        };
        Ok(self
            .tape
            .push(value, Op::MseMean(self.idx, Arc::clone(target))))
    }

    /// Runs reverse-mode differentiation from this node, seeding its gradient
    /// with ones. Parameter gradients are *accumulated* into their shared
    /// storage (call [`crate::ParamStore::zero_grad`] between steps).
    pub fn backward(&self) {
        let _span = cpgan_obs::span("nn.backward");
        let mut nodes = self.tape.nodes.borrow_mut();
        let root = &mut nodes[self.idx];
        let (r, c) = root.value.shape();
        root.grad = Some(Matrix::full(r, c, 1.0));

        for i in (0..=self.idx).rev() {
            let (left, right) = nodes.split_at_mut(i);
            let node = &mut right[0];
            let Some(grad) = node.grad.take() else {
                continue;
            };
            backprop(node, &grad, left);
            // Keep the gradient available for inspection after backward.
            node.grad = Some(grad);
        }
    }
}

/// Gets (allocating if needed) the gradient buffer of `left[idx]`.
fn grad_of(left: &mut [Node], idx: usize) -> &mut Matrix {
    let node = &mut left[idx];
    let (r, c) = node.value.shape();
    node.grad.get_or_insert_with(|| Matrix::zeros(r, c))
}

/// Propagates `grad` of `node` into its parents (all located in `left`).
fn backprop(node: &Node, grad: &Matrix, left: &mut [Node]) {
    match &node.op {
        Op::Leaf => {}
        Op::Param(p) => p.accumulate_grad(grad),
        Op::MatMul(a, b) => {
            // dA += G B^T ; dB += A^T G.
            let db = left[*a].value.matmul_tn(grad);
            let da = grad.matmul_nt(&left[*b].value);
            grad_of(left, *a).axpy(1.0, &da);
            grad_of(left, *b).axpy(1.0, &db);
        }
        Op::SpMM(_, st, x) => {
            let dx = st.matmul_dense(grad);
            grad_of(left, *x).axpy(1.0, &dx);
        }
        Op::SpmmBiasAct {
            op_t,
            x,
            bias,
            act,
            blocks,
        } => {
            // Masked upstream gradient from the saved output alone: for
            // relu `y > 0 ⇔ v > 0`, sigmoid/tanh are output-form already —
            // bitwise what the standalone activation op would produce.
            let a = *act;
            let gm = node.value.zip(grad, |y, g| a.grad_from_output(y, g));
            let dx = op_t.matmul_dense(&gm);
            grad_of(left, *x).axpy(1.0, &dx);
            if let Some(b) = bias {
                let mut drow = Matrix::zeros(1, gm.cols());
                match blocks {
                    None => {
                        // Row-major accumulation, matching AddRowBroadcast.
                        for r in 0..gm.rows() {
                            for (o, &g) in drow.row_mut(0).iter_mut().zip(gm.row(r)) {
                                *o += g;
                            }
                        }
                    }
                    Some(offs) => {
                        // Per-block partial sums combined in block order —
                        // bitwise equal to k independent per-block calls.
                        for w in offs.windows(2) {
                            let mut local = Matrix::zeros(1, gm.cols());
                            for r in w[0]..w[1] {
                                for (o, &g) in local.row_mut(0).iter_mut().zip(gm.row(r)) {
                                    *o += g;
                                }
                            }
                            drow.axpy(1.0, &local);
                        }
                    }
                }
                grad_of(left, *b).axpy(1.0, &drow);
            }
        }
        Op::Add(a, b) => {
            grad_of(left, *a).axpy(1.0, grad);
            grad_of(left, *b).axpy(1.0, grad);
        }
        Op::Sub(a, b) => {
            grad_of(left, *a).axpy(1.0, grad);
            grad_of(left, *b).axpy(-1.0, grad);
        }
        Op::Mul(a, b) => {
            if a == b {
                // d(x^2) = 2 x g.
                let da = left[*a].value.zip(grad, |x, g| 2.0 * x * g);
                grad_of(left, *a).axpy(1.0, &da);
            } else {
                let da = left[*b].value.zip(grad, |b, g| b * g);
                let db = left[*a].value.zip(grad, |a, g| a * g);
                grad_of(left, *a).axpy(1.0, &da);
                grad_of(left, *b).axpy(1.0, &db);
            }
        }
        Op::AddRowBroadcast(x, row) => {
            grad_of(left, *x).axpy(1.0, grad);
            let mut drow = Matrix::zeros(1, grad.cols());
            for r in 0..grad.rows() {
                for (o, &g) in drow.row_mut(0).iter_mut().zip(grad.row(r)) {
                    *o += g;
                }
            }
            grad_of(left, *row).axpy(1.0, &drow);
        }
        Op::BroadcastRow(row) => {
            let mut drow = Matrix::zeros(1, grad.cols());
            for r in 0..grad.rows() {
                for (o, &g) in drow.row_mut(0).iter_mut().zip(grad.row(r)) {
                    *o += g;
                }
            }
            grad_of(left, *row).axpy(1.0, &drow);
        }
        Op::Scale(x, c) => grad_of(left, *x).axpy(*c, grad),
        Op::AddScalar(x, _) => grad_of(left, *x).axpy(1.0, grad),
        Op::Relu(x) => {
            let dx = left[*x]
                .value
                .zip(grad, |v, g| if v > 0.0 { g } else { 0.0 });
            grad_of(left, *x).axpy(1.0, &dx);
        }
        Op::Sigmoid(x) => {
            let dx = node.value.zip(grad, |y, g| g * y * (1.0 - y));
            grad_of(left, *x).axpy(1.0, &dx);
        }
        Op::Tanh(x) => {
            let dx = node.value.zip(grad, |y, g| g * (1.0 - y * y));
            grad_of(left, *x).axpy(1.0, &dx);
        }
        Op::Exp(x) => {
            let dx = node.value.zip(grad, |y, g| g * y);
            grad_of(left, *x).axpy(1.0, &dx);
        }
        Op::Ln(x) => {
            let dx = left[*x].value.zip(grad, |v, g| g / (v + EPS));
            grad_of(left, *x).axpy(1.0, &dx);
        }
        Op::Sqrt(x) => {
            let dx = node.value.zip(grad, |y, g| g * 0.5 / y.max(EPS));
            grad_of(left, *x).axpy(1.0, &dx);
        }
        Op::SoftmaxRows(x) => {
            let y = &node.value;
            let mut dx = Matrix::zeros(y.rows(), y.cols());
            for r in 0..y.rows() {
                let yr = y.row(r);
                let gr = grad.row(r);
                let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                for ((o, &yv), &gv) in dx.row_mut(r).iter_mut().zip(yr).zip(gr) {
                    *o = yv * (gv - dot);
                }
            }
            grad_of(left, *x).axpy(1.0, &dx);
        }
        Op::Transpose(x) => {
            let dx = grad.transpose();
            grad_of(left, *x).axpy(1.0, &dx);
        }
        Op::ConcatCols(parts) => {
            let mut col0 = 0;
            for &p in parts {
                let cols = left[p].value.cols();
                let mut dp = Matrix::zeros(grad.rows(), cols);
                for r in 0..grad.rows() {
                    dp.row_mut(r)
                        .copy_from_slice(&grad.row(r)[col0..col0 + cols]);
                }
                grad_of(left, p).axpy(1.0, &dp);
                col0 += cols;
            }
        }
        Op::ConcatRows(parts) => {
            let mut row0 = 0;
            for &p in parts {
                let rows = left[p].value.rows();
                let mut dp = Matrix::zeros(rows, grad.cols());
                for r in 0..rows {
                    dp.row_mut(r).copy_from_slice(grad.row(row0 + r));
                }
                grad_of(left, p).axpy(1.0, &dp);
                row0 += rows;
            }
        }
        Op::MeanRows(x) => {
            let n = left[*x].value.rows().max(1) as f32;
            let dxr: Vec<f32> = grad.row(0).iter().map(|g| g / n).collect();
            let dx_target = grad_of(left, *x);
            for r in 0..dx_target.rows() {
                for (o, &g) in dx_target.row_mut(r).iter_mut().zip(&dxr) {
                    *o += g;
                }
            }
        }
        Op::SumAll(x) => {
            let g = grad.item();
            let src = &left[*x].value;
            let dx = Matrix::full(src.rows(), src.cols(), g);
            grad_of(left, *x).axpy(1.0, &dx);
        }
        Op::MeanAll(x) => {
            let g = grad.item() / left[*x].value.len().max(1) as f32;
            let src = &left[*x].value;
            let dx = Matrix::full(src.rows(), src.cols(), g);
            grad_of(left, *x).axpy(1.0, &dx);
        }
        Op::GatherRows(x, indices) => {
            let dx_target = grad_of(left, *x);
            for (r, &i) in indices.iter().enumerate() {
                for (o, &g) in dx_target.row_mut(i).iter_mut().zip(grad.row(r)) {
                    *o += g;
                }
            }
        }
        Op::RowL2Normalize(x, s) => {
            let xv = &left[*x].value;
            let mut dx = Matrix::zeros(xv.rows(), xv.cols());
            for r in 0..xv.rows() {
                let xr = xv.row(r);
                let gr = grad.row(r);
                let norm = xr.iter().map(|v| v * v).sum::<f32>().sqrt().max(EPS);
                let dot: f32 = xr.iter().zip(gr).map(|(a, b)| a * b).sum();
                for ((o, &xi), &gi) in dx.row_mut(r).iter_mut().zip(xr).zip(gr) {
                    *o = s / norm * (gi - dot * xi / (norm * norm));
                }
            }
            grad_of(left, *x).axpy(1.0, &dx);
        }
        Op::BceWithLogitsMean(x, target, weight) => {
            let g = grad.item();
            let z = &left[*x].value;
            let wsum: f32 = weight.as_ref().map_or(z.len() as f32, |w| w.sum()).max(EPS);
            let mut dx = Matrix::zeros(z.rows(), z.cols());
            for i in 0..z.len() {
                let zi = z.as_slice()[i];
                let ti = target.as_slice()[i];
                let wi = weight.as_ref().map_or(1.0, |w| w.as_slice()[i]);
                let sig = 1.0 / (1.0 + (-zi).exp());
                dx.as_mut_slice()[i] = g * wi * (sig - ti) / wsum;
            }
            grad_of(left, *x).axpy(1.0, &dx);
        }
        Op::MseMean(x, target) => {
            let g = grad.item();
            let xv = &left[*x].value;
            let n = xv.len().max(1) as f32;
            let mut dx = Matrix::zeros(xv.rows(), xv.cols());
            for i in 0..xv.len() {
                dx.as_mut_slice()[i] = g * 2.0 * (xv.as_slice()[i] - target.as_slice()[i]) / n;
            }
            grad_of(left, *x).axpy(1.0, &dx);
        }
    }
}

#[cfg(test)]
// Tests may assert exact float values (constructed, not computed).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn add_mul_backward() {
        let t = Tape::new();
        let p = Param::new(Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let x = t.param(&p);
        let y = x.mul(&x).add(&x); // y = x^2 + x, dy/dx = 2x + 1.
        y.sum_all().backward();
        assert_eq!(p.lock().grad.as_slice(), &[5.0, 7.0]);
    }

    #[test]
    fn matmul_backward_shapes_and_values() {
        let t = Tape::new();
        let pa = Param::new(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let pb = Param::new(Matrix::from_vec(2, 1, vec![5., 6.]));
        let a = t.param(&pa);
        let b = t.param(&pb);
        a.matmul(&b).sum_all().backward();
        // d/dA sum(AB) = 1 * B^T per row.
        assert_eq!(pa.lock().grad.as_slice(), &[5., 6., 5., 6.]);
        // d/dB = A^T 1 = column sums of A.
        assert_eq!(pb.lock().grad.as_slice(), &[4., 6.]);
    }

    #[test]
    fn constant_blocks_gradient() {
        let t = Tape::new();
        let c = t.constant(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let p = Param::new(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let x = t.param(&p);
        x.mul(&c).sum_all().backward();
        assert_eq!(p.lock().grad.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn sigmoid_fixed_point() {
        let t = Tape::new();
        let p = Param::new(Matrix::scalar(0.0));
        let y = t.param(&p).sigmoid();
        assert!((y.item() - 0.5).abs() < 1e-6);
        y.backward();
        assert!((p.lock().grad.item() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tape::new();
        let x = t.constant(Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]));
        let y = x.softmax_rows().value();
        for r in 0..2 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn gather_scatter_round_trip() {
        let t = Tape::new();
        let p = Param::new(Matrix::from_vec(3, 1, vec![1., 2., 3.]));
        let x = t.param(&p);
        let idx = Arc::new(vec![0usize, 2, 0]);
        let y = x.gather_rows(&idx);
        assert_eq!(y.value().as_slice(), &[1., 3., 1.]);
        y.sum_all().backward();
        // Row 0 selected twice -> grad 2, row 1 never -> 0, row 2 once -> 1.
        assert_eq!(p.lock().grad.as_slice(), &[2., 0., 1.]);
    }

    #[test]
    fn bce_matches_manual() {
        let t = Tape::new();
        let p = Param::new(Matrix::scalar(0.0));
        let target = Arc::new(Matrix::scalar(1.0));
        let loss = t.param(&p).bce_with_logits_mean(&target, None);
        // -ln(sigmoid(0)) = ln 2.
        assert!((loss.item() - std::f32::consts::LN_2).abs() < 1e-6);
        loss.backward();
        // d = sigmoid(0) - 1 = -0.5.
        assert!((p.lock().grad.item() + 0.5).abs() < 1e-6);
    }

    #[test]
    fn grad_accumulates_across_backwards() {
        let p = Param::new(Matrix::scalar(1.0));
        for _ in 0..2 {
            let t = Tape::new();
            t.param(&p).scale(3.0).backward();
        }
        assert_eq!(p.lock().grad.item(), 6.0);
        p.zero_grad();
        assert_eq!(p.lock().grad.item(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different tapes")]
    fn cross_tape_rejected() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.scalar(1.0);
        let b = t2.scalar(1.0);
        let _ = a.add(&b);
    }

    #[test]
    fn try_ops_surface_typed_errors() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.scalar(1.0);
        let b = t2.scalar(1.0);
        assert!(matches!(
            a.try_add(&b),
            Err(NnError::TapeMismatch { op: "add" })
        ));
        assert!(a.try_matmul(&b).is_err());

        let x = t1.constant(Matrix::zeros(2, 3));
        let y = t1.constant(Matrix::zeros(3, 3));
        assert!(matches!(x.try_add(&y), Err(NnError::Shape(_))));
        assert!(Var::try_concat_cols(&[x.clone(), y.clone()]).is_err());
        assert!(Var::try_concat_cols(&[]).is_err());
        assert!(Var::try_concat_rows(&[x.clone(), t1.constant(Matrix::zeros(1, 2))]).is_err());
        assert!(x.try_broadcast_row(4).is_err());
        assert!(x
            .try_bce_with_logits_mean(&Arc::new(Matrix::zeros(1, 1)), None)
            .is_err());
        assert!(x.try_mse_mean(&Arc::new(Matrix::zeros(1, 1))).is_err());

        // Ok paths behave like the panicking wrappers.
        let ok = x.try_add(&t1.constant(Matrix::zeros(2, 3))).unwrap();
        assert_eq!(ok.shape(), (2, 3));
        let cat = Var::try_concat_rows(&[x.clone(), x.clone()]).unwrap();
        assert_eq!(cat.shape(), (4, 3));
    }
}
