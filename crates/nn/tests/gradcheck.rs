//! Finite-difference gradient checks for every autograd op.
//!
//! Each check builds a scalar loss `f(theta)` from one parameter, runs
//! backward, and compares the analytic gradient against the central
//! difference `(f(theta + h) - f(theta - h)) / 2h` elementwise.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach; panicking is the right
// failure mode in test code.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_graph::Graph;
use cpgan_nn::{Csr, Matrix, Param, Tape, Var};
use cpgan_parallel::with_thread_count;
use std::sync::Arc;

/// Checks `d loss / d param` analytically vs numerically.
fn gradcheck(name: &str, init: Matrix, f: impl Fn(&Tape, &Var) -> Var) {
    let param = Param::new(init);
    // Analytic.
    {
        let tape = Tape::new();
        let x = tape.param(&param);
        let loss = f(&tape, &x);
        assert_eq!(loss.shape(), (1, 1), "{name}: loss must be scalar");
        loss.backward();
    }
    let analytic = param.lock().grad.clone();
    // Numeric.
    let h = 1e-2f32;
    let base = param.value();
    for i in 0..base.len() {
        let eval = |delta: f32| -> f64 {
            let mut perturbed = base.clone();
            perturbed.as_mut_slice()[i] += delta;
            let p2 = Param::new(perturbed);
            let tape = Tape::new();
            let x = tape.param(&p2);
            f(&tape, &x).item() as f64
        };
        let numeric = (eval(h) - eval(-h)) / (2.0 * h as f64);
        let a = analytic.as_slice()[i] as f64;
        let tol = 2e-2 * (1.0 + a.abs().max(numeric.abs()));
        assert!(
            (a - numeric).abs() < tol,
            "{name}: grad[{i}] analytic {a} vs numeric {numeric}"
        );
    }
}

fn seed_matrix(rows: usize, cols: usize, offset: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        // Deterministic, non-degenerate, sign-mixed values.
        let v = ((r * cols + c) as f32 * 0.37 + offset).sin();
        0.8 * v + 0.05
    })
}

#[test]
fn grad_matmul() {
    gradcheck("matmul", seed_matrix(3, 4, 0.1), |t, x| {
        let w = t.constant(seed_matrix(4, 2, 0.7));
        x.matmul(&w).sum_all()
    });
}

#[test]
fn grad_matmul_right_operand() {
    gradcheck("matmul_rhs", seed_matrix(4, 2, 0.3), |t, x| {
        let a = t.constant(seed_matrix(3, 4, 0.9));
        a.matmul(x).square().sum_all()
    });
}

#[test]
fn grad_spmm() {
    let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]).unwrap();
    let adj = Arc::new(Csr::normalized_adjacency(&g));
    gradcheck("spmm", seed_matrix(5, 3, 0.2), move |_t, x| {
        x.spmm(&adj).square().sum_all()
    });
}

#[test]
fn grad_add_sub_mul() {
    gradcheck("add", seed_matrix(2, 3, 0.0), |t, x| {
        let c = t.constant(seed_matrix(2, 3, 1.3));
        x.add(&c).square().sum_all()
    });
    gradcheck("sub", seed_matrix(2, 3, 0.4), |t, x| {
        let c = t.constant(seed_matrix(2, 3, 0.8));
        c.sub(x).square().sum_all()
    });
    gradcheck("mul", seed_matrix(2, 3, 0.5), |t, x| {
        let c = t.constant(seed_matrix(2, 3, 2.0));
        x.mul(&c).square().sum_all()
    });
}

#[test]
fn grad_self_product_chain() {
    // x^3 via x*x*x exercises repeated-parent accumulation.
    gradcheck("cube", seed_matrix(2, 2, 0.6), |_t, x| {
        x.mul(x).mul(x).sum_all()
    });
}

#[test]
fn grad_broadcasts() {
    gradcheck("add_row_broadcast_row", seed_matrix(1, 3, 0.2), |t, row| {
        let x = t.constant(seed_matrix(4, 3, 1.0));
        x.add_row_broadcast(row).square().sum_all()
    });
    gradcheck("add_row_broadcast_x", seed_matrix(4, 3, 0.2), |t, x| {
        let row = t.constant(seed_matrix(1, 3, 1.0));
        x.add_row_broadcast(&row).square().sum_all()
    });
    gradcheck("broadcast_row", seed_matrix(1, 3, 0.5), |_t, row| {
        row.broadcast_row(5).square().sum_all()
    });
}

#[test]
fn grad_scalar_ops() {
    gradcheck("scale", seed_matrix(2, 2, 0.1), |_t, x| {
        x.scale(-2.5).square().sum_all()
    });
    gradcheck("add_scalar", seed_matrix(2, 2, 0.1), |_t, x| {
        x.add_scalar(3.0).square().sum_all()
    });
}

#[test]
fn grad_activations() {
    // Shift away from the ReLU kink so finite differences are clean.
    gradcheck(
        "relu",
        seed_matrix(3, 3, 0.35).map(|v| v + 0.2 * v.signum()),
        |_t, x| x.relu().sum_all(),
    );
    gradcheck("sigmoid", seed_matrix(3, 3, 0.2), |_t, x| {
        x.sigmoid().square().sum_all()
    });
    gradcheck("tanh", seed_matrix(3, 3, 0.3), |_t, x| {
        x.tanh().square().sum_all()
    });
    gradcheck("exp", seed_matrix(2, 2, 0.1), |_t, x| x.exp().sum_all());
    gradcheck(
        "ln",
        seed_matrix(2, 2, 0.0).map(|v| v.abs() + 0.5),
        |_t, x| x.ln().sum_all(),
    );
    gradcheck(
        "sqrt",
        seed_matrix(2, 2, 0.0).map(|v| v.abs() + 0.5),
        |_t, x| x.sqrt().sum_all(),
    );
}

#[test]
fn grad_softmax() {
    gradcheck("softmax", seed_matrix(2, 4, 0.2), |t, x| {
        let w = t.constant(seed_matrix(2, 4, 1.7));
        x.softmax_rows().mul(&w).sum_all()
    });
}

#[test]
fn grad_transpose_concat() {
    gradcheck("transpose", seed_matrix(2, 3, 0.2), |_t, x| {
        x.transpose().square().sum_all()
    });
    gradcheck("concat_cols", seed_matrix(3, 2, 0.1), |t, x| {
        let c = t.constant(seed_matrix(3, 4, 0.5));
        Var::concat_cols(&[x.clone(), c]).square().sum_all()
    });
    gradcheck("concat_rows", seed_matrix(2, 3, 0.1), |t, x| {
        let c = t.constant(seed_matrix(4, 3, 0.5));
        Var::concat_rows(&[c, x.clone()]).square().sum_all()
    });
}

#[test]
fn grad_reductions() {
    gradcheck("mean_rows", seed_matrix(4, 3, 0.2), |_t, x| {
        x.mean_rows().square().sum_all()
    });
    gradcheck("mean_all", seed_matrix(3, 3, 0.2), |_t, x| {
        x.square().mean_all()
    });
}

#[test]
fn grad_gather() {
    let idx = Arc::new(vec![0usize, 2, 2, 1]);
    gradcheck("gather_rows", seed_matrix(3, 2, 0.2), move |_t, x| {
        x.gather_rows(&idx).square().sum_all()
    });
}

#[test]
fn grad_row_l2_normalize() {
    gradcheck("row_l2_normalize", seed_matrix(3, 4, 0.4), |t, x| {
        let w = t.constant(seed_matrix(3, 4, 1.1));
        x.row_l2_normalize(2.0).mul(&w).sum_all()
    });
}

#[test]
fn grad_losses() {
    let target = Arc::new(seed_matrix(3, 2, 0.9).map(|v| (v > 0.0) as u8 as f32));
    gradcheck("bce", seed_matrix(3, 2, 0.2), move |_t, x| {
        x.bce_with_logits_mean(&target, None)
    });
    let target2 = Arc::new(seed_matrix(3, 2, 0.6).map(|v| (v > 0.0) as u8 as f32));
    let weight = Arc::new(Matrix::from_fn(3, 2, |r, c| 1.0 + (r + c) as f32 * 0.5));
    gradcheck("bce_weighted", seed_matrix(3, 2, 0.2), move |_t, x| {
        x.bce_with_logits_mean(&target2, Some(&weight))
    });
    let mse_target = Arc::new(seed_matrix(3, 2, 1.4));
    gradcheck("mse", seed_matrix(3, 2, 0.2), move |_t, x| {
        x.mse_mean(&mse_target)
    });
}

#[test]
fn grad_composite_gcn_like_stack() {
    // A miniature ladder-style stack: spmm -> linear -> relu -> softmax ->
    // pooled matmul chain, checking end-to-end correctness of composition.
    let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
    let adj = Arc::new(Csr::normalized_adjacency(&g));
    gradcheck("composite", seed_matrix(4, 3, 0.25), move |t, x| {
        let w = t.constant(seed_matrix(3, 3, 0.8));
        let z = x.matmul(&w).spmm(&adj).relu();
        let s = z.softmax_rows();
        let pooled = s.transpose().matmul(&z); // DiffPool-style S^T Z
        pooled.square().sum_all()
    });
}

// ---- Parallel-path coverage ----------------------------------------------
//
// The shapes above produce single-chunk kernels, so the checks exercise the
// serial code path regardless of thread count. The checks below pin four
// threads and route each op through intermediates wide enough to span
// several parallel chunks (elementwise grain 4096; one output row per chunk
// at width `WIDE`), so both the analytic backward pass and every numeric
// forward evaluation run the threaded kernels. Parameters stay small — the
// width comes from constants — to keep the finite-difference loop cheap.

/// Wide enough that a 2-row matrix spans multiple 4096-entry chunks.
const WIDE: usize = 2100;

#[test]
fn grad_matmul_parallel_path() {
    with_thread_count(4, || {
        gradcheck("matmul_par", seed_matrix(2, 6, 0.15), |t, x| {
            let w = t.constant(seed_matrix(6, WIDE, 0.6));
            x.matmul(&w).square().sum_all()
        });
        gradcheck("matmul_rhs_par", seed_matrix(6, 4, 0.25), |t, x| {
            // Left operand spans chunks; x's gradient flows through the
            // parallel matmul_tn kernel.
            let a = t.constant(seed_matrix(WIDE / 2, 6, 0.45));
            a.matmul(x).square().sum_all()
        });
    });
}

#[test]
fn grad_spmm_parallel_path() {
    // 5 nodes x 840 features: CSR x dense splits into 4-row blocks.
    let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]).unwrap();
    let adj = Arc::new(Csr::normalized_adjacency(&g));
    with_thread_count(4, move || {
        gradcheck("spmm_par", seed_matrix(5, 3, 0.2), move |t, x| {
            let w = t.constant(seed_matrix(3, 840, 0.7));
            x.matmul(&w).spmm(&adj).square().sum_all()
        });
    });
}

#[test]
fn grad_softmax_parallel_path() {
    with_thread_count(4, || {
        gradcheck("softmax_par", seed_matrix(2, 8, 0.2), |t, x| {
            let w = t.constant(seed_matrix(8, WIDE, 0.9));
            let m = t.constant(seed_matrix(2, WIDE, 1.4));
            x.matmul(&w).softmax_rows().mul(&m).sum_all()
        });
    });
}

#[test]
fn grad_concat_parallel_path() {
    with_thread_count(4, || {
        gradcheck("concat_cols_par", seed_matrix(2, 5, 0.1), |t, x| {
            let w = t.constant(seed_matrix(5, WIDE / 2, 0.5));
            let c = t.constant(seed_matrix(2, WIDE / 2, 0.8));
            Var::concat_cols(&[x.matmul(&w), c]).square().sum_all()
        });
        gradcheck("concat_rows_par", seed_matrix(2, 5, 0.3), |t, x| {
            let w = t.constant(seed_matrix(5, WIDE / 2, 0.2));
            let c = t.constant(seed_matrix(2, WIDE / 2, 0.6));
            Var::concat_rows(&[c, x.matmul(&w)]).square().sum_all()
        });
    });
}

#[test]
fn grad_reductions_parallel_path() {
    with_thread_count(4, || {
        gradcheck("mean_all_par", seed_matrix(3, 7, 0.2), |t, x| {
            let w = t.constant(seed_matrix(7, WIDE / 3, 0.4));
            x.matmul(&w).square().mean_all()
        });
        gradcheck("mean_rows_par", seed_matrix(2, 6, 0.4), |t, x| {
            let w = t.constant(seed_matrix(6, WIDE, 0.3));
            x.matmul(&w).mean_rows().square().sum_all()
        });
    });
}

#[test]
fn grad_gaussian_kl_composite() {
    gradcheck("kl_mu", seed_matrix(3, 2, 0.2), |t, mu| {
        let lv = t.constant(seed_matrix(3, 2, 0.7).map(|v| v * 0.3));
        cpgan_nn::loss::gaussian_kl(mu, &lv)
    });
    gradcheck(
        "kl_logvar",
        seed_matrix(3, 2, 0.5).map(|v| v * 0.4),
        |t, lv| {
            let mu = t.constant(seed_matrix(3, 2, 0.2));
            cpgan_nn::loss::gaussian_kl(&mu, lv)
        },
    );
}

// ---- Fused spmm+bias+activation coverage (DESIGN §13) --------------------

#[test]
fn grad_spmm_bias_act_every_activation() {
    let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]).unwrap();
    let adj = Arc::new(Csr::normalized_adjacency(&g));
    for act in cpgan_nn::FusedAct::ALL {
        // d loss / d x, bias present. Inputs are shifted off zero so the
        // ReLU kink stays away from the finite-difference window.
        let a = adj.clone();
        gradcheck(
            &format!("spmm_bias_act[{}]/x", act.name()),
            seed_matrix(5, 3, 0.2).map(|v| v + 0.25 * v.signum()),
            move |t, x| {
                let b = t.constant(seed_matrix(1, 3, 0.9));
                x.spmm_bias_act(&a, Some(&b), act).square().sum_all()
            },
        );
        // d loss / d bias.
        let a = adj.clone();
        gradcheck(
            &format!("spmm_bias_act[{}]/bias", act.name()),
            seed_matrix(1, 3, 0.4),
            move |t, b| {
                let x = t.constant(seed_matrix(5, 3, 0.3).map(|v| v + 0.25 * v.signum()));
                x.spmm_bias_act(&a, Some(b), act).square().sum_all()
            },
        );
        // No bias.
        let a = adj.clone();
        gradcheck(
            &format!("spmm_bias_act[{}]/no_bias", act.name()),
            seed_matrix(5, 3, 0.6).map(|v| v + 0.25 * v.signum()),
            move |t, x| {
                let _ = t;
                x.spmm_bias_act(&a, None, act).square().sum_all()
            },
        );
    }
}

#[test]
fn grad_spmm_bias_act_batched_with_empty_and_single_node_blocks() {
    // Three blocks: a 3-node path, an *empty* (0-node) block, and a
    // single-node block — the degenerate shapes the packer must keep legal.
    let g1 = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
    let empty = Csr::from_sorted_triplets(0, 0, []);
    let single = Graph::from_edges(1, std::iter::empty()).unwrap();
    let batch = cpgan_nn::BlockDiagCsr::from_blocks(&[
        Csr::normalized_adjacency(&g1),
        empty,
        Csr::normalized_adjacency(&single),
    ]);
    assert_eq!(batch.total_rows(), 4);
    for act in cpgan_nn::FusedAct::ALL {
        let bt = batch.clone();
        gradcheck(
            &format!("spmm_bias_act_batched[{}]/x", act.name()),
            seed_matrix(4, 2, 0.3).map(|v| v + 0.25 * v.signum()),
            move |t, x| {
                let b = t.constant(seed_matrix(1, 2, 0.8));
                x.spmm_bias_act_batched(&bt, Some(&b), act)
                    .square()
                    .sum_all()
            },
        );
        let bt = batch.clone();
        gradcheck(
            &format!("spmm_bias_act_batched[{}]/bias", act.name()),
            seed_matrix(1, 2, 0.5),
            move |t, b| {
                let x = t.constant(seed_matrix(4, 2, 0.7).map(|v| v + 0.25 * v.signum()));
                x.spmm_bias_act_batched(&bt, Some(b), act)
                    .square()
                    .sum_all()
            },
        );
    }
}

/// Pooled buffers hold arbitrary garbage at checkout; every op must fully
/// overwrite (or explicitly zero) what it reads. Running the same backward
/// pass with the pool off and then on — after priming the free lists with
/// dirty buffers — must produce bit-identical gradients.
#[test]
fn grads_bitwise_identical_with_pooled_buffers() {
    let run = || {
        let param = Param::new(seed_matrix(6, 5, 0.15));
        let tape = Tape::new();
        let x = tape.param(&param);
        let w = tape.constant(seed_matrix(5, 9, 0.65));
        let loss = x.matmul(&w).relu().square().mean_all();
        loss.backward();
        let grad = param.lock().grad.clone();
        (loss.item(), grad)
    };
    cpgan_nn::memory::set_pool_enabled(false);
    cpgan_nn::memory::pool_clear();
    let (loss_off, grad_off) = run();
    cpgan_nn::memory::set_pool_enabled(true);
    // Prime the pool with dirty buffers of the exact sizes the run uses.
    let dirt: Vec<Matrix> = [(6, 5), (5, 9), (6, 9), (1, 1)]
        .iter()
        .map(|&(r, c)| Matrix::full(r, c, f32::NAN))
        .collect();
    drop(dirt);
    let (loss_on, grad_on) = run();
    cpgan_nn::memory::pool_clear();
    assert_eq!(
        loss_off.to_bits(),
        loss_on.to_bits(),
        "loss differs with pool"
    );
    for (i, (a, b)) in grad_off
        .as_slice()
        .iter()
        .zip(grad_on.as_slice())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "grad[{i}] differs with pool: {a} vs {b}"
        );
    }
}
