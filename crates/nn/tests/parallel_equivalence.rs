//! Serial-equivalence suite: every parallelized nn kernel must produce
//! bit-identical f32 output at any thread count.
//!
//! The determinism contract (crates/parallel) promises that chunk boundaries
//! depend only on problem shape and partials combine in chunk-index order, so
//! `CPGAN_THREADS=1` and `CPGAN_THREADS=4` runs are exactly equal — not just
//! within a tolerance. These tests pin the thread count per run via
//! [`with_thread_count`] and compare raw bit patterns.

// Test-support helpers sit outside `#[test]` fns, where the
// `allow-*-in-tests` carve-out does not reach.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use cpgan_graph::Graph;
use cpgan_nn::{Csr, Matrix, Tape};
use cpgan_parallel::with_thread_count;

/// Deterministic, sign-mixed values with no special structure.
fn seed_matrix(rows: usize, cols: usize, offset: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * cols + c) as f32 * 0.371 + offset).sin() * 1.3
    })
}

fn assert_bits_eq(serial: &Matrix, parallel: &Matrix, what: &str, threads: usize) {
    assert_eq!(serial.shape(), parallel.shape(), "{what}: shape mismatch");
    for (i, (a, b)) in serial
        .as_slice()
        .iter()
        .zip(parallel.as_slice())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}[{i}] differs at {threads} threads: {a} vs {b}"
        );
    }
}

/// Runs `f` at 1 thread and at each of {2, 4, 8}, asserting bitwise equality.
fn assert_equivalent(what: &str, f: impl Fn() -> Matrix) {
    let serial = with_thread_count(1, &f);
    for threads in [2, 4, 8] {
        let parallel = with_thread_count(threads, &f);
        assert_bits_eq(&serial, &parallel, what, threads);
    }
}

// Shapes below are chosen so every kernel spans several parallel chunks
// (elementwise grain is 4096 entries; matmul blocks are ~4096-output rows).

#[test]
fn matmul_bitwise_equal_across_thread_counts() {
    let a = seed_matrix(64, 48, 0.1);
    let b = seed_matrix(48, 80, 0.7);
    assert_equivalent("matmul", || a.matmul(&b));
}

#[test]
fn matmul_tn_bitwise_equal_across_thread_counts() {
    let a = seed_matrix(48, 64, 0.2);
    let b = seed_matrix(48, 80, 0.9);
    assert_equivalent("matmul_tn", || a.matmul_tn(&b));
}

#[test]
fn matmul_nt_bitwise_equal_across_thread_counts() {
    let a = seed_matrix(64, 48, 0.3);
    let b = seed_matrix(80, 48, 0.4);
    assert_equivalent("matmul_nt", || a.matmul_nt(&b));
}

#[test]
fn ragged_matmul_bitwise_equal_across_thread_counts() {
    // Shapes that are not multiples of the MR=4 / NR=8 register tile and
    // cross the KC=256 k-slab, so the microkernel tail paths and the
    // resume-from-out accumulator path all run under parallel row splits.
    for &(m, k, n) in &[(37, 261, 19), (65, 300, 9), (5, 517, 33)] {
        let a = seed_matrix(m, k, 0.11);
        let b = seed_matrix(k, n, 0.23);
        assert_equivalent("ragged matmul", || a.matmul(&b));
        let at = seed_matrix(k, m, 0.31);
        assert_equivalent("ragged matmul_tn", || at.matmul_tn(&b));
        let bt = seed_matrix(n, k, 0.43);
        assert_equivalent("ragged matmul_nt", || a.matmul_nt(&bt));
    }
}

#[test]
fn elementwise_ops_bitwise_equal_across_thread_counts() {
    let a = seed_matrix(96, 70, 0.5); // 6720 entries: two 4096-entry chunks
    let b = seed_matrix(96, 70, 1.1);
    assert_equivalent("map", || a.map(|v| v.tanh() * 0.3 + v));
    assert_equivalent("zip", || a.zip(&b, |x, y| x * y + 0.25 * x));
    assert_equivalent("axpy", || {
        let mut out = a.clone();
        out.axpy(-0.75, &b);
        out
    });
}

#[test]
fn reductions_bitwise_equal_across_thread_counts() {
    let a = seed_matrix(96, 70, 0.6);
    assert_equivalent("sum", || Matrix::scalar(a.sum()));
    assert_equivalent("frobenius_norm", || Matrix::scalar(a.frobenius_norm()));
}

#[test]
fn spmm_bitwise_equal_across_thread_counts() {
    // Ring + chords: enough rows that the CSR×dense row blocks split.
    let n = 200u32;
    let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    edges.extend((0..n / 2).map(|i| (i, i + n / 2)));
    let g = Graph::from_edges(n as usize, edges).unwrap();
    let s = Csr::normalized_adjacency(&g);
    let x = seed_matrix(n as usize, 24, 0.8);
    assert_equivalent("spmm", || s.matmul_dense(&x));
}

#[test]
fn softmax_rows_bitwise_equal_across_thread_counts() {
    let x = seed_matrix(96, 70, 0.9);
    assert_equivalent("softmax_rows", || {
        let tape = Tape::new();
        tape.constant(x.clone()).softmax_rows().value()
    });
}

#[test]
fn fused_spmm_bias_act_bitwise_equal_across_thread_counts() {
    // Same ring + chords operator as the plain spmm case, with the fused
    // bias add and each activation applied per cache-hot row.
    let n = 200u32;
    let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    edges.extend((0..n / 2).map(|i| (i, i + n / 2)));
    let g = Graph::from_edges(n as usize, edges).unwrap();
    let s = Csr::normalized_adjacency(&g);
    let x = seed_matrix(n as usize, 24, 0.35);
    let b = seed_matrix(1, 24, 0.75);
    for act in cpgan_nn::FusedAct::ALL {
        assert_equivalent(&format!("spmm_bias_act[{}]", act.name()), || {
            s.matmul_dense_bias_act(&x, Some(&b), act)
        });
    }
}

#[test]
fn fused_forward_and_backward_bitwise_equal_across_thread_counts() {
    // Whole fused tape step — batched forward, activation-mask backward,
    // bias-row reduction — through the autograd layer at 1 vs N threads.
    let sizes = [60usize, 1, 45, 70];
    let graphs: Vec<Graph> = sizes
        .iter()
        .enumerate()
        .map(|(gi, &n)| {
            let edges: Vec<(u32, u32)> = (0..n as u32)
                .map(|i| (i, (i + 1) % n as u32))
                .filter(|(u, v)| u != v && !(u + gi as u32).is_multiple_of(7))
                .collect();
            Graph::from_edges(n, edges).unwrap()
        })
        .collect();
    let batch = cpgan_nn::BlockDiagCsr::from_graphs(graphs.iter());
    let total = batch.total_rows();
    let x0 = seed_matrix(total, 24, 0.15);
    let b0 = seed_matrix(1, 24, 0.55);
    let w0 = seed_matrix(total, 24, 0.95);
    for act in cpgan_nn::FusedAct::ALL {
        assert_equivalent(
            &format!("spmm_bias_act_batched[{}] grads", act.name()),
            || {
                let xp = cpgan_nn::Param::new(x0.clone());
                let bp = cpgan_nn::Param::new(b0.clone());
                let tape = Tape::new();
                let x = tape.param(&xp);
                let b = tape.param(&bp);
                let out = x.spmm_bias_act_batched(&batch, Some(&b), act);
                let w = tape.constant(w0.clone());
                out.mul(&w).sum_all().backward();
                // Pack forward value + both gradients into one comparison
                // surface so a single bit flip anywhere fails loudly.
                let gx = xp.lock().grad.clone();
                let gb = bp.lock().grad.clone();
                Matrix::vstack(&[&out.value(), &gx, &gb])
            },
        );
    }
}
